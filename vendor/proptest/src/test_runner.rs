//! Test-runner support types: configuration, error, and the RNG.

use std::fmt;

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Alias of [`TestCaseError::fail`], matching proptest's `Reject` flavor.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The generation RNG: the vendored rand shim's `StdRng` (xoshiro256**),
/// deterministically seeded.
///
/// Determinism means a failing case reproduces on the next `cargo test`
/// run — this shim has no shrinking, so reproducibility is the debugging
/// story.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// The fixed-seed generator used by [`proptest!`](crate::proptest).
    pub fn deterministic() -> Self {
        Self::seeded(0x243F_6A88_85A3_08D3)
    }

    /// A generator seeded from `seed`.
    pub fn seeded(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng { inner: rand::rngs::StdRng::seed_from_u64(seed) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
