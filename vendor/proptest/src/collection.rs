//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy for `Vec<T>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let strategy = vec(0u64..5, 2..7);
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
