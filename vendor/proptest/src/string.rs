//! String generation from a small regex subset.
//!
//! Supports the patterns the workspace's tests use as strategies:
//! literal characters, character classes with ranges (`[a-z0-9_]`,
//! `[ -~]`, a literal `-` first or last), and the quantifiers `{n}`,
//! `{m,n}`, `?`, `*`, and `+` (the unbounded ones capped at 8 repeats).
//! Anchors, alternation, groups, and escapes are not supported — the
//! parser panics on them so a new test pattern fails loudly rather than
//! generating the wrong language.

use crate::test_runner::TestRng;

enum Atom {
    /// A fixed character.
    Literal(char),
    /// One character drawn uniformly from the expanded class.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(chars) => {
                    out.push(chars[rng.below(chars.len() as u64) as usize]);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(class)
            }
            '(' | ')' | '|' | '^' | '$' | '\\' | '.' => {
                panic!("regex strategy shim does not support `{}` in {pattern:?}", chars[i]);
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Parse a `[...]` class body starting at `start` (after the `[`).
/// Returns the expanded characters and the index after the closing `]`.
fn parse_class(chars: &[char], start: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut class = Vec::new();
    let mut i = start;
    if chars.get(i) == Some(&'^') {
        panic!("regex strategy shim does not support negated classes in {pattern:?}");
    }
    while let Some(&c) = chars.get(i) {
        if c == ']' {
            assert!(!class.is_empty(), "empty character class in {pattern:?}");
            return (class, i + 1);
        }
        // `a-z` range, unless `-` is the class's first or last character.
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&n| n != ']') {
            let hi = chars[i + 2];
            assert!(c <= hi, "inverted range {c}-{hi} in {pattern:?}");
            for code in (c as u32)..=(hi as u32) {
                class.push(char::from_u32(code).expect("valid class range"));
            }
            i += 3;
        } else {
            class.push(c);
            i += 1;
        }
    }
    panic!("unterminated character class in {pattern:?}");
}

/// Parse an optional quantifier at `*i`, advancing past it.
fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((min, max)) => (
                    min.trim().parse().expect("quantifier min"),
                    max.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_match(pattern: &str, check: impl Fn(&str) -> bool) {
        let mut rng = TestRng::deterministic();
        for _ in 0..300 {
            let s = generate_from_regex(pattern, &mut rng);
            assert!(check(&s), "{pattern:?} generated {s:?}");
        }
    }

    #[test]
    fn identifier_pattern() {
        all_match("[a-z][a-z0-9_]{0,8}", |s| {
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            s.len() <= 9
                && first.is_ascii_lowercase()
                && cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        });
    }

    #[test]
    fn printable_ascii_range() {
        all_match("[ -~]{0,80}", |s| s.len() <= 80 && s.chars().all(|c| (' '..='~').contains(&c)));
    }

    #[test]
    fn trailing_dash_is_literal() {
        all_match("[a'%_-]{1,12}", |s| !s.is_empty() && s.chars().all(|c| "a'%_-".contains(c)));
    }

    #[test]
    fn exact_count_and_literals() {
        all_match("ab[0-9]{3}", |s| {
            s.len() == 5 && s.starts_with("ab") && s[2..].chars().all(|c| c.is_ascii_digit())
        });
    }
}
