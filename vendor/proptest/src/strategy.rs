//! The [`Strategy`] trait and its combinators.
//!
//! Strategies here are pure generators: `generate` draws one value from the
//! deterministic [`TestRng`]. There is no value tree and no shrinking.

use crate::string::generate_from_regex;
use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A shared, type-erased strategy. Cloning is cheap (reference counted);
/// this is what `prop_recursive` closures receive and what
/// [`prop_oneof!`](crate::prop_oneof) arms are erased to.
pub type RcStrategy<T> = Rc<dyn Strategy<Value = T>>;

/// Proptest also names the erased form `BoxedStrategy`.
pub type BoxedStrategy<T> = RcStrategy<T>;

/// Erase a strategy into an [`RcStrategy`].
pub fn rc<S: Strategy + 'static>(strategy: S) -> RcStrategy<S::Value> {
    Rc::new(strategy)
}

/// A source of generated values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, map }
    }

    /// Keep only values for which `predicate` holds, retrying generation.
    ///
    /// Panics after 1000 consecutive rejections (real proptest gives up
    /// similarly, via `Reject`).
    fn prop_filter<F>(self, reason: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), predicate }
    }

    /// Build a recursive strategy: `expand` receives the strategy for the
    /// previous level and returns the next level. Levels are unioned with
    /// the leaf so generated sizes vary; `depth` bounds recursion. The
    /// `_desired_size`/`_expected_branch_size` hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> RcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(RcStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf: RcStrategy<Self::Value> = rc(self);
        let mut current = leaf.clone();
        for _ in 0..depth.max(1) {
            let expanded = rc(expand(current));
            current = rc(Union::new(vec![leaf.clone(), expanded]));
        }
        current
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> RcStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        rc(self)
    }
}

impl<T> Strategy for Rc<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.reason);
    }
}

/// A uniform choice between strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<RcStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<RcStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Always produce a clone of one value, as in proptest.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical strategy, usable via [`any`].
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`, as `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String literals are regex strategies, as in proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_regex(self, rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let span = (end as u64) - (start as u64) + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..500 {
            let v = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.0f64..0.9).generate(&mut rng);
            assert!((0.0..0.9).contains(&f));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn map_filter_union_compose() {
        let mut rng = TestRng::deterministic();
        let strategy = crate::prop_oneof![
            (0u64..10).prop_map(|n| n * 2),
            (0u64..10).prop_filter("odd only", |n| n % 2 == 1),
        ];
        for _ in 0..200 {
            assert!(strategy.generate(&mut rng) < 20);
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(value) => {
                    assert!(*value < 100);
                    1
                }
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strategy = (0u64..100).prop_map(Tree::Leaf).prop_recursive(4, 24, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            assert!(depth(&strategy.generate(&mut rng)) <= 5);
        }
    }
}
