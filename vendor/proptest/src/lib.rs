//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the LineageX test suites use: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`, [`strategy::Strategy`] with
//! `prop_map`/`prop_filter`/`prop_recursive`, [`prop_oneof!`], range and
//! tuple strategies, `any::<bool>()`, regex-subset string strategies
//! (`"[a-z][a-z0-9_]{0,8}"`), and [`collection::vec`].
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! seeds: generation is deterministic per test function (a fixed-seed
//! xoshiro stream), so a failing case reproduces on re-run. That trades
//! minimal counterexamples for zero dependencies, which is the right trade
//! for an offline build environment.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The commonly used items in one import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Build a test block of property tests, as in proptest.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` that runs `body` over `config.cases` generated inputs. The
/// body may use `?` with [`test_runner::TestCaseError`] and the
/// `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, error);
                }
            }
        }
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
}

/// Fail the enclosing property test unless `condition` holds.
#[macro_export]
macro_rules! prop_assert {
    ($condition:expr) => {
        $crate::prop_assert!($condition, concat!("assertion failed: ", stringify!($condition)))
    };
    ($condition:expr, $($fmt:tt)+) => {
        if !$condition {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the enclosing property test unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fail the enclosing property test unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Choose uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::rc($arm)),+])
    };
}
