//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal serialization framework that is API-compatible with the subset of
//! serde the LineageX crates use: `#[derive(Serialize)]` on plain structs and
//! enums, consumed by the sibling `serde_json` shim.
//!
//! Instead of serde's visitor-based `Serializer` protocol, [`Serialize`]
//! lowers values into a single JSON-shaped [`Content`] tree. The derive macro
//! (re-exported from `serde_derive`) follows serde's externally-tagged
//! conventions: structs become maps, unit enum variants become strings, and
//! struct/tuple variants become single-entry maps.

#![deny(rustdoc::broken_intra_doc_links)]

pub use serde_derive::Serialize;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A serialized value: the JSON data model.
///
/// [`Serialize`] implementations lower into this tree; `serde_json` renders
/// it. Map entries keep insertion order so struct fields serialize in
/// declaration order, exactly like real serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object; entries keep insertion order.
    Map(Vec<(String, Content)>),
}

/// A type that can lower itself into [`Content`].
///
/// This replaces serde's `Serialize` trait for the offline build. Derive it
/// with `#[derive(Serialize)]`.
pub trait Serialize {
    /// Lower `self` into the serialization data model.
    fn to_content(&self) -> Content;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}
macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_content())).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Hash iteration order is unstable; sort for deterministic output.
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    };
}
impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);
