//! Offline stand-in for `serde_derive`.
//!
//! The real crate rides on `syn`/`quote`; neither is available offline, so
//! this derive walks the raw [`proc_macro::TokenStream`] directly. It
//! supports what the LineageX workspace actually derives: non-generic
//! structs (named, tuple, unit) and enums whose variants are unit, tuple,
//! or struct shaped. The generated impl lowers values into
//! `serde::Content` following serde's externally-tagged conventions.

#![deny(rustdoc::broken_intra_doc_links)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    /// `struct S;` or a unit enum variant.
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields; the count.
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

/// Derive `serde::Serialize` (the offline shim's trait) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize) shim does not support generic types (on `{name}`)");
        }
    }

    let body = match kind.as_str() {
        "struct" => derive_struct(&name, &tokens[i..]),
        "enum" => derive_enum(&name, &tokens[i..]),
        other => panic!("derive(Serialize): cannot derive for `{other}` items"),
    };

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("derive(Serialize): generated impl parses")
}

/// Skip leading `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse the fields that follow a struct/variant name.
fn parse_fields(tokens: &[TokenTree], i: &mut usize) -> Fields {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            *i += 1;
            Fields::Named(named_field_names(&inner))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            *i += 1;
            Fields::Tuple(count_tuple_fields(&inner))
        }
        _ => Fields::Unit,
    }
}

/// Field names of a named-field group, in declaration order.
///
/// Commas inside generic arguments (`BTreeMap<String, Vec<String>>`) are
/// skipped by tracking angle-bracket depth; parenthesized/bracketed types
/// arrive as single groups and need no tracking.
fn named_field_names(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => panic!("derive(Serialize): expected field name, found {other}"),
        }
        i += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

/// Number of top-level comma-separated fields in a tuple group.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Map expression serializing named fields reachable via `prefix`.
fn named_fields_expr(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_content(&{prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
}

fn derive_struct(name: &str, rest: &[TokenTree]) -> String {
    let mut i = 0;
    match parse_fields(rest, &mut i) {
        Fields::Unit => format!("::serde::Content::Str(::std::string::String::from(\"{name}\"))"),
        Fields::Named(fields) => named_fields_expr(&fields, "self."),
        Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> =
                (0..n).map(|k| format!("::serde::Serialize::to_content(&self.{k})")).collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
    }
}

fn derive_enum(name: &str, rest: &[TokenTree]) -> String {
    let body = match rest.first() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("derive(Serialize): expected enum body, found {other:?}"),
    };
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive(Serialize): expected variant name, found {other}"),
        };
        i += 1;
        let fields = parse_fields(&tokens, &mut i);
        variants.push(Variant { name: vname, fields });
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }

    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Content::Str(::std::string::String::from(\"{vname}\")),"
                ),
                Fields::Named(fields) => {
                    let pat = fields.join(", ");
                    let map = named_fields_expr(fields, "");
                    format!(
                        "{name}::{vname} {{ {pat} }} => ::serde::Content::Map(vec![\
                         (::std::string::String::from(\"{vname}\"), {map})]),"
                    )
                }
                Fields::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                    let pat = binders.join(", ");
                    let inner = if *n == 1 {
                        "::serde::Serialize::to_content(__f0)".to_string()
                    } else {
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vname}({pat}) => ::serde::Content::Map(vec![\
                         (::std::string::String::from(\"{vname}\"), {inner})]),"
                    )
                }
            }
        })
        .collect();

    format!("match self {{\n{}\n}}", arms.join("\n"))
}
