//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the LineageX workload generator uses — seeded
//! [`rngs::StdRng`], [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`] — with the API shape of rand 0.8. The
//! backing generator is xoshiro256** seeded through SplitMix64, so equal
//! seeds give identical, platform-independent streams.

#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        next_f64(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

fn next_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 random mantissa bits, uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` via Lemire-style widening multiply.
fn uniform_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Element types uniformly sampleable from a range.
///
/// A single blanket `SampleRange` impl over this trait (rather than one
/// impl per concrete range type) is what lets integer-literal ranges like
/// `rng.gen_range(0..3)` unify with a `usize` context, exactly as in rand.
pub trait SampleUniform: Copy {
    /// A uniform sample from `[start, end)`.
    fn sample_range(start: Self, end: Self, rng: &mut dyn RngCore) -> Self;
    /// A uniform sample from `[start, end]`.
    fn sample_inclusive(start: Self, end: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
                assert!(start < end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_inclusive(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_range(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
        assert!(start < end, "gen_range: empty range");
        start + next_f64(rng) * (end - start)
    }
    fn sample_inclusive(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
        Self::sample_range(start, end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** behind rand's `StdRng` name.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_below, Rng};

    /// Slice shuffling and selection, as in rand's `SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

/// The commonly used items in one import.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut items: Vec<usize> = (0..50).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(items, sorted, "shuffle left the slice in order");
    }
}
