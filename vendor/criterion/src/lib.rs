//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the LineageX benches use — benchmark groups,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over a simple
//! wall-clock harness: each benchmark is warmed up briefly, then timed for
//! a fixed number of batches, and the median batch time is reported to
//! stdout. No statistics, plots, or saved baselines; use with
//! `[[bench]] harness = false` targets.

#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How work per iteration is scaled when reporting throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many bytes each.
    Bytes(u64),
    /// Iterations process this many logical elements each.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    /// Median time per iteration, filled in by [`Bencher::iter`].
    result: &'a mut Duration,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Time `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: aim for batches of ≥ ~5ms.
        let warmup_start = Instant::now();
        let mut warmup_iters: u32 = 0;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            std_black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1);
        let batch = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 10_000) as u32;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            samples.push(start.elapsed() / batch);
        }
        samples.sort_unstable();
        *self.result = samples[samples.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Report throughput alongside the timing of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut median = Duration::ZERO;
        f(&mut Bencher { result: &mut median, sample_size: self.sample_size });
        report(&full, median, self.throughput);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut median = Duration::ZERO;
        f(&mut Bencher { result: &mut median, sample_size: self.sample_size }, input);
        report(&full, median, self.throughput);
        self
    }

    /// Finish the group (prints a trailing newline for readability).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
        println!();
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if !median.is_zero() => {
            let mbps = bytes as f64 / median.as_secs_f64() / 1.0e6;
            format!("  ({mbps:.1} MB/s)")
        }
        Some(Throughput::Elements(n)) if !median.is_zero() => {
            let eps = n as f64 / median.as_secs_f64();
            format!("  ({eps:.0} elem/s)")
        }
        _ => String::new(),
    };
    println!("{name:<50} {median:>12.2?}{rate}");
}

/// The benchmark harness entry object.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut median = Duration::ZERO;
        f(&mut Bencher { result: &mut median, sample_size: self.default_sample_size });
        report(&id.into_id(), median, None);
        self
    }
}

/// Declare a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given benchmark groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
