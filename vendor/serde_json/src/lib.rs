//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the subset the LineageX workspace uses: [`to_string`] /
//! [`to_string_pretty`] over the shim `serde::Serialize` trait, a full JSON
//! parser behind [`from_str`], and a [`Value`] tree with indexing,
//! accessors, and literal comparisons (`value["key"][0] == "text"`).

#![deny(rustdoc::broken_intra_doc_links)]

use serde::{Content, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer or float, compared numerically.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
}

impl Number {
    fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::U64(a), Number::U64(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// The object representation: a key-sorted map, like `serde_json::Map`.
pub type Map = BTreeMap<String, Value>;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Object member by key, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $conv:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$conv() == Some(*other as _)
            }
        }
    )*};
}
impl_value_eq_num!(i32 => as_i64, i64 => as_i64, u32 => as_u64, u64 => as_u64, usize => as_u64, f64 => as_f64);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render_value(self, None, 0))
    }
}

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Convert the serialization data model into a [`Value`].
fn content_to_value(content: &Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::I64(v) => Value::Number(Number::I64(*v)),
        Content::U64(v) => Value::Number(Number::U64(*v)),
        Content::F64(v) => Value::Number(Number::F64(*v)),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => {
            Value::Object(entries.iter().map(|(k, v)| (k.clone(), content_to_value(v))).collect())
        }
    }
}

/// Serialize `value` to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(content_to_value(&value.to_content()))
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render `content`; `indent = Some(step)` selects pretty mode.
fn render_content(content: &Content, indent: Option<usize>, level: usize) -> String {
    let mut out = String::new();
    write_content(&mut out, content, indent, level);
    out
}

fn write_content(out: &mut String, content: &Content, indent: Option<usize>, level: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&Number::F64(*v).to_string()),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => write_composite(
            out,
            ('[', ']'),
            items.len(),
            |out, i, ind, lvl| write_content(out, &items[i], ind, lvl),
            indent,
            level,
        ),
        Content::Map(entries) => write_composite(
            out,
            ('{', '}'),
            entries.len(),
            |out, i, ind, lvl| {
                escape_into(out, &entries[i].0);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_content(out, &entries[i].1, ind, lvl);
            },
            indent,
            level,
        ),
    }
}

fn write_composite(
    out: &mut String,
    brackets: (char, char),
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>, usize),
    indent: Option<usize>,
    level: usize,
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (level + 1)));
        }
        write_item(out, i, indent, level + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * level));
    }
    out.push(brackets.1);
}

fn render_value(value: &Value, indent: Option<usize>, level: usize) -> String {
    let mut out = String::new();
    write_value(&mut out, value, indent, level);
    out
}

/// The [`Value`] twin of [`write_content`]; borrows instead of lowering
/// through a cloned `Content` tree.
fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => write_composite(
            out,
            ('[', ']'),
            items.len(),
            |out, i, ind, lvl| write_value(out, &items[i], ind, lvl),
            indent,
            level,
        ),
        Value::Object(map) => {
            let entries: Vec<(&String, &Value)> = map.iter().collect();
            write_composite(
                out,
                ('{', '}'),
                entries.len(),
                |out, i, ind, lvl| {
                    escape_into(out, entries[i].0);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, entries[i].1, ind, lvl);
                },
                indent,
                level,
            )
        }
    }
}

fn value_to_content(value: &Value) -> Content {
    match value {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::I64(v)) => Content::I64(*v),
        Value::Number(Number::U64(v)) => Content::U64(*v),
        Value::Number(Number::F64(v)) => Content::F64(*v),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => {
            Content::Map(map.iter().map(|(k, v)| (k.clone(), value_to_content(v))).collect())
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render_content(&value.to_content(), None, 0))
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render_content(&value.to_content(), Some(2), 0))
}

/// Types constructible from a parsed [`Value`] — the shim's `Deserialize`.
pub trait Deserialize: Sized {
    /// Build `Self` from a parsed document.
    fn from_value(value: Value) -> Result<Self, Error>;
}

impl Deserialize for Value {
    fn from_value(value: Value) -> Result<Self, Error> {
        Ok(value)
    }
}

/// Parse a JSON document.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::F64(v)))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::Number(Number::U64(v)))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::Number(Number::I64(v)))
        } else {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::F64(v)))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_document() {
        let text = r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value["a"][0], 1u64);
        assert_eq!(value["a"][2], "x\n");
        assert_eq!(value["b"]["c"], -3i64);
        let rendered = to_string(&value).unwrap();
        let again: Value = from_str(&rendered).unwrap();
        assert_eq!(value, again);
    }

    #[test]
    fn invalid_surrogate_pairs_are_errors_not_panics() {
        // Second escape present but not a low surrogate: the pre-fix code
        // underflowed `lo - 0xDC00` here instead of returning Err.
        assert!(from_str::<Value>(r#""\uD800\u0041""#).is_err());
        assert!(from_str::<Value>(r#""\uD800x""#).is_err()); // unpaired high surrogate
        let v: Value = from_str(r#""😀""#).unwrap(); // 😀 round-trips
        assert_eq!(v, "\u{1F600}");
    }

    #[test]
    fn missing_keys_index_to_null() {
        let value: Value = from_str("{}").unwrap();
        assert!(value["nope"][3].is_null());
    }

    #[test]
    fn pretty_output_is_indented() {
        let value: Value = from_str(r#"{"k": [1]}"#).unwrap();
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1\n  ]\n}");
    }
}
