//! The binary snapshot's contract with the live engine:
//!
//! 1. **round-trip ≡ identity** — `Engine::save_snapshot` followed by
//!    `Engine::load_snapshot` yields an engine whose `ReportV2` wire
//!    bytes, interned-index query answers, revision, and session stats
//!    are identical to the engine that wrote the file, for
//!    `jobs ∈ {1, 4}`;
//! 2. **cold entries hydrate correctly** — a redefinition ingested into
//!    a snapshot-loaded engine (whose statement dictionary is entirely
//!    `Cold`) settles to the same graph as a fresh engine fed the edited
//!    log, and only the dirty cone is re-extracted;
//! 3. **sharded ≡ levelled** — on a fully-defined multi-component
//!    workload, component-sharded scheduling and flat level barriers
//!    settle to byte-identical reports;
//! 4. **corruption is typed** — truncation, bit flips, foreign magic,
//!    and future versions all surface as `LineageError::Snapshot`,
//!    never a panic or a half-loaded engine.

use lineagex::datasets::{generate_scaled, generator, GeneratorConfig, ScaleConfig};
use lineagex::engine::{Engine, EngineOptions};
use lineagex::prelude::*;
use lineagex::sqlparse::ast::{Expr, Literal, Statement};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lineagex_test_{tag}_{}.lxsn", std::process::id()))
}

/// A settled engine over the seeded 60-view generator workload.
fn settled_engine(jobs: usize) -> Engine {
    let workload = generator::generate(&GeneratorConfig {
        views: 60,
        star_probability: 0.3,
        ..GeneratorConfig::seeded(11)
    });
    let mut engine = Engine::with_options(EngineOptions { jobs, ..EngineOptions::default() });
    engine.ingest(&workload.full_sql()).unwrap();
    engine.refresh().unwrap();
    engine
}

/// Every (table, column) pair in the settled graph, for query sweeps.
fn all_columns(engine: &mut Engine) -> Vec<(String, String)> {
    let graph = engine.graph().unwrap();
    let mut columns = Vec::new();
    for node in graph.nodes.values() {
        for column in &node.columns {
            columns.push((node.name.clone(), column.clone()));
        }
    }
    columns
}

#[test]
fn roundtrip_is_identity_for_report_index_and_stats() {
    for jobs in [1, 4] {
        let path = temp_path(&format!("roundtrip_j{jobs}"));
        let options = EngineOptions { jobs, ..EngineOptions::default() };
        let mut original = settled_engine(jobs);
        original.save_snapshot(&path).unwrap();
        let mut loaded = Engine::load_snapshot(&path, options).unwrap();
        std::fs::remove_file(&path).ok();

        // Wire document: byte-identical.
        let want = original.report_v2().unwrap().to_json();
        assert_eq!(loaded.report_v2().unwrap().to_json(), want, "jobs={jobs}");

        // Interned index: the persisted CSR answers every traversal
        // exactly like the index the writer built from the live graph.
        let original_index = original.graph_index().unwrap();
        let loaded_index = loaded.graph_index().unwrap();
        for (table, column) in all_columns(&mut original) {
            for spec in [
                QuerySpec::new().from_column(table.as_str(), column.as_str()).downstream(),
                QuerySpec::new().from_column(table.as_str(), column.as_str()).upstream(),
                QuerySpec::new().from_table(table.as_str()).table_level().downstream(),
            ] {
                assert_eq!(
                    spec.run_with(&loaded_index),
                    spec.run_with(&original_index),
                    "jobs={jobs} {table}.{column}"
                );
            }
        }

        // Session bookkeeping survives: revision, counters, entry count.
        assert_eq!(loaded.revision(), original.revision());
        assert_eq!(loaded.stats(), original.stats());
        assert_eq!(loaded.entry_count(), original.entry_count());
        assert!(!loaded.has_pending_work());
    }
}

#[test]
fn loaded_engine_hydrates_cold_entries_and_converges_on_redefinition() {
    let workload =
        generator::generate(&GeneratorConfig { views: 40, ..GeneratorConfig::seeded(23) });
    let path = temp_path("hydrate");
    let options = EngineOptions::default;

    let mut writer = Engine::with_options(options());
    writer.ingest(&workload.full_sql()).unwrap();
    writer.refresh().unwrap();
    writer.save_snapshot(&path).unwrap();

    // Redefine one mid-graph view — same shape, different LIMIT, so the
    // content changes but the lineage stays derivable. The loaded engine
    // hydrates only the dirty cone; every other entry stays cold.
    let target = "view_8";
    let original_statement = workload
        .view_statements
        .iter()
        .find(|s| s.contains(&format!("CREATE VIEW {target} ")))
        .expect("workload defines view_8");
    let mut parsed = lineagex::sqlparse::parse_statement(original_statement).unwrap();
    if let Statement::CreateView { ref mut query, .. } = parsed {
        query.limit = Some(Expr::Literal(Literal::Number("777".to_string())));
    }
    let redefinition = parsed.to_string();
    let cone = {
        let loaded = Engine::load_snapshot(&path, options()).unwrap();
        loaded.downstream_cone(target).len()
    };

    let mut loaded = Engine::load_snapshot(&path, options()).unwrap();
    std::fs::remove_file(&path).ok();
    loaded.ingest(&redefinition).unwrap();
    let extracted = loaded.refresh().unwrap();
    assert_eq!(extracted, cone, "refresh must re-extract exactly the dirty cone");

    // Fresh engine over the edited log — the convergence oracle.
    let mut fresh = Engine::with_options(options());
    fresh.ingest(&workload.full_sql()).unwrap();
    fresh.ingest(&redefinition).unwrap();
    assert_eq!(
        loaded.report_v2().unwrap().to_json(),
        fresh.report_v2().unwrap().to_json(),
        "snapshot-loaded session must converge to the edited log"
    );
}

#[test]
fn sharded_and_levelled_scheduling_settle_identically() {
    // Fully-defined multi-component workload: 4 diamond components.
    let workload = generate_scaled(&ScaleConfig::new(7, 4, 6, 5));
    let sql = workload.full_sql();
    let mut reports = Vec::new();
    for shard_components in [true, false] {
        let mut engine = Engine::with_options(EngineOptions {
            jobs: 4,
            shard_components,
            ..EngineOptions::default()
        });
        engine.ingest(&sql).unwrap();
        engine.refresh().unwrap();
        reports.push(engine.report_v2().unwrap().to_json());
    }
    assert_eq!(reports[0], reports[1], "component shards vs flat levels");
}

#[test]
fn corrupted_snapshots_fail_closed_with_typed_errors() {
    let path = temp_path("corrupt");
    let mut writer = settled_engine(1);
    writer.save_snapshot(&path).unwrap();
    let valid = std::fs::read(&path).unwrap();

    let expect_snapshot_error = |bytes: &[u8], what: &str| {
        std::fs::write(&path, bytes).unwrap();
        match Engine::load_snapshot(&path, EngineOptions::default()) {
            Err(LineageError::Snapshot(_)) => {}
            other => panic!("{what}: expected LineageError::Snapshot, got {other:?}"),
        }
    };

    // Truncation at every region boundary: header, mid-payload, checksum.
    expect_snapshot_error(&valid[..3], "3-byte file");
    expect_snapshot_error(&valid[..valid.len() / 2], "half the payload");
    expect_snapshot_error(&valid[..valid.len() - 4], "clipped checksum");

    // A flipped payload byte is caught by the checksum before decoding.
    let mut flipped = valid.clone();
    flipped[valid.len() / 2] ^= 0x40;
    expect_snapshot_error(&flipped, "bit flip");

    // Foreign magic and future versions are rejected up front.
    let mut magic = valid.clone();
    magic[0] = b'X';
    expect_snapshot_error(&magic, "bad magic");
    let mut version = valid;
    version[4] = 0xfe;
    expect_snapshot_error(&version, "future version");

    std::fs::remove_file(&path).ok();
}
