//! A realistic end-to-end governance scenario combining most of the
//! public API: messy query log (DDL + views + DML + drops + unknown
//! externals), warnings triage, policy switches, impact analysis, path
//! explanations, statistics, and every report backend.

use lineagex::prelude::*;
use lineagex::viz::to_markdown;

const MESSY_LOG: &str = "
    -- Warehouse DDL.
    CREATE TABLE users (uid int, email text, region text, signup date);
    CREATE TABLE events (eid int, uid int, kind text, ts timestamp, payload text);

    -- A view over a table nobody declared (external feed).
    CREATE VIEW enriched AS
    SELECT u.uid AS uid, u.email AS email, f.score AS score
    FROM users u JOIN external_scores f ON u.uid = f.uid;

    -- Defined before its dependency appears later in the log.
    CREATE VIEW regional_activity AS
    SELECT region, n_events FROM activity WHERE n_events > 10;

    CREATE VIEW activity AS
    SELECT u.region AS region, count(*) AS n_events
    FROM users u JOIN events e ON u.uid = e.uid
    GROUP BY u.region;

    -- DML in the log.
    CREATE TABLE audit_log (uid int, email text);
    INSERT INTO audit_log SELECT uid, email FROM enriched;
    UPDATE audit_log SET email = 'redacted' WHERE uid < 0;

    -- Dropped objects are skipped.
    DROP VIEW IF EXISTS obsolete_view;
";

#[test]
fn messy_log_extracts_with_the_right_warnings() {
    let result = lineagex(MESSY_LOG).unwrap();

    // Five lineage-bearing entries: 3 views, 1 insert, 1 update.
    assert_eq!(result.graph.queries.len(), 5);
    assert_eq!(
        result.graph.order,
        vec!["enriched", "activity", "regional_activity", "audit_log", "audit_log#2"]
    );
    // The out-of-order view deferred exactly once.
    assert_eq!(result.deferrals, vec![("regional_activity".into(), "activity".into())]);

    // The external feed was inferred from usage.
    assert_eq!(
        result.inferred["external_scores"],
        ["uid", "score"].iter().map(|s| s.to_string()).collect()
    );
    let enriched = &result.graph.queries["enriched"];
    assert!(enriched.diagnostics.iter().any(|d| d.code == DiagnosticCode::UnknownRelation));

    // The DROP produced a skip diagnostic.
    assert!(
        result
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::SkippedStatement
                && d.message.contains("obsolete_view"))
    );
}

#[test]
fn pii_impact_travels_through_dml() {
    let result = lineagex(MESSY_LOG).unwrap();
    // GDPR question: where does users.email end up?
    let impact = result.impact_of("users", "email");
    assert!(impact.contains(&SourceColumn::new("enriched", "email")));
    assert!(impact.contains(&SourceColumn::new("audit_log", "email")));

    // Explain the flow into the audit log.
    let path = lineagex::core::path_between(
        &result.graph,
        &SourceColumn::new("users", "email"),
        &SourceColumn::new("audit_log", "email"),
    )
    .unwrap();
    assert_eq!(path.len(), 2);
    assert_eq!(path[0].0, SourceColumn::new("enriched", "email"));
}

#[test]
fn statistics_reflect_the_pipeline() {
    let result = lineagex(MESSY_LOG).unwrap();
    let stats = result.graph.stats();
    assert_eq!(stats.queries, 5);
    assert!(stats.nodes_by_kind["External"] >= 1);
    assert!(stats.max_pipeline_depth >= 2, "users -> enriched -> audit_log");
    assert!(stats.reference_edges > 0);
}

#[test]
fn every_report_backend_renders_the_messy_graph() {
    let result = lineagex(MESSY_LOG).unwrap();
    let json = to_output_json(&result.graph);
    assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
    assert!(to_dot(&result.graph).contains("external_scores"));
    assert!(to_html(&result.graph).contains("audit_log"));
    assert!(to_mermaid(&result.graph).contains("n_external_scores"));
    let md = to_markdown(&result.graph);
    assert!(md.contains("## `enriched`"));
    assert!(md.contains("⚠"), "warnings must surface in the report");
}

#[test]
fn strict_mode_surfaces_the_ambiguity_risk() {
    // Both relations expose `uid`; under the strict policy the audit
    // query must be rejected rather than silently guessed.
    let ambiguous = "
        CREATE TABLE a (uid int);
        CREATE TABLE b (uid int);
        CREATE VIEW v AS SELECT uid FROM a, b;
    ";
    assert!(LineageX::new().ambiguity(AmbiguityPolicy::Error).run(ambiguous).is_err());
    // The default policy records what it attributed.
    let lenient = lineagex(ambiguous).unwrap();
    assert!(lenient.graph.queries["v"]
        .diagnostics
        .iter()
        .any(|d| d.code == DiagnosticCode::AmbiguityResolved));
}
