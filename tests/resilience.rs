//! Resilient extraction over messy query logs.
//!
//! The corpus (`tests/corpus/messy_log.sql`) packs every failure mode the
//! lenient pipeline must survive — syntax errors, lex errors, duplicate
//! ids, missing dependencies, unresolvable columns, and log noise — into
//! one log. Lenient mode must extract complete lineage for every
//! well-formed statement, tag each failure with a resolvable `line:col`
//! span, and render each against the source (asserted against the golden
//! diagnostics file).
//!
//! The property test asserts the isolation guarantee behind all of it:
//! injecting one corrupt statement into any valid log never changes the
//! lineage extracted for the other statements.

use lineagex::core::{DiagnosticCode, LineageX, Severity};
use lineagex::datasets::{generator, GeneratorConfig};
use lineagex::engine::{Engine, EngineOptions};
use lineagex::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

const CORPUS_PATH: &str = "tests/corpus/messy_log.sql";
const GOLDEN_PATH: &str = "tests/golden/messy_log_diagnostics.txt";

fn corpus() -> String {
    std::fs::read_to_string(CORPUS_PATH).expect("corpus file exists")
}

/// Every diagnostic of a run, run-level first, then per-query in
/// processing order (mirrors the CLI's reading order).
fn all_diagnostics(result: &LineageResult) -> Vec<Diagnostic> {
    let mut out = result.diagnostics.clone();
    for id in &result.graph.order {
        out.extend(result.graph.queries[id].diagnostics.iter().cloned());
    }
    out
}

#[test]
fn strict_mode_rejects_the_corpus() {
    assert!(lineagex(&corpus()).is_err());
}

#[test]
fn lenient_mode_extracts_every_well_formed_statement() {
    let sql = corpus();
    let result = LineageX::new().lenient().run(&sql).unwrap();

    // Every well-formed lineage-bearing statement got a complete record.
    assert_eq!(
        result.graph.queries.keys().map(String::as_str).collect::<Vec<_>>(),
        vec!["counts", "funnel", "ghost", "scored", "webinfo"]
    );
    // The duplicate resolved last-definition-wins: webinfo has 3 outputs.
    let webinfo = &result.graph.queries["webinfo"];
    assert_eq!(webinfo.output_names(), vec!["wcid", "wpage", "wreg"]);
    assert!(!webinfo.partial);
    // The out-of-order dependency resolved through the deferral stack.
    let funnel = &result.graph.queries["funnel"];
    assert_eq!(funnel.output_names(), vec!["wcid", "n"]);
    assert_eq!(funnel.outputs[1].ccon, BTreeSet::from([SourceColumn::new("counts", "n")]));
    assert!(!funnel.partial);
    // The external feed was inferred, not fatal.
    assert!(result.inferred["ext_scores"].contains("score"));
    // The unresolvable column degraded to a partial record that still
    // carries full lineage for its healthy output.
    let ghost = &result.graph.queries["ghost"];
    assert!(ghost.partial);
    assert_eq!(ghost.output_names(), vec!["nope", "page"]);
    assert!(ghost.outputs[0].ccon.is_empty());
    assert_eq!(ghost.outputs[1].ccon, BTreeSet::from([SourceColumn::new("web", "page")]));

    // Every failure mode surfaced as a typed diagnostic.
    let codes: BTreeSet<DiagnosticCode> = all_diagnostics(&result).iter().map(|d| d.code).collect();
    for expected in [
        DiagnosticCode::ParseError,
        DiagnosticCode::DuplicateQueryId,
        DiagnosticCode::UnknownRelation,
        DiagnosticCode::UnresolvedColumn,
        DiagnosticCode::InferredColumn,
        DiagnosticCode::SkippedStatement,
        DiagnosticCode::NoiseStatement,
    ] {
        assert!(codes.contains(&expected), "missing {expected} in {codes:?}");
    }
}

#[test]
fn every_corpus_diagnostic_resolves_to_its_source_line() {
    let sql = corpus();
    let result = LineageX::new().lenient().run(&sql).unwrap();
    let diagnostics = all_diagnostics(&result);
    assert!(!diagnostics.is_empty());
    for diagnostic in &diagnostics {
        let span =
            diagnostic.span.unwrap_or_else(|| panic!("diagnostic without a span: {diagnostic}"));
        // The span's line:col resolves inside the source.
        let line = sql
            .lines()
            .nth(span.line as usize - 1)
            .unwrap_or_else(|| panic!("line {} out of range for {diagnostic}", span.line));
        assert!(
            span.column as usize <= line.chars().count() + 1,
            "column {} out of range on line {:?} for {diagnostic}",
            span.column,
            line,
        );
        // And its byte range slices real source text.
        assert!(span.start < span.end, "empty span for {diagnostic}");
        assert!(sql.get(span.start..span.end).is_some(), "unsliceable span for {diagnostic}");
        // Rendering always produces the caret excerpt.
        let rendered = diagnostic.render("messy_log.sql", &sql);
        assert!(rendered.contains(&format!(":{}:{}:", span.line, span.column)), "{rendered}");
        assert!(rendered.lines().count() == 3, "expected caret rendering:\n{rendered}");
    }
    // Severities are mixed: hard failures are errors, degradations are
    // warnings, bookkeeping is info.
    let severities: BTreeSet<Severity> = diagnostics.iter().map(|d| d.severity).collect();
    assert_eq!(severities, BTreeSet::from([Severity::Info, Severity::Warning, Severity::Error]));
}

/// The golden rendering: regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test resilience golden`.
#[test]
fn golden_diagnostics_rendering() {
    let sql = corpus();
    let result = LineageX::new().lenient().run(&sql).unwrap();
    let rendered: String = all_diagnostics(&result)
        .iter()
        .map(|d| d.render("messy_log.sql", &sql))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("can write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    assert_eq!(
        rendered, golden,
        "diagnostics rendering drifted from {GOLDEN_PATH}; \
         run with UPDATE_GOLDEN=1 to regenerate"
    );
}

#[test]
fn lenient_session_matches_lenient_batch_on_the_corpus() {
    let sql = corpus();
    let batch = LineageX::new().lenient().run(&sql).unwrap();
    let mut engine = Engine::with_options(EngineOptions {
        extract: lineagex::core::ExtractOptions::new().with_lenient(),
        ..EngineOptions::default()
    });
    engine.ingest(&sql).unwrap();
    let graph = engine.graph().unwrap();
    assert_eq!(&graph.queries, &batch.graph.queries);
    assert_eq!(&graph.nodes, &batch.graph.nodes);
}

/// Running a dialect corpus under the *wrong* dialect is just another
/// flavour of messy log: unknown comment styles, quoting, and statement
/// forms must degrade into span-tagged diagnostics in lenient mode —
/// never a panic, never corrupted lineage for the statements that do
/// parse.
#[test]
fn wrong_dialect_degrades_with_span_tagged_diagnostics() {
    for fixture_kind in DialectKind::ALL {
        let path = format!("tests/corpus/dialects/{}.sql", fixture_kind.name());
        let sql = std::fs::read_to_string(&path).expect("dialect corpus exists");
        for run_kind in DialectKind::ALL {
            let result =
                LineageX::new().dialect(run_kind).lenient().run(&sql).unwrap_or_else(|e| {
                    panic!(
                        "{} corpus under {} must not fail: {e}",
                        fixture_kind.name(),
                        run_kind.name()
                    )
                });
            // Whatever went wrong is tagged with a span resolving into
            // the source, so the failure is diagnosable.
            for diagnostic in all_diagnostics(&result) {
                if let Some(span) = diagnostic.span {
                    assert!(
                        sql.get(span.start..span.end).is_some(),
                        "{} under {}: unsliceable span for {diagnostic}",
                        fixture_kind.name(),
                        run_kind.name(),
                    );
                }
            }
            // Nothing disappears silently: either lineage came out, or
            // diagnostics explain what was lost.
            assert!(
                !result.graph.queries.is_empty() || !all_diagnostics(&result).is_empty(),
                "{} under {} lost statements without a diagnostic",
                fixture_kind.name(),
                run_kind.name(),
            );
        }
    }
}

/// The engine session survives a wrong-dialect ingest the same way the
/// batch path does: diagnostics, not panics or corrupted state, and the
/// session stays usable for follow-up ANSI statements.
#[test]
fn engine_survives_wrong_dialect_ingest() {
    let bigquery = std::fs::read_to_string("tests/corpus/dialects/bigquery.sql").unwrap();
    let mut engine = Engine::with_options(EngineOptions {
        extract: lineagex::core::ExtractOptions::new().with_lenient(),
        ..EngineOptions::default()
    });
    // BigQuery `#` comments and QUALIFY are not ANSI; the ingest must
    // degrade, not panic, and must leave the session consistent.
    let _ = engine.ingest(&bigquery);
    engine
        .ingest("CREATE TABLE t (a int); CREATE VIEW v AS SELECT a FROM t;")
        .expect("session stays usable after a wrong-dialect ingest");
    let graph = engine.graph().unwrap();
    assert_eq!(graph.queries["v"].outputs[0].ccon, BTreeSet::from([SourceColumn::new("t", "a")]));
}

/// Corrupt statements for injection: each must fail to parse (or lex)
/// without swallowing its neighbours. Unterminated quotes are excluded
/// deliberately — a string literal legitimately consumes everything to
/// the next quote, so no recovery can save the statements it swallows.
const CORRUPT: &[&str] = &[
    "SELECT FROM nowhere",
    "CREATE VIEW broken AS SELEC 1",
    "GROUP BY x",
    "SELECT a # b FROM t",
    "CREATE OR VIEW bad AS SELECT 1",
    "%%%",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Injecting one corrupt statement into any valid log never changes
    /// the lineage extracted for the other statements: lenient mode over
    /// the corrupted log equals strict mode over the clean log, plus
    /// exactly the injected failure's diagnostics.
    #[test]
    fn corrupt_statement_never_changes_other_lineage(
        seed in 0u64..10_000,
        position_pick in 0usize..1000,
        corrupt_pick in 0usize..CORRUPT.len(),
    ) {
        let workload = generator::generate(&GeneratorConfig {
            views: 8,
            ..GeneratorConfig::seeded(seed)
        });
        let clean =
            lineagex(&workload.full_sql()).map_err(|e| TestCaseError::fail(e.to_string()))?;

        // Rebuild the log with one corrupt statement spliced in.
        let mut statements: Vec<String> = workload
            .ddl
            .split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        statements.extend(workload.view_statements.iter().cloned());
        let position = position_pick % (statements.len() + 1);
        statements.insert(position, CORRUPT[corrupt_pick].to_string());
        let corrupted = statements.join(";\n") + ";";

        let lenient = LineageX::new()
            .lenient()
            .run(&corrupted)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&lenient.graph.queries, &clean.graph.queries);
        prop_assert_eq!(&lenient.graph.nodes, &clean.graph.nodes);
        prop_assert_eq!(lenient.graph.all_edges(), clean.graph.all_edges());
        // Exactly one parse failure was recorded, and nothing else.
        let codes: Vec<DiagnosticCode> =
            lenient.diagnostics.iter().map(|d| d.code).collect();
        prop_assert_eq!(codes, vec![DiagnosticCode::ParseError]);
    }

    /// Dialect selection is a pure front-end concern: for input that uses
    /// only the ANSI core surface, every dialect produces byte-identical
    /// lineage output.
    #[test]
    fn dialect_never_changes_lineage_for_ansi_input(seed in 0u64..10_000) {
        let workload = generator::generate(&GeneratorConfig {
            views: 6,
            ..GeneratorConfig::seeded(seed)
        });
        let sql = workload.full_sql();
        let baseline = lineagex(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let baseline_bytes = lineagex::viz::to_output_json(&baseline.graph);
        for kind in DialectKind::ALL {
            let result = LineageX::new()
                .dialect(kind)
                .run(&sql)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", kind.name())))?;
            prop_assert_eq!(
                lineagex::viz::to_output_json(&result.graph),
                baseline_bytes.clone(),
                "dialect {} changed pure-ANSI lineage bytes",
                kind.name()
            );
        }
    }
}
