//! Resilient extraction over messy query logs.
//!
//! The corpus (`tests/corpus/messy_log.sql`) packs every failure mode the
//! lenient pipeline must survive — syntax errors, lex errors, duplicate
//! ids, missing dependencies, unresolvable columns, and log noise — into
//! one log. Lenient mode must extract complete lineage for every
//! well-formed statement, tag each failure with a resolvable `line:col`
//! span, and render each against the source (asserted against the golden
//! diagnostics file).
//!
//! The property test asserts the isolation guarantee behind all of it:
//! injecting one corrupt statement into any valid log never changes the
//! lineage extracted for the other statements.

use lineagex::core::{DiagnosticCode, LineageX, Severity};
use lineagex::datasets::{generator, GeneratorConfig};
use lineagex::engine::{Engine, EngineOptions};
use lineagex::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

const CORPUS_PATH: &str = "tests/corpus/messy_log.sql";
const GOLDEN_PATH: &str = "tests/golden/messy_log_diagnostics.txt";

fn corpus() -> String {
    std::fs::read_to_string(CORPUS_PATH).expect("corpus file exists")
}

/// Every diagnostic of a run, run-level first, then per-query in
/// processing order (mirrors the CLI's reading order).
fn all_diagnostics(result: &LineageResult) -> Vec<Diagnostic> {
    let mut out = result.diagnostics.clone();
    for id in &result.graph.order {
        out.extend(result.graph.queries[id].diagnostics.iter().cloned());
    }
    out
}

#[test]
fn strict_mode_rejects_the_corpus() {
    assert!(lineagex(&corpus()).is_err());
}

#[test]
fn lenient_mode_extracts_every_well_formed_statement() {
    let sql = corpus();
    let result = LineageX::new().lenient().run(&sql).unwrap();

    // Every well-formed lineage-bearing statement got a complete record.
    assert_eq!(
        result.graph.queries.keys().map(String::as_str).collect::<Vec<_>>(),
        vec!["counts", "funnel", "ghost", "scored", "webinfo"]
    );
    // The duplicate resolved last-definition-wins: webinfo has 3 outputs.
    let webinfo = &result.graph.queries["webinfo"];
    assert_eq!(webinfo.output_names(), vec!["wcid", "wpage", "wreg"]);
    assert!(!webinfo.partial);
    // The out-of-order dependency resolved through the deferral stack.
    let funnel = &result.graph.queries["funnel"];
    assert_eq!(funnel.output_names(), vec!["wcid", "n"]);
    assert_eq!(funnel.outputs[1].ccon, BTreeSet::from([SourceColumn::new("counts", "n")]));
    assert!(!funnel.partial);
    // The external feed was inferred, not fatal.
    assert!(result.inferred["ext_scores"].contains("score"));
    // The unresolvable column degraded to a partial record that still
    // carries full lineage for its healthy output.
    let ghost = &result.graph.queries["ghost"];
    assert!(ghost.partial);
    assert_eq!(ghost.output_names(), vec!["nope", "page"]);
    assert!(ghost.outputs[0].ccon.is_empty());
    assert_eq!(ghost.outputs[1].ccon, BTreeSet::from([SourceColumn::new("web", "page")]));

    // Every failure mode surfaced as a typed diagnostic.
    let codes: BTreeSet<DiagnosticCode> = all_diagnostics(&result).iter().map(|d| d.code).collect();
    for expected in [
        DiagnosticCode::ParseError,
        DiagnosticCode::DuplicateQueryId,
        DiagnosticCode::UnknownRelation,
        DiagnosticCode::UnresolvedColumn,
        DiagnosticCode::InferredColumn,
        DiagnosticCode::SkippedStatement,
        DiagnosticCode::NoiseStatement,
    ] {
        assert!(codes.contains(&expected), "missing {expected} in {codes:?}");
    }
}

#[test]
fn every_corpus_diagnostic_resolves_to_its_source_line() {
    let sql = corpus();
    let result = LineageX::new().lenient().run(&sql).unwrap();
    let diagnostics = all_diagnostics(&result);
    assert!(!diagnostics.is_empty());
    for diagnostic in &diagnostics {
        let span =
            diagnostic.span.unwrap_or_else(|| panic!("diagnostic without a span: {diagnostic}"));
        // The span's line:col resolves inside the source.
        let line = sql
            .lines()
            .nth(span.line as usize - 1)
            .unwrap_or_else(|| panic!("line {} out of range for {diagnostic}", span.line));
        assert!(
            span.column as usize <= line.chars().count() + 1,
            "column {} out of range on line {:?} for {diagnostic}",
            span.column,
            line,
        );
        // And its byte range slices real source text.
        assert!(span.start < span.end, "empty span for {diagnostic}");
        assert!(sql.get(span.start..span.end).is_some(), "unsliceable span for {diagnostic}");
        // Rendering always produces the caret excerpt.
        let rendered = diagnostic.render("messy_log.sql", &sql);
        assert!(rendered.contains(&format!(":{}:{}:", span.line, span.column)), "{rendered}");
        assert!(rendered.lines().count() == 3, "expected caret rendering:\n{rendered}");
    }
    // Severities are mixed: hard failures are errors, degradations are
    // warnings, bookkeeping is info.
    let severities: BTreeSet<Severity> = diagnostics.iter().map(|d| d.severity).collect();
    assert_eq!(severities, BTreeSet::from([Severity::Info, Severity::Warning, Severity::Error]));
}

/// The golden rendering: regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test resilience golden`.
#[test]
fn golden_diagnostics_rendering() {
    let sql = corpus();
    let result = LineageX::new().lenient().run(&sql).unwrap();
    let rendered: String = all_diagnostics(&result)
        .iter()
        .map(|d| d.render("messy_log.sql", &sql))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("can write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    assert_eq!(
        rendered, golden,
        "diagnostics rendering drifted from {GOLDEN_PATH}; \
         run with UPDATE_GOLDEN=1 to regenerate"
    );
}

#[test]
fn lenient_session_matches_lenient_batch_on_the_corpus() {
    let sql = corpus();
    let batch = LineageX::new().lenient().run(&sql).unwrap();
    let mut engine = Engine::with_options(EngineOptions {
        extract: lineagex::core::ExtractOptions::new().with_lenient(),
        ..EngineOptions::default()
    });
    engine.ingest(&sql).unwrap();
    let graph = engine.graph().unwrap();
    assert_eq!(&graph.queries, &batch.graph.queries);
    assert_eq!(&graph.nodes, &batch.graph.nodes);
}

/// Corrupt statements for injection: each must fail to parse (or lex)
/// without swallowing its neighbours. Unterminated quotes are excluded
/// deliberately — a string literal legitimately consumes everything to
/// the next quote, so no recovery can save the statements it swallows.
const CORRUPT: &[&str] = &[
    "SELECT FROM nowhere",
    "CREATE VIEW broken AS SELEC 1",
    "GROUP BY x",
    "SELECT a # b FROM t",
    "CREATE OR VIEW bad AS SELECT 1",
    "%%%",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Injecting one corrupt statement into any valid log never changes
    /// the lineage extracted for the other statements: lenient mode over
    /// the corrupted log equals strict mode over the clean log, plus
    /// exactly the injected failure's diagnostics.
    #[test]
    fn corrupt_statement_never_changes_other_lineage(
        seed in 0u64..10_000,
        position_pick in 0usize..1000,
        corrupt_pick in 0usize..CORRUPT.len(),
    ) {
        let workload = generator::generate(&GeneratorConfig {
            views: 8,
            ..GeneratorConfig::seeded(seed)
        });
        let clean =
            lineagex(&workload.full_sql()).map_err(|e| TestCaseError::fail(e.to_string()))?;

        // Rebuild the log with one corrupt statement spliced in.
        let mut statements: Vec<String> = workload
            .ddl
            .split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        statements.extend(workload.view_statements.iter().cloned());
        let position = position_pick % (statements.len() + 1);
        statements.insert(position, CORRUPT[corrupt_pick].to_string());
        let corrupted = statements.join(";\n") + ";";

        let lenient = LineageX::new()
            .lenient()
            .run(&corrupted)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&lenient.graph.queries, &clean.graph.queries);
        prop_assert_eq!(&lenient.graph.nodes, &clean.graph.nodes);
        prop_assert_eq!(lenient.graph.all_edges(), clean.graph.all_edges());
        // Exactly one parse failure was recorded, and nothing else.
        let codes: Vec<DiagnosticCode> =
            lenient.diagnostics.iter().map(|d| d.code).collect();
        prop_assert_eq!(codes, vec![DiagnosticCode::ParseError]);
    }
}
