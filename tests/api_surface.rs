//! Public-API snapshot guard.
//!
//! Two golden files pin the workspace's front door:
//!
//! * `tests/golden/prelude_api.txt` — the sorted export list of
//!   `lineagex::prelude`, parsed from `src/lib.rs`. An accidental
//!   removal (or unreviewed addition) of a prelude export fails CI.
//! * `tests/golden/report_v2.json` — the `ReportV2` document for the
//!   paper's Example 1. The v2 wire format is versioned: byte drift
//!   without a `schema_version` bump is a breaking change.
//!
//! Regenerate intentionally with
//! `UPDATE_GOLDEN=1 cargo test --test api_surface`.

use lineagex::datasets::example1;
use lineagex::prelude::*;

const PRELUDE_GOLDEN: &str = "tests/golden/prelude_api.txt";
const REPORT_GOLDEN: &str = "tests/golden/report_v2.json";

/// Extract the exported identifiers from the `pub mod prelude` block of
/// `src/lib.rs`: every leaf of every `pub use` list, sorted and deduped.
fn prelude_exports() -> Vec<String> {
    let source = include_str!("../src/lib.rs");
    let start = source.find("pub mod prelude {").expect("src/lib.rs has a prelude");
    let block = &source[start..];
    let mut exports = std::collections::BTreeSet::new();
    for statement in block.split(';') {
        let Some(use_pos) = statement.find("pub use ") else { continue };
        let path = statement[use_pos + "pub use ".len()..].trim();
        let leaves: Vec<&str> = match (path.find('{'), path.rfind('}')) {
            (Some(open), Some(close)) => path[open + 1..close].split(',').collect(),
            _ => path.rsplit("::").take(1).collect(),
        };
        for leaf in leaves {
            let leaf = leaf.trim();
            if !leaf.is_empty() {
                exports.insert(leaf.to_string());
            }
        }
    }
    exports.into_iter().collect()
}

#[test]
fn prelude_export_list_is_pinned() {
    let rendered = prelude_exports().join("\n") + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(PRELUDE_GOLDEN, &rendered).expect("can write golden file");
        return;
    }
    let golden = std::fs::read_to_string(PRELUDE_GOLDEN).expect("golden file exists");
    assert_eq!(
        rendered, golden,
        "the lineagex::prelude export list drifted from {PRELUDE_GOLDEN}; \
         if the API change is intentional, run with UPDATE_GOLDEN=1 to regenerate"
    );
}

#[test]
fn prelude_parser_sees_the_new_surface() {
    // Sanity-check the source parser itself: the unified query surface
    // must be part of what the guard pins.
    let exports = prelude_exports();
    for name in ["LineageView", "GraphQuery", "QuerySpec", "QueryAnswer", "ReportV2", "lineagex"] {
        assert!(exports.contains(&name.to_string()), "prelude must export {name}");
    }
}

#[test]
fn example1_report_v2_is_golden() {
    let mut result = lineagex(&example1::full_log()).unwrap();
    let rendered = result.report_v2().unwrap().to_json() + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(REPORT_GOLDEN, &rendered).expect("can write golden file");
        return;
    }
    let golden = std::fs::read_to_string(REPORT_GOLDEN).expect("golden file exists");
    assert_eq!(
        rendered, golden,
        "the ReportV2 document drifted from {REPORT_GOLDEN}; the v2 wire format is \
         versioned — if the change is intentional, regenerate with UPDATE_GOLDEN=1 \
         (and bump SCHEMA_VERSION if the shape changed)"
    );
}

#[test]
fn report_v2_golden_sanity() {
    // Spot-check the golden content so a bad regeneration cannot lock in
    // wrong lineage.
    let golden = std::fs::read_to_string(REPORT_GOLDEN).expect("golden file exists");
    let value: serde_json::Value = serde_json::from_str(&golden).unwrap();
    assert_eq!(value["schema_version"], 2);
    assert_eq!(value["relations"]["web"]["kind"], "base_table");
    assert_eq!(value["relations"]["webinfo"]["kind"], "view");
    let outputs = value["queries"]["webinfo"]["outputs"].as_array().unwrap();
    assert_eq!(outputs[0]["name"], "wcid");
    assert_eq!(outputs[0]["sources"][0], "customers.cid");
    assert_eq!(value["queries"]["webinfo"]["partial"], false);
    assert!(value["edges"].as_array().unwrap().len() > 10);
    assert_eq!(value["stats"]["relations"], 6);
    assert_eq!(value["diagnostics"].as_array().unwrap().len(), 0);
}

#[test]
fn report_v2_is_backend_independent_on_example1() {
    // The same document must come out of the incremental engine.
    let mut batch = lineagex(&example1::full_log()).unwrap();
    let mut engine = Engine::new();
    for statement in example1::full_log().split(';').filter(|s| !s.trim().is_empty()) {
        engine.ingest(statement).unwrap();
    }
    assert_eq!(batch.report_v2().unwrap().to_json(), engine.report_v2().unwrap().to_json());
}
