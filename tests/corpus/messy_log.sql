-- LineageX resilience corpus: a deliberately messy production-style log.
-- Every failure mode the lenient pipeline must survive appears once, so
-- the golden diagnostics file exercises each diagnostic code.
BEGIN;
SET search_path = analytics;

CREATE TABLE web (cid int, page text, reg boolean);
CREATE TABLE events (eid int, cid int, kind text);

-- A perfectly healthy view.
CREATE VIEW webinfo AS SELECT cid AS wcid, page AS wpage FROM web WHERE reg;

-- Syntax error: the parser must resynchronise at the ';'.
CREATE VIEW broken AS SELECT FROM WHERE;

-- Lex error: '#' is not SQL; the lexer must resynchronise too.
SELECT cid # kind FROM events;

-- Depends on a relation defined later (auto-inference handles it).
CREATE VIEW funnel AS SELECT wcid, n FROM counts;

CREATE VIEW counts AS SELECT e.cid AS wcid, count(*) AS n FROM events e GROUP BY e.cid;

-- Scans an external feed nobody declared.
CREATE VIEW scored AS
SELECT w.wcid AS cid, s.score AS score
FROM webinfo w JOIN ext_scores s ON w.wcid = s.cid;

-- Duplicate id: the later definition must win, like a session redefinition.
CREATE VIEW webinfo AS SELECT cid AS wcid, page AS wpage, reg AS wreg FROM web;

-- References a column the schema does not have: partial lineage.
CREATE VIEW ghost AS SELECT web.nope AS nope, web.page AS page FROM web;

EXPLAIN SELECT * FROM webinfo;
ANALYZE web;

DELETE FROM events;
DROP VIEW missing_view;

COMMIT;
ROLLBACK;
