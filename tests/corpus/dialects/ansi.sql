-- ANSI corpus: the permissive core grammar every dialect builds on.
-- Double-quoted identifiers, standard comments, CTEs, and set ops.

CREATE TABLE web (cid int, "date" date, page text, reg boolean);
CREATE TABLE customers (cid int, name text, region text);

CREATE VIEW webinfo AS
  SELECT cid AS wcid, "date" AS wdate, page AS wpage, reg AS wreg
  FROM web
  WHERE reg;

/* block comments are core grammar */
CREATE VIEW "regional activity" AS
  SELECT c.region, w.wpage
  FROM webinfo w
  JOIN customers c ON c.cid = w.wcid;

CREATE TABLE page_counts AS
  WITH hits AS (
    SELECT wpage, wcid FROM webinfo
  )
  SELECT wpage, COUNT(wcid) AS n
  FROM hits
  GROUP BY wpage;

CREATE VIEW combined AS
  SELECT wpage FROM webinfo
  UNION
  SELECT page FROM web;

INSERT INTO page_counts
  SELECT wpage, COUNT(*) AS n FROM webinfo GROUP BY wpage;

UPDATE page_counts SET n = n + 1 WHERE wpage IS NOT NULL;
