-- T-SQL corpus: [bracket] identifiers, SELECT TOP n, and MERGE.

CREATE TABLE [raw web] (cid int, event_date date, page text, reg bit);
CREATE TABLE customers (cid int, name text, region text);
CREATE TABLE page_counts (wpage text, n int);

CREATE VIEW webinfo AS
  SELECT cid AS wcid, event_date AS wdate, page AS wpage, reg AS wreg
  FROM [raw web]
  WHERE reg = 1;

CREATE VIEW [regional activity] AS
  SELECT c.region, w.wpage
  FROM webinfo w
  JOIN customers c ON c.cid = w.wcid;

-- TOP bounds the row count; it touches no columns, so lineage is
-- unchanged by it.
CREATE VIEW recent_hits AS
  SELECT TOP 10 wcid, wpage, wdate
  FROM webinfo;

CREATE TABLE top_pages AS
  SELECT TOP (5) wpage, COUNT(*) AS n
  FROM webinfo
  GROUP BY wpage;

MERGE INTO page_counts p
USING top_pages t ON p.wpage = t.wpage
WHEN MATCHED THEN UPDATE SET n = t.n;

INSERT INTO page_counts SELECT TOP 100 wpage, n FROM top_pages;
