-- Snowflake corpus: // line comments, QUALIFY, and MERGE.

CREATE TABLE web (cid int, event_date date, page text, reg boolean);
CREATE TABLE customers (cid int, name text, region text);
CREATE TABLE page_counts (wpage text, n int);

// Snowflake also keeps the standard comment styles.
CREATE VIEW webinfo AS
  SELECT cid AS wcid, event_date AS wdate, page AS wpage, reg AS wreg
  FROM web
  WHERE reg;

CREATE VIEW "regional activity" AS  // trailing dialect comment
  SELECT c.region, w.wpage
  FROM webinfo w
  JOIN customers c ON c.cid = w.wcid;

// QUALIFY filters after windowing; its column references are lineage
// references, like a WHERE clause's.
CREATE VIEW first_hits AS
  SELECT wcid, wpage, wdate
  FROM webinfo
  QUALIFY wdate = wdate;

CREATE TABLE top_pages AS
  SELECT wpage, COUNT(*) AS n
  FROM webinfo
  GROUP BY wpage
  QUALIFY wpage = wpage;

MERGE INTO page_counts p
USING top_pages t ON p.wpage = t.wpage
WHEN MATCHED THEN UPDATE SET n = t.n;

INSERT INTO page_counts SELECT wpage, n FROM top_pages;
