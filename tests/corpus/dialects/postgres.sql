-- Postgres corpus: standard quoting and comments, MERGE support
-- (PostgreSQL 15+). Backticks and brackets are NOT identifiers here.

CREATE TABLE web (cid int, "date" date, page text, reg boolean);
CREATE TABLE customers (cid int, name text, region text);
CREATE TABLE page_counts (wpage text, n int);

CREATE VIEW webinfo AS
  SELECT cid AS wcid, "date" AS wdate, page AS wpage, reg AS wreg
  FROM web
  WHERE reg;

CREATE MATERIALIZED VIEW "regional activity" AS
  SELECT c.region, w.wpage
  FROM webinfo w
  JOIN customers c ON c.cid = w.wcid;

CREATE TABLE top_pages AS
  SELECT wpage, COUNT(*) AS n
  FROM webinfo
  GROUP BY wpage;

-- MERGE is recognized and skipped with a dialect-fallback diagnostic:
-- the statement form carries no modelled lineage yet.
MERGE INTO page_counts p
USING top_pages t ON p.wpage = t.wpage
WHEN MATCHED THEN UPDATE SET n = t.n
WHEN NOT MATCHED THEN INSERT (wpage, n) VALUES (t.wpage, t.n);

INSERT INTO page_counts SELECT wpage, n FROM top_pages;
