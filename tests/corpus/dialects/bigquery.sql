# BigQuery corpus: # line comments, backtick identifiers, QUALIFY, MERGE.

CREATE TABLE `raw web` (cid INT64, event_date DATE, page STRING, reg BOOL);
CREATE TABLE customers (cid INT64, name STRING, region STRING);
CREATE TABLE page_counts (wpage STRING, n INT64);

# Backticks quote any identifier, spaces included.
CREATE VIEW webinfo AS
  SELECT cid AS wcid, event_date AS wdate, page AS wpage, reg AS wreg
  FROM `raw web`
  WHERE reg;

CREATE VIEW `regional activity` AS
  SELECT c.region, w.wpage
  FROM webinfo w
  JOIN customers c ON c.cid = w.wcid;

CREATE VIEW first_hits AS  # QUALIFY is BigQuery surface
  SELECT wcid, wpage, wdate
  FROM webinfo
  QUALIFY wdate = wdate;

CREATE TABLE top_pages AS
  SELECT wpage, COUNT(*) AS n
  FROM webinfo
  GROUP BY wpage;

MERGE INTO page_counts p
USING top_pages t ON p.wpage = t.wpage
WHEN MATCHED THEN UPDATE SET n = t.n;

INSERT INTO page_counts SELECT wpage, n FROM top_pages;
