//! Cross-validation: the static AST path and the simulated-EXPLAIN path
//! are independent implementations of the same semantics; on
//! catalog-complete workloads they must produce identical lineage.

use lineagex::catalog::{Catalog, SimulatedDatabase};
use lineagex::core::{ExplainPathExtractor, QueryDict};
use lineagex::datasets::{example1, generator, mimic, GeneratorConfig};
use lineagex::prelude::*;

fn explain_extract(ddl: &str, views_sql: &str) -> LineageResult {
    let qd = QueryDict::from_sql(views_sql).unwrap();
    let db = SimulatedDatabase::with_catalog(Catalog::from_ddl(ddl).unwrap());
    ExplainPathExtractor::new(qd, db).run().unwrap()
}

fn assert_paths_agree(static_result: &LineageResult, connected: &LineageResult) {
    assert_eq!(static_result.graph.queries.len(), connected.graph.queries.len());
    for (id, qs) in &static_result.graph.queries {
        let qc = &connected.graph.queries[id];
        assert_eq!(qs.outputs, qc.outputs, "{id}: outputs disagree");
        assert_eq!(qs.cref, qc.cref, "{id}: C_ref disagrees");
        assert_eq!(qs.tables, qc.tables, "{id}: table lineage disagrees");
    }
}

#[test]
fn paths_agree_on_example1() {
    let static_result = lineagex(&example1::full_log()).unwrap();
    let connected = explain_extract(example1::DDL, example1::QUERIES);
    assert_paths_agree(&static_result, &connected);
}

#[test]
fn paths_agree_on_mimic() {
    let workload = mimic::workload();
    let static_result = lineagex(&workload.full_sql()).unwrap();
    let views: String = workload.view_statements.iter().map(|s| format!("{s};")).collect();
    let connected = explain_extract(&workload.ddl, &views);
    assert_paths_agree(&static_result, &connected);
}

#[test]
fn paths_agree_on_generated_workloads() {
    for seed in 0..10u64 {
        let workload = generator::generate(&GeneratorConfig::seeded(seed));
        let static_result =
            lineagex(&workload.full_sql()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let views: String = workload.view_statements.iter().map(|s| format!("{s};")).collect();
        let connected = explain_extract(&workload.ddl, &views);
        assert_paths_agree(&static_result, &connected);
    }
}

#[test]
fn both_paths_match_generated_ground_truth() {
    for seed in [100u64, 200, 300] {
        let workload = generator::generate(&GeneratorConfig::seeded(seed));
        let static_result = lineagex(&workload.full_sql()).unwrap();
        let failures = workload.ground_truth.diff(&static_result.graph);
        assert!(failures.is_empty(), "static seed {seed}:\n{}", failures.join("\n"));

        let views: String = workload.view_statements.iter().map(|s| format!("{s};")).collect();
        let connected = explain_extract(&workload.ddl, &views);
        let failures = workload.ground_truth.diff(&connected.graph);
        assert!(failures.is_empty(), "connected seed {seed}:\n{}", failures.join("\n"));
    }
}

#[test]
fn connected_mode_is_strict_about_metadata() {
    // Static mode infers unknown externals; connected mode errors like
    // Postgres — the documented semantic difference between the paths.
    let views = "CREATE VIEW v AS SELECT w.page FROM missing_table w;";
    let static_result = lineagex(views).unwrap();
    assert!(static_result.inferred.contains_key("missing_table"));

    let qd = QueryDict::from_sql(views).unwrap();
    let db = SimulatedDatabase::new();
    let err = ExplainPathExtractor::new(qd, db).run().unwrap_err();
    assert!(matches!(err, LineageError::Database(_)));
}
