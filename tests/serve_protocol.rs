//! Wire-protocol pinning for `lineagex serve`.
//!
//! A scripted single-client session — every request kind, plus the
//! malformed-input error paths — is run against an in-process [`Server`]
//! and the full request/response transcript is pinned byte-for-byte in
//! `tests/golden/serve_proto.txt`. Protocol drift (field order, error
//! codes, revision stamping) without a `PROTOCOL_VERSION` bump fails CI.
//!
//! Regenerate intentionally with
//! `UPDATE_GOLDEN=1 cargo test --test serve_protocol`.
//!
//! Beyond the golden transcript:
//! * the transcript must be identical under `--jobs 1` and `--jobs 4`
//!   (server-side parallelism is invisible on the wire);
//! * a served `report` result must be byte-identical to what
//!   [`LineageView::report_v2`] serialises for the same statements —
//!   the *incremental ≡ batch* invariant extended to the wire.

use lineagex::datasets::example1;
use lineagex::prelude::*;
use lineagex::serve::proto::{QueryParams, Request};
use lineagex::serve::{Client, ServeOptions, Server};

const GOLDEN: &str = "tests/golden/serve_proto.txt";

const PIPELINE_SQL: &str = "CREATE TABLE web (cid int, date date, page text, reg boolean); \
     CREATE VIEW webinfo AS SELECT cid AS wcid, page AS wpage FROM web WHERE reg; \
     CREATE VIEW info AS SELECT wpage FROM webinfo;";

fn start(jobs: usize) -> Server {
    let options =
        ServeOptions { engine: EngineOptions { jobs, ..Default::default() }, ..Default::default() };
    Server::start("127.0.0.1:0", options).expect("server starts")
}

/// The scripted session: a mix of typed requests (rendered through
/// [`Request::to_line`], so the golden also pins the client-side
/// serialisation) and raw lines exercising the recovery paths.
fn script() -> Vec<String> {
    let typed: Vec<(u64, Request)> = vec![
        (1, Request::Ping),
        (2, Request::Ingest { sql: PIPELINE_SQL.to_string() }),
        (3, Request::Query(QueryParams { origins: vec!["web.page".into()], ..Default::default() })),
        (
            4,
            Request::Query(QueryParams {
                origins: vec!["info.wpage".into()],
                upstream: true,
                depth: Some(1),
                ..Default::default()
            }),
        ),
        (
            5,
            Request::Query(QueryParams {
                origins: vec!["web".into()],
                table_level: true,
                ..Default::default()
            }),
        ),
        (
            6,
            Request::Query(QueryParams {
                origins: vec!["web.page".into()],
                to: Some("info.wpage".into()),
                ..Default::default()
            }),
        ),
        (7, Request::Report),
        (8, Request::Stats),
        (9, Request::Diagnostics),
        (10, Request::Refresh),
        (11, Request::Drop { names: vec!["info".into()] }),
        (
            12,
            Request::Query(QueryParams { origins: vec!["web.page".into()], ..Default::default() }),
        ),
        (13, Request::Metrics),
    ];
    let mut lines: Vec<String> =
        typed.into_iter().map(|(id, request)| request.to_line(Some(id))).collect();
    // Error paths: framing failures (no id recoverable) ...
    lines.push("this is not json".to_string());
    lines.push("[1,2,3]".to_string());
    lines.push("{\"id\":\"twelve\",\"op\":\"ping\"}".to_string());
    // ... and body failures (id echoed back for correlation).
    lines.push("{\"id\":14,\"op\":\"frobnicate\"}".to_string());
    lines.push("{\"schema_version\":99,\"id\":15,\"op\":\"ping\"}".to_string());
    lines.push("{\"id\":16,\"op\":\"query\"}".to_string());
    lines.push("{\"id\":17,\"op\":\"ingest\"}".to_string());
    lines
        .push("{\"id\":18,\"op\":\"ingest\",\"sql\":\"CREATE VIEW broken AS SELEC;\"}".to_string());
    lines.push(Request::Shutdown.to_line(Some(19)));
    lines
}

/// Metric *values* vary run to run (wall-clock histograms, process-wide
/// counters shared across tests); the golden pins the *shape*. Within
/// the metrics reply's `result` object every JSON number token becomes
/// `0` and the timing-dependent `slow_ops` ring is emptied — the key
/// set, key order, and envelope survive byte-for-byte.
fn normalize_metrics_reply(line: &str) -> String {
    let marker = ",\"result\":";
    let Some(at) = line.find(marker) else { return line.to_string() };
    let start = at + marker.len();
    let end = line.len() - 1; // the envelope's closing '}'
    let mut result = String::with_capacity(end - start);
    let mut chars = line[start..end].chars().peekable();
    let mut in_string = false;
    let mut escaped = false;
    while let Some(c) = chars.next() {
        if in_string {
            result.push(c);
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                result.push(c);
            }
            '0'..='9' | '-' => {
                while chars
                    .peek()
                    .is_some_and(|n| n.is_ascii_digit() || matches!(n, '.' | 'e' | 'E' | '+' | '-'))
                {
                    chars.next();
                }
                result.push('0');
            }
            _ => result.push(c),
        }
    }
    // `slow_ops` is the snapshot's final field: truncate its entries.
    if let Some(open) = result.find("\"slow_ops\":[") {
        result.truncate(open + "\"slow_ops\":[".len());
        result.push_str("]}");
    }
    format!("{}{}{}", &line[..start], result, "}")
}

/// Run the scripted session against a fresh server, returning the
/// transcript: `>> request` / `<< response` line pairs.
fn transcript(jobs: usize) -> String {
    let server = start(jobs);
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    let mut out = String::new();
    for line in script() {
        let reply = client.send_line(&line).expect("server replies");
        let reply = if line.contains("\"op\":\"metrics\"") {
            normalize_metrics_reply(&reply.line)
        } else {
            reply.line
        };
        out.push_str(">> ");
        out.push_str(&line);
        out.push_str("\n<< ");
        out.push_str(&reply);
        out.push('\n');
    }
    server.wait();
    out
}

#[test]
fn wire_transcript_is_golden() {
    let rendered = transcript(1);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("can write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file exists");
    assert_eq!(
        rendered, golden,
        "the serve wire transcript drifted from {GOLDEN}; the protocol is versioned — \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1 \
         (and bump PROTOCOL_VERSION if the shape changed)"
    );
}

#[test]
fn wire_transcript_is_independent_of_jobs() {
    // Server-side parallelism must be invisible on the wire: byte-equal
    // transcripts under a serial and a parallel engine.
    assert_eq!(transcript(1), transcript(4));
}

#[test]
fn golden_transcript_sanity() {
    // Spot-check the golden content so a bad regeneration cannot lock in
    // wrong protocol behaviour.
    let golden = std::fs::read_to_string(GOLDEN).expect("golden file exists");
    let replies: Vec<&str> = golden.lines().filter_map(|l| l.strip_prefix("<< ")).collect();
    assert_eq!(replies.len(), script().len());
    // Framing failures reply with id null; body failures echo the id.
    assert!(golden.contains("\"id\":null,\"ok\":false"));
    assert!(golden.contains("\"code\":\"invalid-request\""));
    assert!(golden.contains("\"code\":\"unsupported-schema-version\""));
    assert!(golden.contains("\"code\":\"parse-error\""));
    // Every reply carries the envelope, in pinned field order.
    for reply in &replies {
        assert!(reply.starts_with("{\"schema_version\":3,\"id\":"), "bad envelope: {reply}");
        assert!(reply.contains("\"revision\":"), "unstamped reply: {reply}");
    }
    // The stats reply leads its engine block with the session's dialect.
    let stats = replies[7];
    assert!(stats.contains("\"engine\":{\"dialect\":\"ansi\""), "stats lacks dialect: {stats}");
    // The drop retracts `info`: the final query must not reach it.
    let last_query = replies[11];
    assert!(
        !last_query.contains("\"column\":\"info.wpage\""),
        "drop did not retract: {last_query}"
    );
    // The metrics reply pins every layer's key set, values normalized.
    let metrics = replies[12];
    assert!(metrics.contains("\"serve.requests\":0"), "unnormalized or missing: {metrics}");
    assert!(metrics.contains("\"engine.ingest_us\":{\"count\":0"), "{metrics}");
    assert!(metrics.contains("\"query.bfs_nodes\":0"), "{metrics}");
    assert!(metrics.contains("\"slow_ops\":[]"), "slow-op ring must be emptied: {metrics}");
}

#[test]
fn served_report_is_byte_identical_to_batch() {
    for jobs in [1, 4] {
        let server = start(jobs);
        let mut client = Client::connect(server.local_addr()).expect("client connects");
        let reply = client.ingest(&example1::full_log()).expect("ingest succeeds");
        assert!(reply.ok(), "ingest failed: {}", reply.line);
        let reply = client.report().expect("report succeeds");
        assert!(reply.ok(), "report failed: {}", reply.line);

        // The served result is the raw `result` object of the reply line
        // (the reply's final field) — not a reserialisation, so this
        // pins bytes, field order included.
        let marker = ",\"result\":";
        let at = reply.line.find(marker).expect("reply has a result field");
        let served = &reply.line[at + marker.len()..reply.line.len() - 1];

        let mut batch = lineagex(&example1::full_log()).expect("batch run succeeds");
        let report = batch.report_v2().expect("batch report succeeds");
        let expected = serde_json::to_string(&report).expect("report serialises");
        assert_eq!(served, expected, "served ReportV2 drifted from the batch serialisation");
        server.shutdown();
    }
}
