//! The serve-layer concurrency battery.
//!
//! The correctness contract under fire: a reader that gets a response
//! stamped `revision: r` must see **exactly** the lineage a batch
//! `lineagex()` run over the statement prefix published as `r` would
//! serialise — never a torn graph, never a half-applied write. The soak
//! test hammers a live server with reader threads during churn ingest
//! and then replays every observed revision through the batch pipeline,
//! comparing bytes. The proptest interleaves one malformed request at an
//! arbitrary point in a scripted session and checks the other requests'
//! answers are untouched.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use lineagex::prelude::*;
use lineagex::serve::proto::{QueryParams, Request};
use lineagex::serve::{Client, Reply, ServeOptions, Server};
use proptest::prelude::*;

/// The append-only churn workload: batch 1 seeds the base table, every
/// later batch chains one view onto the previous one, so any prefix is a
/// valid, settle-able script.
fn batches(total: usize) -> Vec<String> {
    let mut out = vec!["CREATE TABLE base (c0 int, c1 int, c2 int); \
              CREATE VIEW v1 AS SELECT c0 AS a1, c1 AS b1 FROM base;"
        .to_string()];
    for k in 2..=total {
        out.push(format!(
            "CREATE VIEW v{k} AS SELECT a{prev} AS a{k}, b{prev} AS b{k} FROM v{prev};",
            prev = k - 1
        ));
    }
    out
}

fn start(jobs: usize) -> Server {
    let options =
        ServeOptions { engine: EngineOptions { jobs, ..Default::default() }, ..Default::default() };
    Server::start("127.0.0.1:0", options).expect("server starts")
}

fn reader_params() -> QueryParams {
    QueryParams { origins: vec!["base.c0".into()], ..Default::default() }
}

/// The raw `result` object of a reply line — the reply's final field,
/// taken as a byte slice so no reserialisation can mask drift.
fn result_bytes(reply: &Reply) -> String {
    let marker = ",\"result\":";
    let at = reply.line.find(marker).unwrap_or_else(|| panic!("no result in: {}", reply.line));
    reply.line[at + marker.len()..reply.line.len() - 1].to_string()
}

/// What the batch pipeline serialises for one statement prefix: the
/// reader query's `QueryReport` and the full `ReportV2`, both compact —
/// exactly what the server embeds in its reply lines.
fn batch_expectation(prefix_sql: &str) -> (String, String) {
    let mut result = lineagex(prefix_sql).expect("prefix replays cleanly");
    let index = result.settled_index().expect("index builds");
    let answer = reader_params().spec().run_with(&index);
    let diagnostics = result.run_diagnostics();
    let graph = result.settled_graph().expect("graph settles");
    let query = QueryReport::from_answer(&answer).with_context(graph, &diagnostics);
    let report = ReportV2::from_graph(graph, &diagnostics);
    (
        serde_json::to_string(&query).expect("query serialises"),
        serde_json::to_string(&report).expect("report serialises"),
    )
}

/// One observed read: which revision stamped it, which op it was, and
/// the raw result bytes served.
struct Observation {
    revision: u64,
    op: &'static str,
    result: String,
}

fn soak(jobs: usize, readers: usize, total_batches: usize) {
    let server = start(jobs);
    let addr = server.local_addr();
    let done = Arc::new(AtomicBool::new(false));

    // Seed before spawning readers so no thread can observe revision 0
    // (the empty pre-seed snapshot has no prefix to replay).
    let script = batches(total_batches);
    let mut writer = Client::connect(addr).expect("writer connects");
    let mut revision_to_prefix: HashMap<u64, usize> = HashMap::new();
    let reply = writer.ingest(&script[0]).expect("seed ingest");
    assert!(reply.ok(), "seed failed: {}", reply.line);
    revision_to_prefix.insert(reply.revision(), 1);

    let mut handles = Vec::new();
    for _ in 0..readers {
        let done = Arc::clone(&done);
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("reader connects");
            let mut seen = Vec::new();
            while !done.load(Ordering::Relaxed) {
                let reply = client.query(reader_params()).expect("query reply");
                assert!(reply.ok(), "query failed: {}", reply.line);
                seen.push(Observation {
                    revision: reply.revision(),
                    op: "query",
                    result: result_bytes(&reply),
                });
                let reply = client.report().expect("report reply");
                assert!(reply.ok(), "report failed: {}", reply.line);
                seen.push(Observation {
                    revision: reply.revision(),
                    op: "report",
                    result: result_bytes(&reply),
                });
            }
            seen
        }));
    }

    // Churn: one batch at a time through the single-writer channel, each
    // reply's revision recording which prefix that revision published.
    for (i, batch) in script.iter().enumerate().skip(1) {
        let reply = writer.ingest(batch).expect("churn ingest");
        assert!(reply.ok(), "churn batch {i} failed: {}", reply.line);
        revision_to_prefix.insert(reply.revision(), i + 1);
    }
    done.store(true, Ordering::Relaxed);

    let mut observations = Vec::new();
    for handle in handles {
        observations.extend(handle.join().expect("reader thread panicked"));
    }
    server.shutdown();
    assert!(!observations.is_empty(), "readers observed nothing");

    // Replay: every revision a reader ever saw must be one the writer's
    // receipts published, and its bytes must match the batch pipeline
    // over that exact statement prefix.
    let mut expected: HashMap<u64, (String, String)> = HashMap::new();
    for observation in &observations {
        let prefix = *revision_to_prefix
            .get(&observation.revision)
            .unwrap_or_else(|| panic!("reader saw unpublished revision {}", observation.revision));
        let (query, report) = expected
            .entry(observation.revision)
            .or_insert_with(|| batch_expectation(&script[..prefix].join(" ")));
        let want = if observation.op == "query" { query } else { report };
        assert_eq!(
            &observation.result, want,
            "{} at revision {} drifted from the batch replay of prefix {}",
            observation.op, observation.revision, prefix
        );
    }
}

#[test]
fn soak_readers_vs_churn_serial_engine() {
    soak(1, 4, 12);
}

#[test]
fn soak_readers_vs_churn_parallel_engine() {
    soak(4, 4, 12);
}

/// The scripted session for the malformed-interleaving property: ids
/// 1..=6, all reads after one seed write, so the expected replies are
/// position-independent.
fn scripted_requests() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Query(reader_params()),
        Request::Report,
        Request::Diagnostics,
        Request::Query(QueryParams {
            origins: vec!["v1.a1".into()],
            upstream: true,
            ..Default::default()
        }),
        Request::Ping,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One malformed line injected *anywhere* in a scripted session is
    /// answered with an error reply and perturbs nothing: every other
    /// request's reply is byte-identical to the uninterleaved run, and a
    /// second client connected at the same time sees clean answers too.
    #[test]
    fn malformed_request_never_perturbs_other_answers(
        position in 0usize..=6,
        garbage_kind in 0usize..4,
    ) {
        let garbage = match garbage_kind {
            0 => "{\"id\":99,\"op\":\"no-such-op\"}".to_string(),
            1 => "not even json".to_string(),
            2 => "{\"schema_version\":7,\"id\":99,\"op\":\"ping\"}".to_string(),
            _ => "[\"an\",\"array\"]".to_string(),
        };

        let server = start(1);
        let addr = server.local_addr();
        let mut seeder = Client::connect(addr).expect("seeder connects");
        let reply = seeder.ingest(&batches(3).join(" ")).expect("seed ingest");
        prop_assert!(reply.ok(), "seed failed: {}", reply.line);

        // Baseline: the scripted session with no interference.
        let mut baseline = Client::connect(addr).expect("baseline connects");
        let mut clean = Vec::new();
        for (i, request) in scripted_requests().iter().enumerate() {
            let line = request.to_line(Some(i as u64 + 1));
            clean.push(baseline.send_line(&line).expect("baseline reply").line);
        }

        // The same session with garbage injected at `position`, while a
        // bystander client runs the same script concurrently.
        let bystander = thread::spawn(move || {
            let mut client = Client::connect(addr).expect("bystander connects");
            let mut seen = Vec::new();
            for (i, request) in scripted_requests().iter().enumerate() {
                let line = request.to_line(Some(i as u64 + 1));
                seen.push(client.send_line(&line).expect("bystander reply").line);
            }
            seen
        });
        let mut victim = Client::connect(addr).expect("victim connects");
        let mut dirty = Vec::new();
        for (i, request) in scripted_requests().iter().enumerate() {
            if i == position {
                let reply = victim.send_line(&garbage).expect("garbage is answered");
                prop_assert!(!reply.ok(), "garbage was accepted: {}", reply.line);
            }
            let line = request.to_line(Some(i as u64 + 1));
            dirty.push(victim.send_line(&line).expect("victim reply").line);
        }
        if position >= scripted_requests().len() {
            let reply = victim.send_line(&garbage).expect("garbage is answered");
            prop_assert!(!reply.ok(), "garbage was accepted: {}", reply.line);
        }
        let bystander_replies = bystander.join().expect("bystander panicked");

        prop_assert_eq!(&clean, &dirty, "garbage at {} perturbed the same connection", position);
        prop_assert_eq!(&clean, &bystander_replies, "garbage perturbed a concurrent client");
        server.shutdown();
    }
}
