//! Golden-file test: the Example 1 `output.json` must stay byte-stable.
//! Regenerate with:
//!
//! ```sh
//! cargo run -q -p lineagex-bench --bin fig5_impact   # writes target/fig5/output.json
//! ```
//!
//! and copy to `tests/golden/example1_output.json` if the change is
//! intentional.

use lineagex::datasets::example1;
use lineagex::prelude::*;

#[test]
fn example1_output_json_is_stable() {
    let result = lineagex(&example1::full_log()).unwrap();
    let actual = to_output_json(&result.graph);
    let expected = include_str!("golden/example1_output.json");
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "output.json drifted from the golden file — if intentional, regenerate it"
    );
}

#[test]
fn json_is_deterministic_across_runs() {
    let a = to_output_json(&lineagex(&example1::full_log()).unwrap().graph);
    let b = to_output_json(&lineagex(&example1::full_log()).unwrap().graph);
    assert_eq!(a, b);
}

#[test]
fn golden_file_sanity() {
    // Spot-check the golden content itself so a bad regeneration cannot
    // silently lock in wrong lineage.
    let value: serde_json::Value =
        serde_json::from_str(include_str!("golden/example1_output.json")).unwrap();
    assert_eq!(value["queries"]["info"]["columns"]["wpage"][0], "webact.wpage");
    assert_eq!(value["queries"]["webinfo"]["columns"]["wcid"][0], "customers.cid");
    assert_eq!(value["processing_order"][0], "webinfo");
    assert_eq!(value["tables"]["web"]["kind"], "base_table");
    assert_eq!(value["tables"]["webact"]["kind"], "view");
    // The set-operation rule: webact references all 8 branch columns.
    assert_eq!(value["queries"]["webact"]["referenced"].as_array().unwrap().len(), 8);
}
