//! Lineage through DML mutations: `INSERT ... SELECT`, `UPDATE ... FROM`,
//! and `DELETE` handling across both extraction paths.

use lineagex::catalog::{Catalog, SimulatedDatabase};
use lineagex::core::{ExplainPathExtractor, QueryDict, QueryKind};
use lineagex::prelude::*;
use std::collections::BTreeSet;

const DDL: &str = "
    CREATE TABLE web (cid int, page text, reg boolean);
    CREATE TABLE updates (cid int, new_page text);
    CREATE TABLE audit (cid int, page text);
";

#[test]
fn update_lineage_tracks_set_expressions() {
    let result = lineagex(&format!(
        "{DDL}
         UPDATE web AS w SET page = u.new_page FROM updates u WHERE w.cid = u.cid;"
    ))
    .unwrap();
    let q = &result.graph.queries["web"];
    assert!(matches!(q.kind, QueryKind::Update));
    // The SET expression's source contributes to the updated column.
    assert_eq!(q.output_names(), vec!["page"]);
    assert_eq!(q.outputs[0].ccon, BTreeSet::from([SourceColumn::new("updates", "new_page")]));
    // Join predicate columns are referenced; target + source are scanned.
    assert!(q.cref.contains(&SourceColumn::new("web", "cid")));
    assert!(q.cref.contains(&SourceColumn::new("updates", "cid")));
    assert_eq!(q.tables, BTreeSet::from(["web".to_string(), "updates".to_string()]));
}

#[test]
fn update_can_reference_its_own_columns() {
    let result = lineagex(&format!("{DDL} UPDATE web SET page = page || '!' WHERE reg;")).unwrap();
    let q = &result.graph.queries["web"];
    assert_eq!(q.outputs[0].ccon, BTreeSet::from([SourceColumn::new("web", "page")]));
    assert!(q.cref.contains(&SourceColumn::new("web", "reg")));
}

#[test]
fn update_node_keeps_full_target_schema() {
    let result = lineagex(&format!("{DDL} UPDATE web SET page = 'x';")).unwrap();
    // The node shows all of web's columns, not just the SET one.
    let node = &result.graph.nodes["web"];
    assert_eq!(node.columns, vec!["cid", "page", "reg"]);
}

#[test]
fn update_impact_flows_downstream() {
    let result = lineagex(&format!(
        "{DDL}
         UPDATE web SET page = u.new_page FROM updates u WHERE web.cid = u.cid;"
    ))
    .unwrap();
    let impact = result.impact_of("updates", "new_page");
    assert!(impact.contains(&SourceColumn::new("web", "page")));
}

#[test]
fn multiple_writers_get_distinct_ids() {
    let result = lineagex(&format!(
        "{DDL}
         INSERT INTO audit SELECT cid, page FROM web;
         UPDATE audit SET page = 'redacted' WHERE cid < 0;"
    ))
    .unwrap();
    assert!(result.graph.queries.contains_key("audit"));
    assert!(result.graph.queries.contains_key("audit#2"));
    assert!(matches!(result.graph.queries["audit"].kind, QueryKind::Insert));
    assert!(matches!(result.graph.queries["audit#2"].kind, QueryKind::Update));
}

#[test]
fn delete_is_skipped_with_warning() {
    let result = lineagex(&format!("{DDL} DELETE FROM web WHERE reg;")).unwrap();
    assert!(result.graph.queries.is_empty());
    assert!(result
        .diagnostics
        .iter()
        .any(|d| d.code == DiagnosticCode::SkippedStatement && d.message.contains("web")));
}

#[test]
fn explain_path_agrees_on_update() {
    let update = "UPDATE web AS w SET page = u.new_page FROM updates u WHERE w.cid = u.cid;";
    let static_result = lineagex(&format!("{DDL} {update}")).unwrap();

    let qd = QueryDict::from_sql(update).unwrap();
    let db = SimulatedDatabase::with_catalog(Catalog::from_ddl(DDL).unwrap());
    let connected = ExplainPathExtractor::new(qd, db).run().unwrap();

    let a = &static_result.graph.queries["web"];
    let b = &connected.graph.queries["web"];
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.cref, b.cref);
    assert_eq!(a.tables, b.tables);
}

#[test]
fn simulated_database_validates_dml() {
    let mut db = SimulatedDatabase::from_ddl(DDL).unwrap();
    // Valid UPDATE binds and reports lineage-bearing output.
    let bound = db
        .execute("UPDATE web SET page = u.new_page FROM updates u WHERE web.cid = u.cid")
        .unwrap()
        .expect("update returns a bound query");
    assert_eq!(bound.output[0].name, "page");
    // Unknown target/columns error like Postgres.
    assert!(db.execute("UPDATE missing SET x = 1").is_err());
    assert!(db.execute("UPDATE web SET nope = 1").is_err());
    // DELETE validates its predicate.
    assert!(db.execute("DELETE FROM web WHERE reg").unwrap().is_none());
    assert!(db.execute("DELETE FROM web WHERE ghost > 0").is_err());
}
