//! Feature-by-feature lineage semantics tests: each test pins the exact
//! expected `C_con`/`C_ref` for one SQL construct.

use lineagex::prelude::*;
use std::collections::BTreeSet;

fn src(t: &str, c: &str) -> SourceColumn {
    SourceColumn::new(t, c)
}

fn set(items: &[(&str, &str)]) -> BTreeSet<SourceColumn> {
    items.iter().map(|(t, c)| src(t, c)).collect()
}

const DDL: &str = "
    CREATE TABLE emp (id int, name text, dept text, salary numeric, hired date);
    CREATE TABLE dept (id int, dname text, budget numeric);
";

fn view(sql_body: &str) -> QueryLineage {
    let log = format!("{DDL} CREATE VIEW v AS {sql_body};");
    lineagex(&log).unwrap().graph.queries["v"].clone()
}

#[test]
fn window_function_lineage() {
    let v = view("SELECT name, rank() OVER (PARTITION BY dept ORDER BY salary DESC) AS r FROM emp");
    // Window partition/order columns contribute to the windowed output.
    assert_eq!(v.outputs[1].ccon, set(&[("emp", "dept"), ("emp", "salary")]));
    assert_eq!(v.outputs[0].ccon, set(&[("emp", "name")]));
}

#[test]
fn aggregate_with_filter_clause() {
    let v = view("SELECT sum(salary) FILTER (WHERE dept = 'eng') AS s FROM emp");
    assert_eq!(v.outputs[0].ccon, set(&[("emp", "salary"), ("emp", "dept")]));
}

#[test]
fn correlated_exists_subquery() {
    let v = view(
        "SELECT name FROM emp e WHERE EXISTS (
            SELECT 1 FROM dept d WHERE d.id = e.id AND d.budget > 0)",
    );
    assert_eq!(v.cref, set(&[("dept", "id"), ("emp", "id"), ("dept", "budget")]));
    // The subquery's scan counts into table lineage.
    assert_eq!(v.tables, BTreeSet::from(["emp".to_string(), "dept".to_string()]));
}

#[test]
fn scalar_subquery_contributes() {
    let v =
        view("SELECT name, (SELECT dname FROM dept d WHERE d.id = e.dept::int) AS dn FROM emp e");
    assert!(v.outputs[1].ccon.contains(&src("dept", "dname")));
    assert!(v.cref.contains(&src("dept", "id")));
    assert!(v.cref.contains(&src("emp", "dept")));
}

#[test]
fn in_subquery_is_referenced() {
    let v = view("SELECT name FROM emp WHERE dept IN (SELECT dname FROM dept)");
    assert!(v.cref.contains(&src("emp", "dept")));
    assert!(v.cref.contains(&src("dept", "dname")));
}

#[test]
fn three_way_set_operation() {
    let v = view("SELECT name FROM emp UNION SELECT dname FROM dept EXCEPT SELECT dept FROM emp");
    assert_eq!(v.outputs.len(), 1);
    assert_eq!(v.outputs[0].name, "name");
    assert_eq!(v.outputs[0].ccon, set(&[("emp", "name"), ("dept", "dname"), ("emp", "dept")]));
    // Every branch projection is referenced.
    assert_eq!(v.cref, set(&[("emp", "name"), ("dept", "dname"), ("emp", "dept")]));
}

#[test]
fn using_and_natural_joins_reference_keys() {
    let v = view("SELECT name FROM emp JOIN dept USING (id)");
    assert_eq!(v.cref, set(&[("emp", "id"), ("dept", "id")]));
    let v = view("SELECT name FROM emp NATURAL JOIN dept");
    assert_eq!(v.cref, set(&[("emp", "id"), ("dept", "id")]));
}

#[test]
fn distinct_on_references() {
    let v = view("SELECT DISTINCT ON (dept) dept, name FROM emp");
    assert!(v.cref.contains(&src("emp", "dept")));
}

#[test]
fn order_by_forms() {
    // Positional, alias, and raw-column order keys all land in C_ref.
    let v = view("SELECT name AS n, salary FROM emp ORDER BY 2, n, hired");
    assert_eq!(v.cref, set(&[("emp", "salary"), ("emp", "name"), ("emp", "hired")]));
}

#[test]
fn alias_column_renames() {
    let v = view("SELECT a, b FROM emp AS e(a, b, c, d, f)");
    assert_eq!(v.outputs[0].ccon, set(&[("emp", "id")]));
    assert_eq!(v.outputs[1].ccon, set(&[("emp", "name")]));
}

#[test]
fn wildcard_from_derived_table() {
    let v = view("SELECT * FROM (SELECT name AS nm, salary * 2 AS pay FROM emp) AS sub");
    assert_eq!(v.output_names(), vec!["nm", "pay"]);
    assert_eq!(v.outputs[1].ccon, set(&[("emp", "salary")]));
}

#[test]
fn cte_shadowing_and_chaining() {
    let v = view(
        "WITH dept AS (SELECT name AS x FROM emp),
              second AS (SELECT x FROM dept)
         SELECT x FROM second",
    );
    // The CTE named `dept` shadows the real table; everything composes to emp.
    assert_eq!(v.outputs[0].ccon, set(&[("emp", "name")]));
    assert_eq!(v.tables, BTreeSet::from(["emp".to_string()]));
}

#[test]
fn recursive_cte_lineage() {
    let v = view(
        "WITH RECURSIVE r AS (
            SELECT id AS n FROM emp
            UNION ALL
            SELECT n + 1 FROM r WHERE n < 10)
         SELECT n FROM r",
    );
    assert_eq!(v.outputs[0].ccon, set(&[("emp", "id")]));
}

#[test]
fn case_and_cast_and_extract() {
    let v = view(
        "SELECT CASE WHEN salary > 100 THEN name ELSE dept END AS who,
                CAST(hired AS text) AS h,
                EXTRACT(year FROM hired) AS y
         FROM emp",
    );
    assert_eq!(v.outputs[0].ccon, set(&[("emp", "salary"), ("emp", "name"), ("emp", "dept")]));
    assert_eq!(v.outputs[1].ccon, set(&[("emp", "hired")]));
    assert_eq!(v.outputs[2].ccon, set(&[("emp", "hired")]));
}

#[test]
fn derived_output_names() {
    let v = view("SELECT lower(name), salary + 1, hired FROM emp");
    assert_eq!(v.output_names(), vec!["lower", "?column?", "hired"]);
}

#[test]
fn quoted_identifiers_end_to_end() {
    let log = r#"
        CREATE TABLE "Weird Table" ("Mixed Case" int, plain int);
        CREATE VIEW v AS SELECT "Mixed Case" AS ok FROM "Weird Table";
    "#;
    let result = lineagex(log).unwrap();
    let v = &result.graph.queries["v"];
    assert_eq!(v.outputs[0].ccon, set(&[("Weird Table", "Mixed Case")]));
}

#[test]
fn unknown_table_inference_warns_and_infers() {
    let result =
        lineagex("CREATE VIEW v AS SELECT w.page, w.cid FROM mystery w WHERE w.reg").unwrap();
    let v = &result.graph.queries["v"];
    assert!(v.diagnostics.iter().any(|d| d.code == DiagnosticCode::UnknownRelation));
    assert!(v.diagnostics.iter().any(|d| d.code == DiagnosticCode::InferredColumn));
    assert_eq!(
        result.inferred["mystery"],
        BTreeSet::from(["page".to_string(), "cid".to_string(), "reg".to_string()])
    );
}

#[test]
fn wildcard_over_unknown_table_warns() {
    let result = lineagex("CREATE VIEW v AS SELECT * FROM mystery").unwrap();
    let v = &result.graph.queries["v"];
    assert!(v.diagnostics.iter().any(|d| d.code == DiagnosticCode::UnresolvedWildcard));
    assert!(v.outputs.is_empty(), "nothing to expand without schema");
}

#[test]
fn ambiguity_policies_differ() {
    let log = "
        CREATE TABLE a (k int, only_a int);
        CREATE TABLE b (k int);
        CREATE VIEW v AS SELECT k FROM a, b;
    ";
    // AttributeAll (default): both.
    let v = lineagex(log).unwrap().graph.queries["v"].clone();
    assert_eq!(v.outputs[0].ccon, set(&[("a", "k"), ("b", "k")]));
    assert!(v.diagnostics.iter().any(|d| d.code == DiagnosticCode::AmbiguityResolved));
    // FirstMatch: the first relation in FROM order.
    let v = LineageX::new().ambiguity(AmbiguityPolicy::FirstMatch).run(log).unwrap().graph.queries
        ["v"]
        .clone();
    assert_eq!(v.outputs[0].ccon, set(&[("a", "k")]));
    // Error: refuses.
    assert!(matches!(
        LineageX::new().ambiguity(AmbiguityPolicy::Error).run(log),
        Err(LineageError::AmbiguousColumn { .. })
    ));
}

#[test]
fn missing_column_is_an_error() {
    let err = lineagex(&format!("{DDL} CREATE VIEW v AS SELECT ghost FROM emp;")).unwrap_err();
    assert!(matches!(err, LineageError::ColumnNotFound { .. }));
    let err = lineagex(&format!("{DDL} CREATE VIEW v AS SELECT emp.ghost FROM emp;")).unwrap_err();
    assert!(matches!(err, LineageError::ColumnNotFound { relation: Some(_), .. }));
}

#[test]
fn duplicate_binding_is_an_error() {
    let err = lineagex(&format!("{DDL} CREATE VIEW v AS SELECT 1 FROM emp, emp;")).unwrap_err();
    assert!(matches!(err, LineageError::DuplicateBinding { .. }));
}

#[test]
fn count_star_has_no_sources() {
    let v = view("SELECT dept, count(*) AS n FROM emp GROUP BY dept");
    assert!(v.outputs[1].ccon.is_empty());
    assert!(v.cref.contains(&src("emp", "dept")));
}

#[test]
fn count_qualified_star_references_whole_relation() {
    let v = view("SELECT count(e.*) AS n FROM emp e");
    // count(e.*) depends on every column of emp.
    assert_eq!(v.outputs[0].ccon.len(), 5);
}

#[test]
fn is_distinct_from_references() {
    let v = view("SELECT name FROM emp WHERE dept IS DISTINCT FROM 'sales'");
    assert!(v.cref.contains(&src("emp", "dept")));
}

#[test]
fn lateral_subquery_sees_siblings() {
    let v = view("SELECT l.top FROM emp e, LATERAL (SELECT e.salary AS top) AS l");
    assert_eq!(v.outputs[0].ccon, set(&[("emp", "salary")]));
}

#[test]
fn values_in_insert_has_no_lineage_sources() {
    let log = format!("{DDL} INSERT INTO dept VALUES (1, 'x', 0);");
    let result = lineagex(&log).unwrap();
    let q = &result.graph.queries["dept"];
    assert!(q.outputs.iter().all(|o| o.ccon.is_empty()));
}

#[test]
fn duplicate_output_names_are_preserved() {
    let v = view("SELECT name, name FROM emp");
    assert_eq!(v.output_names(), vec!["name", "name"]);
    assert_eq!(v.outputs[0].ccon, v.outputs[1].ccon);
}
