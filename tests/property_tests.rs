//! Property-based tests over the whole pipeline: generated workloads must
//! extract to their exact ground truth under any seed, statement order
//! must not matter, and graph invariants must hold.

use lineagex::datasets::{generator, GeneratorConfig};
use lineagex::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Extracted lineage equals the generator's ground truth for any seed
    /// and any feature mix.
    #[test]
    fn extraction_matches_ground_truth(
        seed in 0u64..10_000,
        star in 0.0f64..0.9,
        setop in 0.0f64..0.9,
        cte in 0.0f64..0.9,
        unqualified in 0.0f64..0.9,
    ) {
        let config = GeneratorConfig {
            views: 8,
            star_probability: star,
            setop_probability: setop,
            cte_probability: cte,
            unqualified_probability: unqualified,
            ..GeneratorConfig::seeded(seed)
        };
        let workload = generator::generate(&config);
        let result = lineagex(&workload.full_sql())
            .map_err(|e| TestCaseError::fail(format!("{e}\n{}", workload.full_sql())))?;
        let failures = workload.ground_truth.diff(&result.graph);
        prop_assert!(failures.is_empty(), "{}\nSQL:\n{}", failures.join("\n"), workload.full_sql());
    }

    /// The auto-inference stack makes extraction order-independent:
    /// reversing the statements never changes the result.
    #[test]
    fn statement_order_independence(seed in 0u64..10_000) {
        let forward = generator::generate(&GeneratorConfig { views: 8, ..GeneratorConfig::seeded(seed) });
        let reversed = generator::generate(&GeneratorConfig {
            views: 8,
            shuffle_statements: true,
            ..GeneratorConfig::seeded(seed)
        });
        let a = lineagex(&forward.full_sql()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let b = lineagex(&reversed.full_sql()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&a.graph.queries, &b.graph.queries);
        prop_assert_eq!(&a.graph.nodes, &b.graph.nodes);
    }

    /// Graph invariants: every edge endpoint is a real node column;
    /// C_both is exactly the intersection of C_con and C_ref; impact
    /// closures are monotone under distance.
    #[test]
    fn graph_invariants(seed in 0u64..10_000) {
        let workload = generator::generate(&GeneratorConfig { views: 6, ..GeneratorConfig::seeded(seed) });
        let result = lineagex(&workload.full_sql()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let graph = &result.graph;

        for edge in graph.all_edges() {
            prop_assert!(graph.has_column(&edge.from), "dangling source {:?}", edge.from);
            prop_assert!(graph.has_column(&edge.to), "dangling target {:?}", edge.to);
        }

        for q in graph.queries.values() {
            let all_con: BTreeSet<_> = q.outputs.iter().flat_map(|o| o.ccon.iter().cloned()).collect();
            let expected_both: BTreeSet<_> = all_con.intersection(&q.cref).cloned().collect();
            prop_assert_eq!(q.cboth(), expected_both, "C_both mismatch in {}", q.id);

            // Every C_con source must come from a table in T or the
            // catalog (generated workloads only use scanned relations).
            for src in &all_con {
                prop_assert!(
                    q.tables.contains(&src.table),
                    "{}: contribution from unscanned relation {}",
                    q.id, src.table
                );
            }
        }

        // Impact distances are positive, and every impacted column at
        // distance d > 1 has an upstream impacted column at distance d-1.
        for node in graph.nodes.values().take(3) {
            for col in node.columns.iter().take(2) {
                let origin = SourceColumn::new(&node.name, col);
                let report = impact_of(graph, &origin);
                for hit in report.impacted() {
                    prop_assert!(hit.distance >= 1);
                }
            }
        }
    }

    /// JSON / DOT / HTML rendering never panics and stays well-formed.
    #[test]
    fn rendering_total(seed in 0u64..10_000) {
        let workload = generator::generate(&GeneratorConfig { views: 5, ..GeneratorConfig::seeded(seed) });
        let result = lineagex(&workload.full_sql()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let json = to_output_json(&result.graph);
        prop_assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
        let dot = to_dot(&result.graph);
        prop_assert!(dot.starts_with("digraph"));
        let closes_properly = dot.ends_with("}\n");
        prop_assert!(closes_properly);
        let html = to_html(&result.graph);
        prop_assert!(html.contains("const GRAPH ="));
    }
}
