//! The session engine's contract with the batch pipeline, asserted over
//! generated workloads:
//!
//! 1. **incremental ≡ batch** — statement-at-a-time `Engine::ingest`
//!    settles to the same lineage (nodes + per-query records — including
//!    each record's diagnostics and partial flag — hence all edges) as
//!    one-shot `LineageX::run` over the same log;
//! 2. **parallel ≡ sequential** — `jobs > 1` is byte-identical to
//!    `jobs = 1`, including the serialized graph;
//! 3. **cone-sized invalidation** — redefining one view on a 200-view log
//!    re-extracts exactly its downstream cone (extraction counters);
//! 4. **query layer ≡ legacy closures** — `GraphQuery`
//!    downstream/upstream answers are exactly the legacy
//!    `impact_of`/`upstream_of` results, and byte-identical across the
//!    `LineageView` backends (batch `LineageResult` and session
//!    `Engine`);
//! 5. **indexed ≡ string walk** — traversals over the interned
//!    `GraphIndex` (`QuerySpec::run_with`, the path every backend
//!    serves) answer byte-identically to the legacy string-keyed
//!    reference (`QuerySpec::run_on_unindexed`), for every direction,
//!    granularity, and filter shape, on both backends and
//!    `jobs ∈ {1, 4}` — and the `ReportV2` wire bytes stay identical
//!    everywhere.

use lineagex::datasets::{generator, GeneratorConfig};
use lineagex::engine::{Engine, EngineOptions};
use lineagex::prelude::*;
use lineagex::sqlparse::ast::{Expr, Literal, Statement};
use proptest::prelude::*;

/// Feed a workload to an engine one statement at a time.
fn ingest_statementwise(engine: &mut Engine, workload: &generator::PipelineWorkload) {
    for ddl in workload.ddl.split(';').filter(|s| !s.trim().is_empty()) {
        engine.ingest(ddl).unwrap();
    }
    for view in &workload.view_statements {
        engine.ingest(view).unwrap();
    }
}

/// The statement re-rendered with a different LIMIT: changed content,
/// identical lineage.
fn with_limit(statement: &str, limit: u64) -> String {
    let mut stmt = lineagex::sqlparse::parse_statement(statement).unwrap();
    if let Statement::CreateView { ref mut query, .. } = stmt {
        query.limit = Some(Expr::Literal(Literal::Number(limit.to_string())));
    }
    stmt.to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Incremental ingestion (forward or dependency-reversed statement
    /// order) settles to the one-shot pipeline's graph for any seed and
    /// feature mix.
    #[test]
    fn incremental_ingest_matches_one_shot(
        seed in 0u64..10_000,
        star in 0.0f64..0.9,
        setop in 0.0f64..0.9,
        cte in 0.0f64..0.9,
        reversed in proptest::prelude::any::<bool>(),
    ) {
        let workload = generator::generate(&GeneratorConfig {
            views: 8,
            star_probability: star,
            setop_probability: setop,
            cte_probability: cte,
            shuffle_statements: reversed,
            ..GeneratorConfig::seeded(seed)
        });
        let one_shot = lineagex(&workload.full_sql())
            .map_err(|e| TestCaseError::fail(format!("{e}\n{}", workload.full_sql())))?;
        let mut engine = Engine::new();
        ingest_statementwise(&mut engine, &workload);
        let graph = engine.graph().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&graph.queries, &one_shot.graph.queries);
        prop_assert_eq!(&graph.nodes, &one_shot.graph.nodes);
        prop_assert_eq!(graph.all_edges(), one_shot.graph.all_edges());
    }

    /// Parallel extraction is byte-identical to sequential: same graph
    /// value, same serialized JSON.
    #[test]
    fn parallel_extraction_is_byte_identical(seed in 0u64..10_000) {
        let workload =
            generator::generate(&GeneratorConfig { views: 12, ..GeneratorConfig::seeded(seed) });
        let sql = workload.full_sql();
        let mut sequential =
            Engine::with_options(EngineOptions { jobs: 1, ..EngineOptions::default() });
        sequential.ingest(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut parallel =
            Engine::with_options(EngineOptions { jobs: 4, ..EngineOptions::default() });
        parallel.ingest(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let a = sequential.snapshot().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let b = parallel.snapshot().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    /// The query layer answers exactly like the legacy closures, on both
    /// `LineageView` backends: for any workload and origin column,
    /// `GraphQuery` downstream equals `impact_of` (columns, kinds,
    /// distances), `GraphQuery` upstream equals `upstream_of`, and the
    /// batch and session answers are byte-identical.
    #[test]
    fn query_layer_matches_legacy_on_both_backends(
        seed in 0u64..10_000,
        star in 0.0f64..0.9,
        pick in proptest::prelude::any::<usize>(),
    ) {
        let workload = generator::generate(&GeneratorConfig {
            views: 8,
            star_probability: star,
            ..GeneratorConfig::seeded(seed)
        });
        let sql = workload.full_sql();
        let mut batch = lineagex(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut engine = Engine::new();
        engine.ingest(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;

        // Sample one origin column from the settled graph.
        let graph = batch.graph.clone();
        let columns: Vec<SourceColumn> = graph
            .nodes
            .values()
            .flat_map(|n| n.columns.iter().map(|c| SourceColumn::new(&n.name, c)))
            .collect();
        prop_assert!(!columns.is_empty(), "an 8-view workload always has columns");
        let origin = columns[pick % columns.len()].clone();

        // Downstream: GraphQuery ≡ impact_of.
        let legacy = impact_of(&graph, &origin);
        let down = batch
            .query()
            .from_column(&origin.table, &origin.column)
            .downstream()
            .run()
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(down.columns.len(), legacy.impacted().len());
        for (m, i) in down.columns.iter().zip(legacy.impacted()) {
            prop_assert_eq!(&m.column, &i.column);
            prop_assert_eq!(m.kind, i.kind);
            prop_assert_eq!(m.distance, i.distance);
            prop_assert!(legacy.contains(&m.column));
        }

        // Upstream: GraphQuery ≡ upstream_of.
        let legacy_up = upstream_of(&graph, &origin);
        let up = batch
            .query()
            .from_column(&origin.table, &origin.column)
            .upstream()
            .run()
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let up_set: std::collections::BTreeSet<SourceColumn> =
            up.columns.iter().map(|m| m.column.clone()).collect();
        prop_assert_eq!(&up_set, &legacy_up);

        // Both backends: identical typed answers, identical bytes.
        for (direction_down, batch_answer) in [(true, &down), (false, &up)] {
            let mut q = engine.query().from_column(&origin.table, &origin.column);
            q = if direction_down { q.downstream() } else { q.upstream() };
            let engine_answer = q.run().map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&engine_answer, batch_answer);
            prop_assert_eq!(
                serde_json::to_string(&engine_answer).unwrap(),
                serde_json::to_string(batch_answer).unwrap()
            );
        }
    }

    /// The interned-index traversals are byte-identical to the legacy
    /// string walk, on generated logs, over both backends and
    /// `jobs ∈ {1, 4}`: same `QueryAnswer` (value and serialized bytes)
    /// for every spec shape, and the same `ReportV2` bytes from every
    /// backend.
    #[test]
    fn indexed_traversal_matches_string_walk(
        seed in 0u64..10_000,
        star in 0.0f64..0.9,
        setop in 0.0f64..0.9,
        pick in proptest::prelude::any::<usize>(),
    ) {
        let workload = generator::generate(&GeneratorConfig {
            views: 8,
            star_probability: star,
            setop_probability: setop,
            ..GeneratorConfig::seeded(seed)
        });
        let sql = workload.full_sql();
        let mut batch = lineagex(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let graph = batch.graph.clone();
        let columns: Vec<SourceColumn> = graph
            .nodes
            .values()
            .flat_map(|n| n.columns.iter().map(|c| SourceColumn::new(&n.name, c)))
            .collect();
        prop_assert!(!columns.is_empty());
        let origin = columns[pick % columns.len()].clone();
        let target = columns[pick / 7 % columns.len()].clone();

        let specs = [
            QuerySpec::new().from_column(&origin.table, &origin.column).downstream(),
            QuerySpec::new().from_column(&origin.table, &origin.column).upstream(),
            QuerySpec::new().from_column(&origin.table, &origin.column).max_depth(2),
            QuerySpec::new()
                .from_column(&origin.table, &origin.column)
                .edge_kind(EdgeKind::Contribute)
                .edge_kind(EdgeKind::Both),
            QuerySpec::new().from_table(&origin.table),
            QuerySpec::new()
                .from_column(&origin.table, &origin.column)
                .to(&target.table, &target.column),
            QuerySpec::new().from_table(&origin.table).table_level(),
            QuerySpec::new().from_table(&origin.table).table_level().upstream().max_depth(1),
        ];

        // The session backends settle once; their cached indexes answer
        // every spec below.
        let mut engines: Vec<(usize, Engine)> = [1usize, 4]
            .into_iter()
            .map(|jobs| {
                (jobs, Engine::with_options(EngineOptions { jobs, ..EngineOptions::default() }))
            })
            .collect();
        for (_, engine) in &mut engines {
            engine.ingest(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }

        for (i, spec) in specs.iter().enumerate() {
            let legacy = spec.run_on_unindexed(&graph);
            let indexed = spec.run_on(&graph);
            prop_assert_eq!(&indexed, &legacy, "spec #{} diverged from the string walk", i);
            prop_assert_eq!(
                serde_json::to_string(&indexed).unwrap(),
                serde_json::to_string(&legacy).unwrap(),
                "spec #{} serialisation diverged", i
            );
            // Batch backend (cached index) and both session engines.
            let batch_index =
                batch.settled_index().map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&spec.run_with(&batch_index), &legacy);
            for (jobs, engine) in &mut engines {
                let index =
                    engine.settled_index().map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert_eq!(
                    &spec.run_with(&index),
                    &legacy,
                    "jobs={} diverged on spec #{}", jobs, i
                );
            }
        }

        // The wire document is untouched by the index and byte-identical
        // across every backend.
        let batch_report = batch.report_v2().map_err(|e| TestCaseError::fail(e.to_string()))?;
        for (_, engine) in &mut engines {
            let report = engine.report_v2().map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(report.to_json(), batch_report.to_json());
        }
    }

    /// Redefining a view mid-session converges to the one-shot result of
    /// the edited log.
    #[test]
    fn redefinition_converges_to_edited_log(seed in 0u64..10_000, pick in 0usize..8) {
        let workload =
            generator::generate(&GeneratorConfig { views: 8, ..GeneratorConfig::seeded(seed) });
        let mut engine = Engine::new();
        engine.ingest(&workload.full_sql()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        engine.refresh().map_err(|e| TestCaseError::fail(e.to_string()))?;
        // Edit one view (content change, same lineage shape).
        let edited = with_limit(&workload.view_statements[pick], 777);
        engine.ingest(&edited).map_err(|e| TestCaseError::fail(e.to_string()))?;
        // One-shot over the edited log.
        let mut statements: Vec<String> = workload.view_statements.clone();
        statements[pick] = edited;
        let full = format!("{}\n{};", workload.ddl, statements.join(";\n"));
        let one_shot = lineagex(&full).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let graph = engine.graph().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&graph.queries, &one_shot.graph.queries);
        prop_assert_eq!(&graph.nodes, &one_shot.graph.nodes);
    }
}

/// The acceptance scenario: on a 200-view log, redefining one view
/// re-extracts exactly its downstream cone — measured, not assumed, via
/// the engine's extraction counters.
#[test]
fn redefining_one_view_on_a_200_view_log_reextracts_only_its_cone() {
    let workload =
        generator::generate(&GeneratorConfig { views: 200, ..GeneratorConfig::seeded(29) });
    let mut engine = Engine::new();
    engine.ingest(&workload.full_sql()).unwrap();
    assert_eq!(engine.refresh().unwrap(), 200);

    // Pick a hub: a view with real dependents but a proper sub-log cone.
    let (target, cone) = workload
        .view_names
        .iter()
        .map(|name| (name.clone(), engine.downstream_cone(name)))
        .filter(|(_, cone)| cone.len() > 1 && cone.len() < 100)
        .max_by_key(|(_, cone)| cone.len())
        .expect("the 200-view workload has a mid-sized hub");
    let original = workload
        .view_statements
        .iter()
        .find(|s| s.contains(&format!("CREATE VIEW {target} ")))
        .unwrap();

    engine.ingest(&with_limit(original, 424_242)).unwrap();
    let reextracted = engine.refresh().unwrap();
    assert_eq!(reextracted, cone.len(), "must re-extract exactly the downstream cone");
    assert_eq!(engine.stats().last_refresh_extractions as usize, cone.len());
    assert!(cone.len() < 100, "cone must stay a fraction of the 200-view log");
    // Untouched views kept their lineage; total work stayed cone-sized.
    assert_eq!(engine.stats().extractions as usize, 200 + cone.len());
    assert!(workload.ground_truth.diff(engine.graph().unwrap()).is_empty());
}
