//! The session engine's contract with the batch pipeline, asserted over
//! generated workloads:
//!
//! 1. **incremental ≡ batch** — statement-at-a-time `Engine::ingest`
//!    settles to the same lineage (nodes + per-query records — including
//!    each record's diagnostics and partial flag — hence all edges) as
//!    one-shot `LineageX::run` over the same log;
//! 2. **parallel ≡ sequential** — `jobs > 1` is byte-identical to
//!    `jobs = 1`, including the serialized graph;
//! 3. **cone-sized invalidation** — redefining one view on a 200-view log
//!    re-extracts exactly its downstream cone (extraction counters);
//! 4. **query layer ≡ legacy closures** — `GraphQuery`
//!    downstream/upstream answers are exactly the legacy
//!    `impact_of`/`upstream_of` results, and byte-identical across the
//!    `LineageView` backends (batch `LineageResult` and session
//!    `Engine`).

use lineagex::datasets::{generator, GeneratorConfig};
use lineagex::engine::{Engine, EngineOptions};
use lineagex::prelude::*;
use lineagex::sqlparse::ast::{Expr, Literal, Statement};
use proptest::prelude::*;

/// Feed a workload to an engine one statement at a time.
fn ingest_statementwise(engine: &mut Engine, workload: &generator::PipelineWorkload) {
    for ddl in workload.ddl.split(';').filter(|s| !s.trim().is_empty()) {
        engine.ingest(ddl).unwrap();
    }
    for view in &workload.view_statements {
        engine.ingest(view).unwrap();
    }
}

/// The statement re-rendered with a different LIMIT: changed content,
/// identical lineage.
fn with_limit(statement: &str, limit: u64) -> String {
    let mut stmt = lineagex::sqlparse::parse_statement(statement).unwrap();
    if let Statement::CreateView { ref mut query, .. } = stmt {
        query.limit = Some(Expr::Literal(Literal::Number(limit.to_string())));
    }
    stmt.to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Incremental ingestion (forward or dependency-reversed statement
    /// order) settles to the one-shot pipeline's graph for any seed and
    /// feature mix.
    #[test]
    fn incremental_ingest_matches_one_shot(
        seed in 0u64..10_000,
        star in 0.0f64..0.9,
        setop in 0.0f64..0.9,
        cte in 0.0f64..0.9,
        reversed in proptest::prelude::any::<bool>(),
    ) {
        let workload = generator::generate(&GeneratorConfig {
            views: 8,
            star_probability: star,
            setop_probability: setop,
            cte_probability: cte,
            shuffle_statements: reversed,
            ..GeneratorConfig::seeded(seed)
        });
        let one_shot = lineagex(&workload.full_sql())
            .map_err(|e| TestCaseError::fail(format!("{e}\n{}", workload.full_sql())))?;
        let mut engine = Engine::new();
        ingest_statementwise(&mut engine, &workload);
        let graph = engine.graph().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&graph.queries, &one_shot.graph.queries);
        prop_assert_eq!(&graph.nodes, &one_shot.graph.nodes);
        prop_assert_eq!(graph.all_edges(), one_shot.graph.all_edges());
    }

    /// Parallel extraction is byte-identical to sequential: same graph
    /// value, same serialized JSON.
    #[test]
    fn parallel_extraction_is_byte_identical(seed in 0u64..10_000) {
        let workload =
            generator::generate(&GeneratorConfig { views: 12, ..GeneratorConfig::seeded(seed) });
        let sql = workload.full_sql();
        let mut sequential =
            Engine::with_options(EngineOptions { jobs: 1, ..EngineOptions::default() });
        sequential.ingest(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut parallel =
            Engine::with_options(EngineOptions { jobs: 4, ..EngineOptions::default() });
        parallel.ingest(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let a = sequential.snapshot().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let b = parallel.snapshot().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    /// The query layer answers exactly like the legacy closures, on both
    /// `LineageView` backends: for any workload and origin column,
    /// `GraphQuery` downstream equals `impact_of` (columns, kinds,
    /// distances), `GraphQuery` upstream equals `upstream_of`, and the
    /// batch and session answers are byte-identical.
    #[test]
    fn query_layer_matches_legacy_on_both_backends(
        seed in 0u64..10_000,
        star in 0.0f64..0.9,
        pick in proptest::prelude::any::<usize>(),
    ) {
        let workload = generator::generate(&GeneratorConfig {
            views: 8,
            star_probability: star,
            ..GeneratorConfig::seeded(seed)
        });
        let sql = workload.full_sql();
        let mut batch = lineagex(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut engine = Engine::new();
        engine.ingest(&sql).map_err(|e| TestCaseError::fail(e.to_string()))?;

        // Sample one origin column from the settled graph.
        let graph = batch.graph.clone();
        let columns: Vec<SourceColumn> = graph
            .nodes
            .values()
            .flat_map(|n| n.columns.iter().map(|c| SourceColumn::new(&n.name, c)))
            .collect();
        prop_assert!(!columns.is_empty(), "an 8-view workload always has columns");
        let origin = columns[pick % columns.len()].clone();

        // Downstream: GraphQuery ≡ impact_of.
        let legacy = impact_of(&graph, &origin);
        let down = batch
            .query()
            .from_column(&origin.table, &origin.column)
            .downstream()
            .run()
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(down.columns.len(), legacy.impacted().len());
        for (m, i) in down.columns.iter().zip(legacy.impacted()) {
            prop_assert_eq!(&m.column, &i.column);
            prop_assert_eq!(m.kind, i.kind);
            prop_assert_eq!(m.distance, i.distance);
            prop_assert!(legacy.contains(&m.column));
        }

        // Upstream: GraphQuery ≡ upstream_of.
        let legacy_up = upstream_of(&graph, &origin);
        let up = batch
            .query()
            .from_column(&origin.table, &origin.column)
            .upstream()
            .run()
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let up_set: std::collections::BTreeSet<SourceColumn> =
            up.columns.iter().map(|m| m.column.clone()).collect();
        prop_assert_eq!(&up_set, &legacy_up);

        // Both backends: identical typed answers, identical bytes.
        for (direction_down, batch_answer) in [(true, &down), (false, &up)] {
            let mut q = engine.query().from_column(&origin.table, &origin.column);
            q = if direction_down { q.downstream() } else { q.upstream() };
            let engine_answer = q.run().map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&engine_answer, batch_answer);
            prop_assert_eq!(
                serde_json::to_string(&engine_answer).unwrap(),
                serde_json::to_string(batch_answer).unwrap()
            );
        }
    }

    /// Redefining a view mid-session converges to the one-shot result of
    /// the edited log.
    #[test]
    fn redefinition_converges_to_edited_log(seed in 0u64..10_000, pick in 0usize..8) {
        let workload =
            generator::generate(&GeneratorConfig { views: 8, ..GeneratorConfig::seeded(seed) });
        let mut engine = Engine::new();
        engine.ingest(&workload.full_sql()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        engine.refresh().map_err(|e| TestCaseError::fail(e.to_string()))?;
        // Edit one view (content change, same lineage shape).
        let edited = with_limit(&workload.view_statements[pick], 777);
        engine.ingest(&edited).map_err(|e| TestCaseError::fail(e.to_string()))?;
        // One-shot over the edited log.
        let mut statements: Vec<String> = workload.view_statements.clone();
        statements[pick] = edited;
        let full = format!("{}\n{};", workload.ddl, statements.join(";\n"));
        let one_shot = lineagex(&full).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let graph = engine.graph().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&graph.queries, &one_shot.graph.queries);
        prop_assert_eq!(&graph.nodes, &one_shot.graph.nodes);
    }
}

/// The acceptance scenario: on a 200-view log, redefining one view
/// re-extracts exactly its downstream cone — measured, not assumed, via
/// the engine's extraction counters.
#[test]
fn redefining_one_view_on_a_200_view_log_reextracts_only_its_cone() {
    let workload =
        generator::generate(&GeneratorConfig { views: 200, ..GeneratorConfig::seeded(29) });
    let mut engine = Engine::new();
    engine.ingest(&workload.full_sql()).unwrap();
    assert_eq!(engine.refresh().unwrap(), 200);

    // Pick a hub: a view with real dependents but a proper sub-log cone.
    let (target, cone) = workload
        .view_names
        .iter()
        .map(|name| (name.clone(), engine.downstream_cone(name)))
        .filter(|(_, cone)| cone.len() > 1 && cone.len() < 100)
        .max_by_key(|(_, cone)| cone.len())
        .expect("the 200-view workload has a mid-sized hub");
    let original = workload
        .view_statements
        .iter()
        .find(|s| s.contains(&format!("CREATE VIEW {target} ")))
        .unwrap();

    engine.ingest(&with_limit(original, 424_242)).unwrap();
    let reextracted = engine.refresh().unwrap();
    assert_eq!(reextracted, cone.len(), "must re-extract exactly the downstream cone");
    assert_eq!(engine.stats().last_refresh_extractions as usize, cone.len());
    assert!(cone.len() < 100, "cone must stay a fraction of the 200-view log");
    // Untouched views kept their lineage; total work stayed cone-sized.
    assert_eq!(engine.stats().extractions as usize, 200 + cone.len());
    assert!(workload.ground_truth.diff(engine.graph().unwrap()).is_empty());
}
