//! End-to-end integration tests over the paper's Example 1, spanning the
//! parser, extractor, auto-inference engine, impact analysis, baselines,
//! and visualisation crates.

use lineagex::baseline::llm_sim::llm_style_impact;
use lineagex::baseline::metrics::{graph_contribute_edges, score_edges};
use lineagex::baseline::SqlLineageLike;
use lineagex::datasets::example1;
use lineagex::prelude::*;
use std::collections::BTreeSet;

#[test]
fn example1_smoke_webinfo_wcid_edges() {
    // Smoke test for the paper's Example 1 flow: the full log (DDL + Q1–Q3
    // in paper order) must extract end-to-end, and `webinfo.wcid` must be
    // wired to `web.cid`. In this reproduction's Example 1, `webinfo`
    // computes `wcid` from `customers.cid` and joins on `web.cid`, so the
    // `webinfo.wcid ← web.cid` edge surfaces as a Reference edge alongside
    // the `customers.cid` edge (Both: it is projected *and* a join key).
    let result = lineagex(&example1::full_log()).unwrap();
    let wcid = SourceColumn::new("webinfo", "wcid");
    let edges = result.graph.all_edges();
    let kind_of = |from: &SourceColumn| {
        edges.iter().find(|e| e.from == *from && e.to == wcid).map(|e| e.kind)
    };
    assert_eq!(kind_of(&SourceColumn::new("web", "cid")), Some(EdgeKind::Reference));
    assert_eq!(kind_of(&SourceColumn::new("customers", "cid")), Some(EdgeKind::Both));
}

#[test]
fn lineagex_matches_fig2_ground_truth() {
    let result = lineagex(&example1::full_log()).unwrap();
    let failures = example1::ground_truth().diff(&result.graph);
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn lineagex_scores_perfectly_where_baseline_fails() {
    let log = example1::full_log();
    let truth = example1::ground_truth().contribute_edges();

    let ours = lineagex(&log).unwrap();
    let our_score = score_edges(&graph_contribute_edges(&ours.graph), &truth);
    assert_eq!(our_score.f1(), 1.0);

    let baseline = SqlLineageLike::new().extract(&log).unwrap();
    let base_score = score_edges(&graph_contribute_edges(&baseline), &truth);
    assert!(base_score.f1() < 1.0, "baseline should exhibit the Fig. 2 failures");
    assert!(base_score.recall() < 1.0, "baseline misses the w.* expansion edges");
}

#[test]
fn baseline_reproduces_the_papers_red_boxes() {
    let baseline = SqlLineageLike::new().extract(&example1::full_log()).unwrap();
    // Red box 1: webact has four extra output columns from the second
    // INTERSECT branch.
    assert_eq!(baseline.queries["webact"].outputs.len(), 8);
    // Red box 2: info returns a webact.* -> info.* entry instead of the
    // four expanded columns.
    let info = &baseline.queries["info"];
    let star =
        info.outputs.iter().find(|o| o.name == "*").expect("baseline must emit a star entry");
    assert_eq!(star.ccon, BTreeSet::from([SourceColumn::new("webact", "*")]));
    // And it reports fewer real columns for info than exist (3 + star).
    assert!(info.outputs.len() < 7);
}

#[test]
fn impact_analysis_matches_section4() {
    let result = lineagex(&example1::full_log()).unwrap();
    let impact = result.impact_of("web", "page");
    let expected: BTreeSet<SourceColumn> = example1::expected_page_impact()
        .into_iter()
        .map(|(t, c)| SourceColumn::new(t, c))
        .collect();
    let actual: BTreeSet<SourceColumn> =
        impact.impacted().iter().map(|i| i.column.clone()).collect();
    assert_eq!(actual, expected);
}

#[test]
fn explore_walks_the_ui_steps() {
    let result = lineagex(&example1::full_log()).unwrap();
    let hop1 = explore(&result.graph, "web");
    assert_eq!(hop1.downstream, vec!["webact", "webinfo"]);
    assert!(hop1.upstream.is_empty());
    let hop2 = explore(&result.graph, "webact");
    assert_eq!(hop2.downstream, vec!["info"]);
    assert_eq!(hop2.upstream, vec!["web", "webinfo"]);
    let hop3 = explore(&result.graph, "info");
    assert!(hop3.downstream.is_empty());
}

#[test]
fn llm_simulation_finds_contributing_misses_referenced() {
    let result = lineagex(&example1::full_log()).unwrap();
    let llm = llm_style_impact(&result.graph, &SourceColumn::new("web", "page"));
    // Finds the wpage chain everywhere.
    for (t, c) in [("webinfo", "wpage"), ("webact", "wpage"), ("info", "wpage")] {
        assert!(llm.contains(&SourceColumn::new(t, c)), "missing {t}.{c}");
    }
    // Misses every referenced-only column.
    for (t, c) in [("webact", "wcid"), ("info", "oid"), ("info", "name")] {
        assert!(!llm.contains(&SourceColumn::new(t, c)), "should miss {t}.{c}");
    }
    // The full impact strictly contains the LLM's answer.
    let full = result.impact_of("web", "page");
    assert!(full.impacted().len() > llm.len());
}

#[test]
fn artifacts_render_for_example1() {
    let result = lineagex(&example1::full_log()).unwrap();
    let json = to_output_json(&result.graph);
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value["queries"]["info"]["tables"][2], "webact");
    assert_eq!(value["processing_order"][0], "webinfo");

    let dot = to_dot(&result.graph);
    assert!(dot.contains("\"webact\""));
    assert!(dot.contains("color=orange"), "C_both edges must render orange");

    let html = to_html(&result.graph);
    assert!(html.contains("webact.wpage"));
}

#[test]
fn statement_order_does_not_matter() {
    // The paper's log (info first) and the topological log (webinfo first)
    // must produce identical lineage.
    let paper_order = lineagex(&example1::full_log()).unwrap();
    let reversed: String = {
        let stmts: Vec<&str> = example1::QUERIES.split(';').map(str::trim).collect();
        let mut forward: Vec<&str> =
            stmts.iter().rev().filter(|s| !s.is_empty()).copied().collect();
        let mut log = example1::DDL.to_string();
        for stmt in forward.drain(..) {
            log.push_str(stmt);
            log.push(';');
        }
        log
    };
    let topo_order = lineagex(&reversed).unwrap();
    assert_eq!(paper_order.graph.queries, topo_order.graph.queries);
    // The paper order needs deferrals; the topological order needs none.
    assert_eq!(paper_order.deferrals.len(), 2);
    assert!(topo_order.deferrals.is_empty());
}
