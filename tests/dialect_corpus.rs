//! The per-dialect fixture corpus (`tests/corpus/dialects/<name>.sql`).
//!
//! Each fixture is written in its dialect's native surface — quoting
//! style, comment syntax, and dialect statement forms (`QUALIFY`,
//! `TOP n`, `MERGE`) — and must go through the full pipeline under its
//! own dialect with **zero error-severity diagnostics**, in strict and
//! lenient mode alike. Recognized-but-unmodelled forms (`MERGE`) may
//! surface as `dialect-fallback` *warnings*; anything harder fails the
//! gate. This is the CI corpus-runner step (`./ci.sh` runs this test).

use lineagex::core::{DiagnosticCode, ExtractOptions, LineageX, Severity};
use lineagex::prelude::*;
use lineagex::sqlparse::parse_sql_with;
use std::collections::BTreeSet;

fn fixture(kind: DialectKind) -> String {
    let path = format!("tests/corpus/dialects/{}.sql", kind.name());
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Every diagnostic of a run: run-level first, then per-query.
fn all_diagnostics(result: &LineageResult) -> Vec<Diagnostic> {
    let mut out = result.diagnostics.clone();
    for id in &result.graph.order {
        out.extend(result.graph.queries[id].diagnostics.iter().cloned());
    }
    out
}

fn run(kind: DialectKind, lenient: bool) -> LineageResult {
    let mut builder = LineageX::new().dialect(kind);
    if lenient {
        builder = builder.lenient();
    }
    builder
        .run(&fixture(kind))
        .unwrap_or_else(|e| panic!("{} corpus failed ({lenient}-lenient): {e}", kind.name()))
}

#[test]
fn every_dialect_parses_its_own_corpus_strictly() {
    for kind in DialectKind::ALL {
        let statements = parse_sql_with(&fixture(kind), kind)
            .unwrap_or_else(|e| panic!("{} corpus does not parse: {e}", kind.name()));
        assert!(statements.len() >= 7, "{} corpus is too thin", kind.name());
    }
}

#[test]
fn every_dialect_extracts_its_own_corpus_without_errors() {
    for kind in DialectKind::ALL {
        for lenient in [false, true] {
            let result = run(kind, lenient);
            assert!(!result.graph.queries.is_empty(), "{} corpus produced no lineage", kind.name());
            let errors: Vec<Diagnostic> = all_diagnostics(&result)
                .into_iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(
                errors.is_empty(),
                "{} corpus produced error diagnostics (lenient={lenient}): {errors:?}",
                kind.name()
            );
        }
    }
}

#[test]
fn merge_surfaces_as_a_span_tagged_dialect_fallback_warning() {
    // Every MERGE-capable dialect's fixture carries one MERGE statement;
    // it must degrade to exactly one dialect-fallback warning with a
    // span resolving into the fixture.
    for kind in
        [DialectKind::Postgres, DialectKind::Snowflake, DialectKind::BigQuery, DialectKind::TSql]
    {
        let sql = fixture(kind);
        let result = run(kind, false);
        let fallbacks: Vec<Diagnostic> = all_diagnostics(&result)
            .into_iter()
            .filter(|d| d.code == DiagnosticCode::DialectFallback)
            .collect();
        assert_eq!(fallbacks.len(), 1, "{}: {fallbacks:?}", kind.name());
        let diagnostic = &fallbacks[0];
        assert_eq!(diagnostic.severity, Severity::Warning);
        let span = diagnostic.span.expect("dialect-fallback carries a span");
        assert_eq!(&sql[span.start..span.start + 5], "MERGE", "{}", kind.name());
    }
    // The ANSI corpus has no dialect statement forms at all.
    let codes: BTreeSet<DiagnosticCode> =
        all_diagnostics(&run(DialectKind::Ansi, false)).iter().map(|d| d.code).collect();
    assert!(!codes.contains(&DiagnosticCode::DialectFallback), "{codes:?}");
}

#[test]
fn dialect_features_reach_the_lineage_graph() {
    // Snowflake QUALIFY contributes column references.
    let result = run(DialectKind::Snowflake, false);
    let first_hits = &result.graph.queries["first_hits"];
    assert!(first_hits.cref.contains(&SourceColumn::new("webinfo", "wdate")), "{first_hits:?}");
    // T-SQL TOP leaves projection lineage untouched.
    let result = run(DialectKind::TSql, false);
    let recent = &result.graph.queries["recent_hits"];
    assert_eq!(recent.output_names(), vec!["wcid", "wpage", "wdate"]);
    assert_eq!(recent.outputs[1].ccon, BTreeSet::from([SourceColumn::new("webinfo", "wpage")]));
    // BigQuery backticks resolve spaced identifiers end to end.
    let result = run(DialectKind::BigQuery, false);
    let webinfo = &result.graph.queries["webinfo"];
    assert_eq!(webinfo.outputs[2].ccon, BTreeSet::from([SourceColumn::new("raw web", "page")]));
}

#[test]
fn parallel_extraction_is_byte_identical_under_a_dialect() {
    // parallel ≡ sequential must survive dialect selection: the snowflake
    // corpus (QUALIFY + MERGE fallback) through jobs 1 vs 4, compared as
    // serialized ReportV2 bytes.
    let sql = fixture(DialectKind::Snowflake);
    let mut reports = Vec::new();
    for jobs in [1usize, 4] {
        let mut engine = Engine::with_options(EngineOptions {
            jobs,
            extract: ExtractOptions::new().with_lenient().with_dialect(DialectKind::Snowflake),
            ..EngineOptions::default()
        });
        engine.ingest(&sql).unwrap();
        engine.refresh().unwrap();
        let report = engine.report_v2().unwrap();
        reports.push(serde_json::to_string(&report).unwrap());
    }
    assert_eq!(reports[0], reports[1], "jobs=4 drifted from jobs=1 under snowflake");
}

#[test]
fn serve_byte_identity_holds_under_a_dialect() {
    // The serve layer's byte-identity contract, extended to a non-ANSI
    // session: a server pinned to snowflake serves the same ReportV2
    // bytes a local engine under the same dialect serialises.
    let sql = fixture(DialectKind::Snowflake);
    let extract = ExtractOptions::new().with_lenient().with_dialect(DialectKind::Snowflake);
    let server = Server::start(
        "127.0.0.1:0",
        ServeOptions {
            engine: EngineOptions { extract, ..EngineOptions::default() },
            ..ServeOptions::default()
        },
    )
    .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("client connects");
    assert_eq!(client.server_dialect().unwrap(), "snowflake");
    let reply = client.ingest(&sql).expect("ingest succeeds");
    assert!(reply.ok(), "ingest failed: {}", reply.line);
    let reply = client.report().expect("report succeeds");
    assert!(reply.ok(), "report failed: {}", reply.line);
    let marker = ",\"result\":";
    let at = reply.line.find(marker).expect("reply has a result field");
    let served = &reply.line[at + marker.len()..reply.line.len() - 1];

    let mut engine = Engine::with_options(EngineOptions { extract, ..EngineOptions::default() });
    engine.ingest(&sql).unwrap();
    engine.refresh().unwrap();
    let expected = serde_json::to_string(&engine.report_v2().unwrap()).unwrap();
    assert_eq!(served, expected, "served snowflake ReportV2 drifted from the engine serialisation");
    server.shutdown();
}

#[test]
fn engine_session_matches_batch_on_every_corpus() {
    // The incremental engine under the same dialect settles to the same
    // graph as the one-shot batch run — the equivalence invariant,
    // extended across the dialect matrix.
    for kind in DialectKind::ALL {
        let sql = fixture(kind);
        let batch = LineageX::new().dialect(kind).lenient().run(&sql).unwrap();
        let mut engine = Engine::with_options(EngineOptions {
            extract: lineagex::core::ExtractOptions::new().with_lenient().with_dialect(kind),
            ..EngineOptions::default()
        });
        engine.ingest(&sql).unwrap();
        let graph = engine.graph().unwrap();
        assert_eq!(&graph.queries, &batch.graph.queries, "{}", kind.name());
        assert_eq!(&graph.nodes, &batch.graph.nodes, "{}", kind.name());
    }
}
