//! Stress tests: pathologically deep and wide pipelines must extract
//! without stack overflow and in reasonable time — the explicit LIFO
//! deferral stack (not call-stack recursion) is what makes this safe.
//! The hammer test at the bottom adds the concurrency dimension: readers
//! pulling `settled_index()` while a writer churns redefinitions and
//! drops must never be served a stale index.

use lineagex::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Build a linear chain `v_0 <- v_1 <- ... <- v_{n-1}` emitted in
/// **reverse** order, so every single view is deferred: the worst case for
/// the auto-inference stack.
fn deep_chain(depth: usize) -> String {
    let mut stmts = vec!["CREATE TABLE base (a int, b int);".to_string()];
    for i in (0..depth).rev() {
        let source = if i == 0 { "base".to_string() } else { format!("v_{}", i - 1) };
        stmts.push(format!("CREATE VIEW v_{i} AS SELECT * FROM {source};"));
    }
    stmts.join("\n")
}

#[test]
fn thousand_deep_reversed_chain_extracts() {
    let depth = 1000;
    let result = lineagex(&deep_chain(depth)).unwrap();
    assert_eq!(result.graph.queries.len(), depth);
    // Every view was deferred exactly once (the log is fully reversed).
    assert_eq!(result.deferrals.len(), depth - 1);
    // Lineage composed through the whole chain: the top view's column
    // points at its immediate upstream, and impact reaches end to end.
    let top = &result.graph.queries[&format!("v_{}", depth - 1)];
    assert_eq!(top.output_names(), vec!["a", "b"]);
    let impact = result.impact_of("base", "a");
    assert_eq!(impact.impacted().len(), depth, "one column per view");
    let farthest = impact.impacted().iter().map(|c| c.distance).max().unwrap();
    assert_eq!(farthest, depth);
}

#[test]
fn wide_fanout_extracts() {
    // One base table, 500 independent views reading it.
    let mut stmts = vec!["CREATE TABLE base (a int);".to_string()];
    for i in 0..500 {
        stmts.push(format!("CREATE VIEW w_{i} AS SELECT a AS a_{i} FROM base WHERE a > {i};"));
    }
    let result = lineagex(&stmts.join("\n")).unwrap();
    assert_eq!(result.graph.queries.len(), 500);
    assert!(result.deferrals.is_empty());
    let impact = result.impact_of("base", "a");
    assert_eq!(impact.impacted().len(), 500);
}

#[test]
fn wide_star_diamond() {
    // Diamond: base -> left/right -> join view, repeated 100 times.
    let mut stmts = vec!["CREATE TABLE base (k int, x int, y int);".to_string()];
    for i in 0..100 {
        stmts.push(format!("CREATE VIEW l_{i} AS SELECT k, x FROM base;"));
        stmts.push(format!("CREATE VIEW r_{i} AS SELECT k AS k2, y FROM base;"));
        stmts.push(format!(
            "CREATE VIEW top_{i} AS SELECT l.x, r.y FROM l_{i} l JOIN r_{i} r ON l.k = r.k2;"
        ));
    }
    let result = lineagex(&stmts.join("\n")).unwrap();
    assert_eq!(result.graph.queries.len(), 300);
    let impact = result.impact_of("base", "k");
    // k is referenced by every top view's join (through l/r columns).
    assert!(impact.impacted().len() >= 400, "got {}", impact.impacted().len());
}

#[test]
fn settled_index_is_never_stale_under_hammering() {
    // The revision-keyed `GraphIndexCache` contract, under fire: between
    // every redefinition / DROP / refresh, `settled_index()` must hand
    // out an index that matches the graph *as settled at that moment* —
    // a cache that keyed on anything weaker than the graph revision
    // would leak an index from a previous round here.
    let engine = Arc::new(Mutex::new(Engine::new()));
    {
        let mut guard = engine.lock().unwrap();
        guard
            .ingest(
                "CREATE TABLE base (a int, b int);
                 CREATE VIEW hot AS SELECT a AS h_0 FROM base;
                 CREATE VIEW temp AS SELECT b AS t FROM base;",
            )
            .unwrap();
        guard.refresh().unwrap();
    }
    let done = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..3 {
        let engine = Arc::clone(&engine);
        let done = Arc::clone(&done);
        readers.push(thread::spawn(move || {
            let mut checks = 0usize;
            while !done.load(Ordering::Relaxed) {
                // Capture graph facts and the index under one lock hold,
                // so they describe the same settled state...
                let (hot_columns, has_temp, index) = {
                    let mut guard = engine.lock().unwrap();
                    let (hot_columns, has_temp) = {
                        let graph = guard.settled_graph().unwrap();
                        let names: Vec<String> = graph.queries["hot"]
                            .output_names()
                            .iter()
                            .map(|s| s.to_string())
                            .collect();
                        (names, graph.queries.contains_key("temp"))
                    };
                    (hot_columns, has_temp, guard.settled_index().unwrap())
                };
                // ... then verify the index against them outside it.
                for column in &hot_columns {
                    assert!(
                        index.lookup_column("hot", column).is_some(),
                        "index is stale: hot.{column} is settled but not indexed"
                    );
                }
                let round: usize = hot_columns[0][2..].parse().unwrap();
                if round > 0 {
                    let previous = format!("h_{}", round - 1);
                    assert!(
                        index.lookup_column("hot", &previous).is_none(),
                        "index is stale: hot.{previous} was redefined away"
                    );
                }
                assert_eq!(
                    index.lookup_column("temp", "t").is_some(),
                    has_temp,
                    "index disagrees with the graph about `temp` (round {round})"
                );
                checks += 1;
            }
            checks
        }));
    }

    for round in 1..=40 {
        let mut guard = engine.lock().unwrap();
        guard.ingest(&format!("CREATE VIEW hot AS SELECT a AS h_{round} FROM base;")).unwrap();
        if round % 2 == 1 {
            guard.ingest("DROP VIEW IF EXISTS temp;").unwrap();
        } else {
            guard.ingest("CREATE VIEW temp AS SELECT b AS t FROM base;").unwrap();
        }
        guard.refresh().unwrap();
        drop(guard);
        thread::yield_now();
    }
    done.store(true, Ordering::Relaxed);
    let total: usize = readers.into_iter().map(|r| r.join().expect("reader panicked")).sum();
    assert!(total > 0, "readers never got a look in");
}

#[test]
fn long_cycle_is_detected_not_overflowed() {
    // a_0 -> a_1 -> ... -> a_199 -> a_0.
    let n = 200;
    let mut stmts = Vec::new();
    for i in 0..n {
        stmts.push(format!("CREATE VIEW a_{i} AS SELECT * FROM a_{};", (i + 1) % n));
    }
    let err = lineagex(&stmts.join("\n")).unwrap_err();
    match err {
        LineageError::DependencyCycle(path) => {
            assert_eq!(path.len(), n + 1);
            assert_eq!(path.first(), path.last());
        }
        other => panic!("expected cycle, got {other}"),
    }
}
