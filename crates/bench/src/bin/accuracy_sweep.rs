//! ACC — accuracy sweep: F1 of LineageX vs the SQLLineage-like baseline
//! as the workload's SQL-feature mix varies. Extends the paper's
//! qualitative Fig. 2 claim into a quantitative curve: the baseline
//! degrades as `SELECT *` / set operations / prefix-less columns become
//! more common, while LineageX stays at 100%.

use lineagex_baseline::metrics::{graph_contribute_edges, score_edges, EdgeScore};
use lineagex_baseline::SqlLineageLike;
use lineagex_bench::{pct, section};
use lineagex_core::lineagex;
use lineagex_datasets::{generator, GeneratorConfig};

const SEEDS: [u64; 5] = [11, 23, 37, 51, 73];

fn run_mix(label: &str, mutate: impl Fn(&mut GeneratorConfig)) -> (EdgeScore, EdgeScore) {
    let mut ours = EdgeScore { true_positives: 0, false_positives: 0, false_negatives: 0 };
    let mut base = EdgeScore { true_positives: 0, false_positives: 0, false_negatives: 0 };
    for seed in SEEDS {
        let mut config = GeneratorConfig::seeded(seed);
        config.views = 20;
        mutate(&mut config);
        let workload = generator::generate(&config);
        let sql = workload.full_sql();
        let expected = workload.ground_truth.contribute_edges();

        let our_graph = lineagex(&sql).expect("extraction succeeds").graph;
        let s = score_edges(&graph_contribute_edges(&our_graph), &expected);
        ours.true_positives += s.true_positives;
        ours.false_positives += s.false_positives;
        ours.false_negatives += s.false_negatives;

        let base_graph = SqlLineageLike::new().extract(&sql).expect("baseline parses");
        let s = score_edges(&graph_contribute_edges(&base_graph), &expected);
        base.true_positives += s.true_positives;
        base.false_positives += s.false_positives;
        base.false_negatives += s.false_negatives;
    }
    println!("  {label:<34} LineageX F1 {:>6}   baseline F1 {:>6}", pct(ours.f1()), pct(base.f1()));
    (ours, base)
}

fn main() {
    section("ACC — F1 vs SQL-feature mix (5 seeds × 20 views each)");
    println!();

    let mut rows = Vec::new();
    rows.push(run_mix("plain (no stars/setops/bare cols)", |c| {
        c.star_probability = 0.0;
        c.setop_probability = 0.0;
        c.cte_probability = 0.0;
        c.unqualified_probability = 0.0;
    }));
    rows.push(run_mix("+ prefix-less columns (p=0.8)", |c| {
        c.star_probability = 0.0;
        c.setop_probability = 0.0;
        c.cte_probability = 0.0;
        c.unqualified_probability = 0.8;
    }));
    rows.push(run_mix("+ CTEs (p=0.6)", |c| {
        c.star_probability = 0.0;
        c.setop_probability = 0.0;
        c.cte_probability = 0.6;
        c.unqualified_probability = 0.3;
    }));
    rows.push(run_mix("+ set operations (p=0.6)", |c| {
        c.star_probability = 0.0;
        c.setop_probability = 0.6;
        c.cte_probability = 0.2;
    }));
    rows.push(run_mix("+ SELECT * (p=0.7)", |c| {
        c.star_probability = 0.7;
        c.setop_probability = 0.2;
        c.cte_probability = 0.2;
    }));
    rows.push(run_mix("everything (paper-like mix)", |c| {
        c.star_probability = 0.4;
        c.setop_probability = 0.3;
        c.cte_probability = 0.3;
        c.unqualified_probability = 0.5;
    }));

    // LineageX stays perfect on every mix (its ground truth is exact by
    // construction); the baseline must degrade once hard features appear.
    for (ours, _) in &rows {
        assert!((ours.f1() - 1.0).abs() < 1e-9, "LineageX must stay at F1 = 100%");
    }
    let plain_baseline = rows[0].1.f1();
    let hard_baseline = rows.last().unwrap().1.f1();
    assert!(
        hard_baseline < plain_baseline,
        "baseline must degrade on the hard mix ({hard_baseline} vs {plain_baseline})"
    );
    println!("\n✔ LineageX F1 = 100% everywhere; baseline degrades with hard features");
}
