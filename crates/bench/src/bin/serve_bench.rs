//! SERVE — the serving layer under a mixed read/write load: a live
//! `lineagex-serve` server over the 200-view scaling workload, measured
//! in two phases. *Idle*: a reader sweeps per-column queries against a
//! quiet server, pinning the lock-free read path's latency floor.
//! *Churn*: the same sweep while a writer hammers create/drop churn
//! through the single-writer channel, so every write re-settles and
//! republishes the full snapshot. The headline contract: read p99
//! during active refresh stays within 3x of the idle p99 (snapshot
//! swaps must never stall readers behind extraction).
//!
//! Writes `BENCH_serve.json` into the working directory so the serving
//! layer joins the repo's perf trajectory. `scripts/check_bench.sh`
//! re-runs this binary (`BENCH_QUICK=1`) and fails CI when the mixed
//! throughput regresses more than 30% below the committed numbers or
//! the 3x latency contract breaks.

use lineagex_bench::section;
use lineagex_core::{lineagex, LineageView};
use lineagex_datasets::{generator, GeneratorConfig};
use lineagex_serve::proto::QueryParams;
use lineagex_serve::{Client, ServeOptions, Server};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const VIEWS: usize = 200;

/// Sweep sizes: smaller under `BENCH_QUICK=1` (the CI regression gate's
/// quick mode).
fn reads_per_phase() -> usize {
    if std::env::var_os("BENCH_QUICK").is_some() {
        400
    } else {
        2000
    }
}

/// Sub-millisecond idle p99s are noise-dominated on a busy machine, so
/// the 3x contract is measured against `max(idle_p99, 1ms)`.
const P99_FLOOR_MS: f64 = 1.0;

#[derive(Serialize)]
struct Report {
    views: usize,
    origin_columns: usize,
    reads_per_phase: usize,
    churn_writes: u64,
    idle_read_p50_ms: f64,
    idle_read_p99_ms: f64,
    churn_read_p50_ms: f64,
    churn_read_p99_ms: f64,
    refresh_p99_floor_ms: f64,
    refresh_p99_ratio: f64,
    write_p50_ms: f64,
    write_p99_ms: f64,
    idle_read_qps: f64,
    mixed_qps: f64,
    obs_overhead_pct: f64,
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    1e3 * sorted[rank].as_secs_f64()
}

/// One read sweep: per-column downstream queries, round-robin over the
/// origins, each timed individually. Returns the sorted latencies.
fn read_sweep(client: &mut Client, origins: &[String], reads: usize) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(reads);
    for i in 0..reads {
        let params =
            QueryParams { origins: vec![origins[i % origins.len()].clone()], ..Default::default() };
        let start = Instant::now();
        let reply = client.query(params).expect("query reply");
        latencies.push(start.elapsed());
        assert!(reply.ok(), "query failed: {}", reply.line);
    }
    latencies.sort();
    latencies
}

/// The obs-overhead phase: back-to-back request *pairs* under churn,
/// one request per pair with the metrics layer force-disabled and one
/// enabled, compared on the median of within-pair differences. One
/// churn writer runs across the whole phase so both modes see the same
/// background load. The server runs in-process, so the kill switch
/// reaches its record paths directly.
fn obs_overhead_pct(
    addr: std::net::SocketAddr,
    reader: &mut Client,
    origins: &[String],
    churn_source: &str,
    reads: usize,
) -> f64 {
    let pairs = reads.max(1000);
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let done = Arc::clone(&done);
        let churn_source = churn_source.to_string();
        thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let mut round = 0u64;
            while !done.load(Ordering::Relaxed) {
                let sql = if round.is_multiple_of(2) {
                    format!("CREATE VIEW bench_churn AS SELECT * FROM {churn_source};")
                } else {
                    "DROP VIEW IF EXISTS bench_churn;".to_string()
                };
                let reply = client.ingest(&sql).expect("churn write reply");
                assert!(reply.ok(), "churn write failed: {}", reply.line);
                round += 1;
            }
        })
    };
    // Each pair issues the *same* query twice back to back — once with
    // the kill switch off, once on — microseconds apart, so scheduler
    // preemption, churn bursts, and frequency drift hit both sides of a
    // pair near-identically and cancel in the difference. The in-pair
    // order alternates per pair to cancel warm-cache position bias, and
    // the median over all pairwise differences discards the pairs where
    // one side ate a preemption (those show up as huge one-sided
    // outliers a mean would absorb).
    let _ = read_sweep(reader, origins, pairs / 4); // warm-up
    let mut timed = |obs_on: bool, origin: &str| {
        lineagex_obs::set_enabled(obs_on);
        let params = QueryParams { origins: vec![origin.to_string()], ..Default::default() };
        let start = Instant::now();
        let reply = reader.query(params).expect("query reply");
        let elapsed = start.elapsed();
        assert!(reply.ok(), "query failed: {}", reply.line);
        elapsed.as_secs_f64()
    };
    let mut diffs_us = Vec::with_capacity(pairs);
    let mut off_us = Vec::with_capacity(pairs);
    for k in 0..pairs {
        let origin = &origins[k % origins.len()];
        let on_first = !k.is_multiple_of(2);
        let first = timed(on_first, origin);
        let second = timed(!on_first, origin);
        let (on, off) = if on_first { (first, second) } else { (second, first) };
        diffs_us.push(1e6 * (on - off));
        off_us.push(1e6 * off);
    }
    lineagex_obs::set_enabled(true);
    done.store(true, Ordering::Relaxed);
    writer.join().expect("writer panicked");
    diffs_us.sort_by(f64::total_cmp);
    off_us.sort_by(f64::total_cmp);
    let median_diff = diffs_us[diffs_us.len() / 2];
    let baseline = off_us[off_us.len() / 2];
    (median_diff / baseline * 100.0).max(0.0)
}

fn main() {
    let reads = reads_per_phase();
    let workload =
        generator::generate(&GeneratorConfig { views: VIEWS, ..GeneratorConfig::seeded(29) });
    let sql = workload.full_sql();

    // The same origin sweep query_bench uses: every column of every
    // relation, computed from a local batch run.
    let mut batch = lineagex(&sql).expect("workload extracts");
    let graph = batch.settled_graph().expect("batch settles");
    let origins: Vec<String> = graph
        .nodes
        .values()
        .flat_map(|n| n.columns.iter().map(|c| format!("{}.{}", n.name, c)))
        .collect();
    let churn_source = graph.nodes.keys().next().expect("workload has relations").clone();

    let server = Server::start("127.0.0.1:0", ServeOptions::default()).expect("server starts");
    let addr = server.local_addr();
    let mut seeder = Client::connect(addr).expect("seeder connects");
    let reply = seeder.ingest(&sql).expect("workload ingests");
    assert!(reply.ok(), "workload ingest failed: {}", reply.line);

    section("SERVE — workload");
    println!(
        "  {} statements ({} views), {} origin columns, server at {}",
        workload.statement_count(),
        VIEWS,
        origins.len(),
        addr
    );

    // Phase 1 — idle: the lock-free read path with a quiet engine.
    let mut reader = Client::connect(addr).expect("reader connects");
    let idle_start = Instant::now();
    let idle = read_sweep(&mut reader, &origins, reads);
    let idle_elapsed = idle_start.elapsed();

    // Phase 2 — churn: the same sweep while a writer thread funnels
    // create/drop churn through the engine; every write re-settles and
    // republishes the 200-view snapshot.
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let done = Arc::clone(&done);
        let churn_source = churn_source.clone();
        thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let mut write_latencies = Vec::new();
            let mut round = 0u64;
            while !done.load(Ordering::Relaxed) {
                let sql = if round.is_multiple_of(2) {
                    format!("CREATE VIEW bench_churn AS SELECT * FROM {churn_source};")
                } else {
                    "DROP VIEW IF EXISTS bench_churn;".to_string()
                };
                let start = Instant::now();
                let reply = client.ingest(&sql).expect("churn write reply");
                write_latencies.push(start.elapsed());
                assert!(reply.ok(), "churn write failed: {}", reply.line);
                round += 1;
            }
            write_latencies.sort();
            write_latencies
        })
    };
    let churn_start = Instant::now();
    let churn = read_sweep(&mut reader, &origins, reads);
    let churn_elapsed = churn_start.elapsed();
    done.store(true, Ordering::Relaxed);
    let write_latencies = writer.join().expect("writer panicked");

    // Phase 3 — obs overhead under the mixed workload.
    let obs_overhead_pct = obs_overhead_pct(addr, &mut reader, &origins, &churn_source, reads);
    server.shutdown();

    let idle_p99 = percentile(&idle, 99.0);
    let churn_p99 = percentile(&churn, 99.0);
    let ratio = churn_p99 / idle_p99.max(P99_FLOOR_MS);
    let report = Report {
        views: VIEWS,
        origin_columns: origins.len(),
        reads_per_phase: reads,
        churn_writes: write_latencies.len() as u64,
        idle_read_p50_ms: percentile(&idle, 50.0),
        idle_read_p99_ms: idle_p99,
        churn_read_p50_ms: percentile(&churn, 50.0),
        churn_read_p99_ms: churn_p99,
        refresh_p99_floor_ms: P99_FLOOR_MS,
        refresh_p99_ratio: ratio,
        write_p50_ms: percentile(&write_latencies, 50.0),
        write_p99_ms: percentile(&write_latencies, 99.0),
        idle_read_qps: reads as f64 / idle_elapsed.as_secs_f64(),
        mixed_qps: (reads + write_latencies.len()) as f64 / churn_elapsed.as_secs_f64(),
        obs_overhead_pct,
    };

    section("SERVE — read latency, idle vs active refresh");
    println!(
        "  idle   : p50 {:>7.3} ms   p99 {:>7.3} ms   ({:>8.0} reads/s)",
        report.idle_read_p50_ms, report.idle_read_p99_ms, report.idle_read_qps
    );
    println!(
        "  churn  : p50 {:>7.3} ms   p99 {:>7.3} ms   ({:>8.0} mixed ops/s)",
        report.churn_read_p50_ms, report.churn_read_p99_ms, report.mixed_qps
    );
    println!(
        "  writes : p50 {:>7.3} ms   p99 {:>7.3} ms   ({} churn writes)",
        report.write_p50_ms, report.write_p99_ms, report.churn_writes
    );
    println!(
        "  refresh p99 ratio: {:.2}x of max(idle p99, {} ms floor)",
        report.refresh_p99_ratio, report.refresh_p99_floor_ms
    );
    println!(
        "  obs overhead: {:.2}% on read latency under churn (median of paired differences)",
        report.obs_overhead_pct
    );

    // The headline serving contract: snapshot swaps keep readers off the
    // write path, so active refresh may not blow read tail latency past
    // 3x the idle tail.
    assert!(
        report.churn_writes > 0,
        "the writer never completed a churn write — the mixed phase measured nothing"
    );
    assert!(
        ratio <= 3.0,
        "read p99 under churn must stay within 3x of idle p99 \
         (idle {idle_p99:.3} ms, churn {churn_p99:.3} ms, ratio {ratio:.2}x)"
    );

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_serve.json", json + "\n").expect("can write BENCH_serve.json");
    println!("\n  wrote BENCH_serve.json");
}
