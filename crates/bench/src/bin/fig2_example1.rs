//! FIG2 — regenerate Figure 2: the Example 1 lineage graph as extracted
//! by LineageX vs a SQLLineage-like tool, annotated with the paper's
//! red-box errors and scored against the ground truth.

use lineagex_baseline::metrics::{graph_contribute_edges, score_edges};
use lineagex_baseline::SqlLineageLike;
use lineagex_bench::{join, pct, section, table2};
use lineagex_core::lineagex;
use lineagex_datasets::example1;

fn main() {
    let log = example1::full_log();
    let truth = example1::ground_truth();
    let expected_edges = truth.contribute_edges();

    section("FIG 2 — Example 1: correct lineage (LineageX)");
    let ours = lineagex(&log).expect("extraction succeeds");
    for id in &ours.graph.order {
        let q = &ours.graph.queries[id];
        println!("\n  {} <- tables {{{}}}", id, join(q.tables.iter()));
        for out in &q.outputs {
            println!("    {}.{} <- {{{}}}", id, out.name, join(out.ccon.iter()));
        }
        println!("    C_ref = {{{}}}", join(q.cref.iter()));
    }

    section("FIG 2 — Example 1: SQLLineage-like baseline");
    let baseline = SqlLineageLike::new().extract(&log).expect("baseline parses");
    for (id, q) in &baseline.queries {
        println!("\n  {} <- tables {{{}}}", id, join(q.tables.iter()));
        for out in &q.outputs {
            println!("    {}.{} <- {{{}}}", id, out.name, join(out.ccon.iter()));
        }
    }

    section("Paper's red-box errors, observed in the baseline");
    let webact = &baseline.queries["webact"];
    let extra: Vec<&str> = webact
        .output_names()
        .into_iter()
        .filter(|n| !["wcid", "wdate", "wpage", "wreg"].contains(n))
        .collect();
    println!("  1. webact gains {} erroneous extra columns: {:?}", extra.len(), extra);
    let info = &baseline.queries["info"];
    let has_star = info.outputs.iter().any(|o| o.name == "*");
    println!("  2. info contains a literal `webact.* -> info.*` entry: {has_star}");
    let info_cols = info.output_names().len();
    println!("  3. info exposes only {info_cols} entries vs 7 real columns (misses w.* expansion)");
    let edges_from_webinfo = baseline
        .queries
        .values()
        .flat_map(|q| q.outputs.iter())
        .flat_map(|o| o.ccon.iter())
        .filter(|s| s.table == "webinfo")
        .count();
    println!("  4. column edges out of webinfo in the baseline graph: {edges_from_webinfo}");

    section("Edge-level score vs ground truth (contribute edges)");
    let our_score = score_edges(&graph_contribute_edges(&ours.graph), &expected_edges);
    let base_score = score_edges(&graph_contribute_edges(&baseline), &expected_edges);
    table2(
        ("system", "precision / recall / F1"),
        &[
            (
                "LineageX".into(),
                format!(
                    "{} / {} / {}",
                    pct(our_score.precision()),
                    pct(our_score.recall()),
                    pct(our_score.f1())
                ),
            ),
            (
                "SQLLineage-like".into(),
                format!(
                    "{} / {} / {}",
                    pct(base_score.precision()),
                    pct(base_score.recall()),
                    pct(base_score.f1())
                ),
            ),
        ],
    );

    section("Table-level lineage (the easy granularity — all systems agree)");
    let our_tables: std::collections::BTreeSet<(String, String)> =
        ours.graph.table_edges().into_iter().collect();
    let naive_tables = lineagex_baseline::table_level::table_edges(&log).expect("parses");
    println!("  LineageX table edges = naive table edges: {}", our_tables == naive_tables);
    assert_eq!(our_tables, naive_tables);

    let failures = truth.diff(&ours.graph);
    assert!(failures.is_empty(), "LineageX must match Fig. 2 exactly:\n{}", failures.join("\n"));
    println!("\n✔ LineageX output matches the Fig. 2 ground truth exactly");
}
