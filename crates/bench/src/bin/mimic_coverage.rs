//! MIMIC — regenerate the §IV workload statistics and measure extraction
//! coverage/accuracy on the MIMIC-like dataset, with the SQLLineage-like
//! baseline for comparison.

use lineagex_baseline::metrics::{graph_contribute_edges, score_edges};
use lineagex_baseline::SqlLineageLike;
use lineagex_bench::{pct, section, table2};
use lineagex_catalog::Catalog;
use lineagex_core::lineagex;
use lineagex_datasets::mimic;
use std::time::Instant;

fn main() {
    section("MIMIC — workload statistics (paper §IV)");
    let workload = mimic::workload();
    let catalog = Catalog::from_ddl(&workload.ddl).expect("DDL parses");
    table2(
        ("statistic", "value (paper: 26 tables/300+ cols, 70 views/700+ cols)"),
        &[
            ("base tables".into(), catalog.base_table_count().to_string()),
            ("base-table columns".into(), catalog.base_table_column_count().to_string()),
            ("views".into(), workload.view_names.len().to_string()),
            ("view columns".into(), workload.view_column_count().to_string()),
        ],
    );
    assert_eq!(catalog.base_table_count(), 26);
    assert!(catalog.base_table_column_count() > 300);
    assert_eq!(workload.view_names.len(), 70);
    assert!(workload.view_column_count() >= 700);

    section("MIMIC — extraction coverage & accuracy");
    let sql = workload.full_sql();
    let start = Instant::now();
    let result = lineagex(&sql).expect("extraction succeeds");
    let elapsed = start.elapsed();
    let failures = workload.ground_truth.diff(&result.graph);
    let expected_edges = workload.ground_truth.contribute_edges();
    let our_score = score_edges(&graph_contribute_edges(&result.graph), &expected_edges);

    let baseline_graph = SqlLineageLike::new().extract(&sql).expect("baseline parses");
    let base_score = score_edges(&graph_contribute_edges(&baseline_graph), &expected_edges);

    table2(
        ("metric", "value"),
        &[
            ("views extracted".into(), format!("{} / 70", result.graph.queries.len())),
            ("ground-truth mismatches".into(), failures.len().to_string()),
            ("column-level edges".into(), result.graph.all_edges().len().to_string()),
            ("wall-clock".into(), format!("{elapsed:?}")),
            (
                "LineageX edge P/R/F1".into(),
                format!(
                    "{} / {} / {}",
                    pct(our_score.precision()),
                    pct(our_score.recall()),
                    pct(our_score.f1())
                ),
            ),
            (
                "baseline edge P/R/F1".into(),
                format!(
                    "{} / {} / {}",
                    pct(base_score.precision()),
                    pct(base_score.recall()),
                    pct(base_score.f1())
                ),
            ),
        ],
    );
    assert!(failures.is_empty(), "mismatches:\n{}", failures.join("\n"));
    assert!(our_score.f1() > base_score.f1(), "LineageX must beat the baseline");
    println!("\n✔ statistics, coverage, and accuracy reproduced");
}
