//! ABLA — ablation of the Table/View Auto-Inference stack (DESIGN.md's
//! called-out design choice): re-run Example 1 and reversed generated
//! workloads with the deferral stack disabled, measuring how much lineage
//! quality it buys.

use lineagex_baseline::metrics::{graph_contribute_edges, score_edges};
use lineagex_bench::{pct, section, table2};
use lineagex_core::LineageX;
use lineagex_datasets::{example1, generator, GeneratorConfig};

fn main() {
    section("ABLATION — auto-inference stack on/off (Example 1)");
    let log = example1::full_log();
    let truth = example1::ground_truth().contribute_edges();

    let with_stack = LineageX::new().run(&log).expect("extraction succeeds");
    let with_score = score_edges(&graph_contribute_edges(&with_stack.graph), &truth);

    let without_stack =
        LineageX::new().without_auto_inference().run(&log).expect("extraction succeeds");
    let without_score = score_edges(&graph_contribute_edges(&without_stack.graph), &truth);

    table2(
        ("configuration", "edge precision / recall / F1"),
        &[
            (
                "with stack (paper)".into(),
                format!(
                    "{} / {} / {}",
                    pct(with_score.precision()),
                    pct(with_score.recall()),
                    pct(with_score.f1())
                ),
            ),
            (
                "without stack".into(),
                format!(
                    "{} / {} / {}",
                    pct(without_score.precision()),
                    pct(without_score.recall()),
                    pct(without_score.f1())
                ),
            ),
        ],
    );
    println!(
        "\n  deferrals with stack: {:?}; without: {:?}",
        with_stack.deferrals, without_stack.deferrals
    );
    // Without the stack, `info` cannot expand w.* over the not-yet-seen
    // webact, and webact cannot resolve webinfo's columns.
    assert_eq!(with_score.f1(), 1.0);
    assert!(without_score.recall() < 1.0);

    section("ABLATION — reversed generated workloads (10 seeds × 15 views)");
    let mut rows = Vec::new();
    for &(label, reversed) in &[("log order", false), ("reversed order", true)] {
        let mut agg_with = (0usize, 0usize, 0usize);
        let mut agg_without = (0usize, 0usize, 0usize);
        for seed in 0..10u64 {
            let workload = generator::generate(&GeneratorConfig {
                views: 15,
                shuffle_statements: reversed,
                ..GeneratorConfig::seeded(seed)
            });
            let sql = workload.full_sql();
            let expected = workload.ground_truth.contribute_edges();
            let with = LineageX::new().run(&sql).expect("with stack");
            let s = score_edges(&graph_contribute_edges(&with.graph), &expected);
            agg_with.0 += s.true_positives;
            agg_with.1 += s.false_positives;
            agg_with.2 += s.false_negatives;
            let without =
                LineageX::new().without_auto_inference().run(&sql).expect("without stack");
            let s = score_edges(&graph_contribute_edges(&without.graph), &expected);
            agg_without.0 += s.true_positives;
            agg_without.1 += s.false_positives;
            agg_without.2 += s.false_negatives;
        }
        let f1 = |(tp, fp, fnn): (usize, usize, usize)| {
            let p = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
            let r = if tp + fnn == 0 { 1.0 } else { tp as f64 / (tp + fnn) as f64 };
            if p + r == 0.0 {
                0.0
            } else {
                2.0 * p * r / (p + r)
            }
        };
        rows.push((
            label.to_string(),
            format!("with stack F1 {}   without F1 {}", pct(f1(agg_with)), pct(f1(agg_without))),
        ));
    }
    table2(("statement order", "scores"), &rows);

    println!("\n✔ the stack is what makes extraction order-independent");
}
