//! FIG4 — regenerate Figure 4: the post-order DFS traversal of Q3's AST
//! with the temporary-variable states (`T`, `C_pos`, `C_ref`, `P`) after
//! each step, matching the paper's circled walkthrough ①–⑤.

use lineagex_bench::section;
use lineagex_core::{LineageX, Rule};
use lineagex_datasets::example1;

fn main() {
    section("FIG 4 — AST traversal of Q3 (CREATE VIEW webinfo ...)");
    println!("\nQ3 = CREATE VIEW webinfo AS");
    println!("     SELECT c.cid AS wcid, w.date AS wdate, w.page AS wpage, w.reg AS wreg");
    println!("     FROM customers c JOIN web w ON c.cid = w.cid");
    println!("     WHERE EXTRACT(YEAR FROM w.date) = 2022\n");

    let result = LineageX::new().trace().run(&example1::full_log()).expect("extraction succeeds");
    let trace = &result.traces["webinfo"];
    print!("{trace}");

    // The paper's expected step sequence:
    // ① scan customers (FROM rule)   ② scan web (FROM rule)
    // ③ JOIN (Other keywords)        ④ WHERE σ (Other keywords)
    // ⑤ SELECT π (SELECT rule)
    let rules = trace.rules();
    let expected = [
        Rule::FromTable,
        Rule::FromTable,
        Rule::OtherKeywords, // JOIN
        Rule::OtherKeywords, // WHERE
        Rule::Select,
    ];
    assert_eq!(rules, expected, "traversal must follow the paper's ①–⑤ order, got {rules:?}");

    // Step ③/④ must have added the join and filter columns to C_ref.
    let cref = &trace.steps.last().unwrap().state.cref;
    for col in ["customers.cid", "web.cid", "web.date"] {
        assert!(cref.contains(&col.to_string()), "C_ref missing {col}: {cref:?}");
    }
    // Step ⑤'s projection P must be the four output columns.
    assert_eq!(
        trace.steps.last().unwrap().state.projection,
        vec!["wcid", "wdate", "wpage", "wreg"]
    );

    println!("\n✔ traversal order and variable states match Fig. 4 (steps ①–⑤)");
}
