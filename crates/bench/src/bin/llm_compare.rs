//! LLM — regenerate the §IV GPT-4o comparison: an LLM-style analyst finds
//! the contributing columns impacted by a change but misses the
//! referenced-only ones, which LineageX surfaces.

use lineagex_baseline::llm_sim::llm_style_impact;
use lineagex_bench::{join, section};
use lineagex_core::{lineagex, EdgeKind, SourceColumn};
use lineagex_datasets::example1;

fn main() {
    let result = lineagex(&example1::full_log()).expect("extraction succeeds");
    let origin = SourceColumn::new("web", "page");

    section("LLM-style impact analysis of web.page (contribution only)");
    let llm = llm_style_impact(&result.graph, &origin);
    println!("  found: {}", join(llm.iter()));

    section("LineageX impact analysis (contribution + reference)");
    let full = result.impact_of("web", "page");
    for hit in full.impacted() {
        println!("  {} ({:?})", hit.column, hit.kind);
    }

    section("What the LLM-style analysis misses");
    let missed: Vec<&SourceColumn> =
        full.impacted().iter().filter(|c| !llm.contains(&c.column)).map(|c| &c.column).collect();
    println!("  {}", join(missed.iter()));

    // Paper: GPT-4o finds the wpage chain (webinfo/webact/info) but not
    // the referenced columns such as webact.wcid in the JOIN condition.
    for col in [("webinfo", "wpage"), ("webact", "wpage"), ("info", "wpage")] {
        assert!(
            llm.contains(&SourceColumn::new(col.0, col.1)),
            "LLM-style must find the contributing chain {col:?}"
        );
    }
    assert!(
        !llm.contains(&SourceColumn::new("webact", "wcid")),
        "LLM-style must miss referenced-only webact.wcid"
    );
    assert!(full
        .impacted()
        .iter()
        .any(|c| c.column == SourceColumn::new("webact", "wcid") && c.kind == EdgeKind::Reference));
    println!("\n✔ reproduces the paper's GPT-4o observation");
}
