//! ENGINE — the session engine's perf story on the scaling workload:
//! one-shot batch vs engine cold batch vs parallel re-extraction vs
//! incremental re-ingest of a single redefined view.
//!
//! Writes `BENCH_engine.json` into the working directory so the numbers
//! land in the repo's perf trajectory. `scripts/check_bench.sh` re-runs
//! this binary (with `BENCH_QUICK=1` for fewer repetitions) to gate the
//! lenient overhead and the incremental speedup in CI.

use lineagex_bench::{section, table2};
use lineagex_core::LineageX;
use lineagex_datasets::{generator, GeneratorConfig};
use lineagex_engine::{Engine, EngineOptions};
use lineagex_sqlparse::ast::{Expr, Literal, Statement};
use serde::Serialize;
use std::time::{Duration, Instant};

const VIEWS: usize = 200;

/// Repetition counts: best-of-5 batch runs and 30 incremental re-ingests
/// normally; 2 and 10 under `BENCH_QUICK=1` (the CI regression gate's
/// quick mode — same 200-view workload, less smoothing).
fn rep_counts() -> (usize, usize) {
    if std::env::var_os("BENCH_QUICK").is_some() {
        (2, 10)
    } else {
        (5, 30)
    }
}

#[derive(Serialize)]
struct Report {
    views: usize,
    statements: usize,
    jobs: usize,
    one_shot_qps: f64,
    one_shot_lenient_qps: f64,
    lenient_overhead_pct: f64,
    engine_cold_sequential_qps: f64,
    reextract_sequential_qps: f64,
    reextract_parallel_qps: f64,
    parallel_speedup: f64,
    incremental: IncrementalReport,
}

#[derive(Serialize)]
struct IncrementalReport {
    redefined_view: String,
    cone_size: usize,
    full_refresh_ms: f64,
    incremental_refresh_ms: f64,
    speedup: f64,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn qps(views: usize, elapsed: Duration) -> f64 {
    views as f64 / elapsed.as_secs_f64()
}

fn ms(elapsed: Duration) -> f64 {
    1e3 * elapsed.as_secs_f64()
}

/// The redefinition text for a view: the same statement with a different
/// `LIMIT`, so the engine sees changed content but identical lineage.
fn redefinition(original: &str, limit: u64) -> String {
    let mut stmt = lineagex_sqlparse::parse_statement(original).expect("workload SQL parses");
    if let Statement::CreateView { ref mut query, .. } = stmt {
        query.limit = Some(Expr::Literal(Literal::Number(limit.to_string())));
    }
    stmt.to_string()
}

fn main() {
    let (batch_reps, incremental_reps) = rep_counts();
    let workload =
        generator::generate(&GeneratorConfig { views: VIEWS, ..GeneratorConfig::seeded(29) });
    let sql = workload.full_sql();
    let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    section("ENGINE — workload");
    println!(
        "  {} statements ({} views), scheduler jobs = {jobs}",
        workload.statement_count(),
        VIEWS
    );

    // 1. One-shot batch: the paper's pipeline over the whole log — and
    // the same run in lenient mode, which must stay within 5% on a clean
    // log (resilience may not tax the happy path).
    let one_shot = best_of(batch_reps, || LineageX::new().run(&sql).unwrap());
    let one_shot_lenient = best_of(batch_reps, || LineageX::new().lenient().run(&sql).unwrap());

    // 2. Engine cold batch, sequential: ingest (parse) + refresh (extract).
    let cold_seq = best_of(batch_reps, || {
        let mut engine = Engine::new();
        engine.ingest(&sql).unwrap();
        engine.refresh().unwrap()
    });

    // 3/4. Pure re-extraction (no parsing), sequential vs parallel: the
    // scheduler's own cost on an already-loaded session.
    let mut seq_engine = Engine::new();
    seq_engine.ingest(&sql).unwrap();
    seq_engine.refresh().unwrap();
    let reextract_seq = best_of(batch_reps, || {
        seq_engine.invalidate_all();
        seq_engine.refresh().unwrap()
    });
    let mut par_engine = Engine::with_options(EngineOptions { jobs, ..EngineOptions::default() });
    par_engine.ingest(&sql).unwrap();
    par_engine.refresh().unwrap();
    let reextract_par = best_of(batch_reps, || {
        par_engine.invalidate_all();
        par_engine.refresh().unwrap()
    });

    // 5. Incremental re-ingest: redefine a view with a representative
    // downstream cone (the largest at most a fifth of the log — a hub,
    // but not one that drags in everything), alternating two texts so
    // every ingest is a real redefinition, and refresh after each.
    let (target, cone_size) = workload
        .view_names
        .iter()
        .map(|name| (name.clone(), seq_engine.downstream_cone(name).len()))
        .filter(|(_, cone)| *cone <= VIEWS / 5)
        .max_by_key(|(_, cone)| *cone)
        .expect("some view has a small cone");
    let original = workload
        .view_statements
        .iter()
        .find(|s| s.contains(&format!("CREATE VIEW {target} ")))
        .expect("target is a workload view");
    let texts = [redefinition(original, 1_000_001), redefinition(original, 1_000_002)];
    let incremental_start = Instant::now();
    for i in 0..incremental_reps {
        seq_engine.ingest(&texts[i % 2]).unwrap();
        let extracted = seq_engine.refresh().unwrap();
        assert_eq!(extracted, cone_size, "cone invalidation must be exact");
    }
    let incremental = incremental_start.elapsed() / incremental_reps as u32;

    let report = Report {
        views: VIEWS,
        statements: workload.statement_count(),
        jobs,
        one_shot_qps: qps(VIEWS, one_shot),
        one_shot_lenient_qps: qps(VIEWS, one_shot_lenient),
        lenient_overhead_pct: 100.0
            * (one_shot_lenient.as_secs_f64() / one_shot.as_secs_f64() - 1.0),
        engine_cold_sequential_qps: qps(VIEWS, cold_seq),
        reextract_sequential_qps: qps(VIEWS, reextract_seq),
        reextract_parallel_qps: qps(VIEWS, reextract_par),
        parallel_speedup: reextract_seq.as_secs_f64() / reextract_par.as_secs_f64(),
        incremental: IncrementalReport {
            redefined_view: target.clone(),
            cone_size,
            full_refresh_ms: ms(reextract_seq),
            incremental_refresh_ms: ms(incremental),
            speedup: reextract_seq.as_secs_f64() / incremental.as_secs_f64(),
        },
    };

    section("ENGINE — results (best-of runs)");
    table2(
        ("mode", "throughput"),
        &[
            (
                "one-shot batch (LineageX::run)".into(),
                format!("{:.0} views/s", report.one_shot_qps),
            ),
            (
                "one-shot batch, lenient".into(),
                format!(
                    "{:.0} views/s ({:+.1}% vs strict)",
                    report.one_shot_lenient_qps, report.lenient_overhead_pct
                ),
            ),
            (
                "engine cold batch, jobs=1".into(),
                format!("{:.0} views/s", report.engine_cold_sequential_qps),
            ),
            (
                "re-extract all, jobs=1".into(),
                format!("{:.0} views/s", report.reextract_sequential_qps),
            ),
            (
                format!("re-extract all, jobs={jobs}"),
                format!(
                    "{:.0} views/s ({:.2}x vs sequential)",
                    report.reextract_parallel_qps, report.parallel_speedup
                ),
            ),
            (
                format!("re-ingest {target} (cone {cone_size})"),
                format!(
                    "{:.2} ms/refresh vs {:.2} ms full ({:.1}x)",
                    report.incremental.incremental_refresh_ms,
                    report.incremental.full_refresh_ms,
                    report.incremental.speedup
                ),
            ),
        ],
    );
    if jobs == 1 {
        println!("\n  note: this machine exposes 1 CPU; the parallel scheduler can only");
        println!("  win wall-clock with jobs > 1 on a multi-core host.");
    }
    assert!(
        report.incremental.speedup > 1.0,
        "incremental re-ingest must beat re-extracting the whole log"
    );
    assert!(
        report.lenient_overhead_pct < 5.0,
        "lenient mode must stay within 5% of strict on a clean log \
         (measured {:+.1}%)",
        report.lenient_overhead_pct
    );

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_engine.json", json + "\n").expect("can write BENCH_engine.json");
    println!("\n  wrote BENCH_engine.json");
}
