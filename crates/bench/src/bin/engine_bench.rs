//! ENGINE — the session engine's perf story on the scaling workload:
//! one-shot batch vs engine cold batch vs parallel re-extraction vs
//! incremental re-ingest of a single redefined view.
//!
//! Writes `BENCH_engine.json` into the working directory so the numbers
//! land in the repo's perf trajectory. `scripts/check_bench.sh` re-runs
//! this binary (with `BENCH_QUICK=1` for fewer repetitions) to gate the
//! lenient overhead and the incremental speedup in CI.

use lineagex_bench::{section, table2};
use lineagex_core::{DialectKind, LineageX};
use lineagex_datasets::{generate_scaled, generator, GeneratorConfig, ScaleConfig};
use lineagex_engine::{Engine, EngineOptions};
use lineagex_sqlparse::ast::{Expr, Literal, Statement};
use serde::Serialize;
use std::time::{Duration, Instant};

const VIEWS: usize = 200;
const SCALE_VIEWS: usize = 10_000;
const SCALE_JOBS: usize = 4;

/// Repetition counts: best-of-5 batch runs, 30 incremental re-ingests,
/// and best-of-3 scale-tier runs normally; 2, 10, and 1 under
/// `BENCH_QUICK=1` (the CI regression gate's quick mode — same
/// workloads, less smoothing).
fn rep_counts() -> (usize, usize, usize) {
    if std::env::var_os("BENCH_QUICK").is_some() {
        (2, 10, 1)
    } else {
        (5, 30, 3)
    }
}

#[derive(Serialize)]
struct Report {
    views: usize,
    statements: usize,
    jobs: usize,
    one_shot_qps: f64,
    one_shot_lenient_qps: f64,
    lenient_overhead_pct: f64,
    dialect_overhead_pct: f64,
    engine_cold_sequential_qps: f64,
    reextract_sequential_qps: f64,
    reextract_parallel_qps: f64,
    parallel_speedup: f64,
    incremental: IncrementalReport,
    scale: ScaleReport,
}

#[derive(Serialize)]
struct IncrementalReport {
    redefined_view: String,
    cone_size: usize,
    full_refresh_ms: f64,
    incremental_refresh_ms: f64,
    speedup: f64,
}

/// The large-catalog tier. Key names carry a `_10k` suffix so
/// `scripts/check_bench.sh`'s flat first-match JSON scraping can never
/// confuse them with the 200-view tier above.
#[derive(Serialize)]
struct ScaleReport {
    views_10k: usize,
    components_10k: usize,
    jobs_10k: usize,
    sharded_extract_ms_10k: f64,
    levelled_extract_ms_10k: f64,
    sharded_speedup_10k: f64,
    refresh_cone_10k: usize,
    refresh_ms_10k: f64,
    full_reextract_ms_10k: f64,
    refresh_speedup_10k: f64,
    snapshot_bytes_10k: u64,
    snapshot_save_ms_10k: f64,
    snapshot_load_ms_10k: f64,
    cold_start_ms_10k: f64,
    cold_start_speedup_10k: f64,
    peak_graph_bytes_10k: i64,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn time_once<R>(f: &mut impl FnMut() -> R) -> Duration {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed()
}

/// Measure two workloads as interleaved back-to-back pairs, alternating
/// the in-pair order every repetition so neither side systematically
/// inherits a warm cache or a thermal penalty. Returns the best time of
/// each side plus the difference of the bests (b − a, seconds) as the
/// estimator of b's true overhead over a: scheduler and allocator noise
/// on a shared host is strictly additive, so each side's minimum is its
/// cleanest observation, and interleaving keeps slow machine-wide drift
/// from favouring whichever side ran later (the old two-block scheme
/// showed that drift as a spurious negative overhead; a small-sample
/// median of in-pair differences proved noisier still).
fn paired<A, B>(
    pairs: usize,
    mut a: impl FnMut() -> A,
    mut b: impl FnMut() -> B,
) -> (Duration, Duration, f64) {
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    for i in 0..pairs {
        let (ta, tb) = if i % 2 == 0 {
            let ta = time_once(&mut a);
            let tb = time_once(&mut b);
            (ta, tb)
        } else {
            let tb = time_once(&mut b);
            let ta = time_once(&mut a);
            (ta, tb)
        };
        best_a = best_a.min(ta);
        best_b = best_b.min(tb);
    }
    (best_a, best_b, best_b.as_secs_f64() - best_a.as_secs_f64())
}

fn qps(views: usize, elapsed: Duration) -> f64 {
    views as f64 / elapsed.as_secs_f64()
}

fn ms(elapsed: Duration) -> f64 {
    1e3 * elapsed.as_secs_f64()
}

/// The redefinition text for a view: the same statement with a different
/// `LIMIT`, so the engine sees changed content but identical lineage.
fn redefinition(original: &str, limit: u64) -> String {
    let mut stmt = lineagex_sqlparse::parse_statement(original).expect("workload SQL parses");
    if let Statement::CreateView { ref mut query, .. } = stmt {
        query.limit = Some(Expr::Literal(Literal::Number(limit.to_string())));
    }
    stmt.to_string()
}

fn main() {
    let (batch_reps, incremental_reps, scale_reps) = rep_counts();
    let workload =
        generator::generate(&GeneratorConfig { views: VIEWS, ..GeneratorConfig::seeded(29) });
    let sql = workload.full_sql();
    let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    section("ENGINE — workload");
    println!(
        "  {} statements ({} views), scheduler jobs = {jobs}",
        workload.statement_count(),
        VIEWS
    );

    // 1. One-shot batch: the paper's pipeline over the whole log — and
    // the same run in lenient mode, which must stay within 5% on a clean
    // log (resilience may not tax the happy path). Strict and lenient
    // run as interleaved pairs and the overhead is the median in-pair
    // difference, clamped at 0: lenient cannot meaningfully be *faster*
    // than strict, so a negative median is measurement noise. The pair
    // count is floored at 16 even in quick mode — a single run is a few
    // milliseconds, and a small-sample median is noisy enough on a busy
    // single-core host to trip the 5% assertion below spuriously.
    let (one_shot, one_shot_lenient, lenient_diff) = paired(
        (2 * batch_reps).max(16),
        || LineageX::new().run(&sql).unwrap(),
        || LineageX::new().lenient().run(&sql).unwrap(),
    );
    let lenient_overhead_pct = (100.0 * lenient_diff / one_shot.as_secs_f64()).max(0.0);

    // 1b. The dialect front end on the same log: every dialect flows
    // through the shared lexer/parser with per-token feature checks, so
    // selecting a non-default dialect on pure-ANSI input measures the
    // dispatch cost of the whole subsystem. Snowflake is the busiest
    // front end (extra comment style + QUALIFY), so it bounds the rest.
    // Same paired estimator as lenient, gated < 3%.
    let (dialect_base, _dialect_run, dialect_diff) = paired(
        (2 * batch_reps).max(16),
        || LineageX::new().run(&sql).unwrap(),
        || LineageX::new().dialect(std::hint::black_box(DialectKind::Snowflake)).run(&sql).unwrap(),
    );
    let dialect_overhead_pct = (100.0 * dialect_diff / dialect_base.as_secs_f64()).max(0.0);

    // 2. Engine cold batch, sequential: ingest (parse) + refresh (extract).
    let cold_seq = best_of(batch_reps, || {
        let mut engine = Engine::new();
        engine.ingest(&sql).unwrap();
        engine.refresh().unwrap()
    });

    // 3/4. Pure re-extraction (no parsing), sequential vs parallel: the
    // scheduler's own cost on an already-loaded session.
    let mut seq_engine = Engine::new();
    seq_engine.ingest(&sql).unwrap();
    seq_engine.refresh().unwrap();
    let reextract_seq = best_of(batch_reps, || {
        seq_engine.invalidate_all();
        seq_engine.refresh().unwrap()
    });
    let mut par_engine = Engine::with_options(EngineOptions { jobs, ..EngineOptions::default() });
    par_engine.ingest(&sql).unwrap();
    par_engine.refresh().unwrap();
    let reextract_par = best_of(batch_reps, || {
        par_engine.invalidate_all();
        par_engine.refresh().unwrap()
    });

    // 5. Incremental re-ingest: redefine a view with a representative
    // downstream cone (the largest at most a fifth of the log — a hub,
    // but not one that drags in everything), alternating two texts so
    // every ingest is a real redefinition, and refresh after each.
    let (target, cone_size) = workload
        .view_names
        .iter()
        .map(|name| (name.clone(), seq_engine.downstream_cone(name).len()))
        .filter(|(_, cone)| *cone <= VIEWS / 5)
        .max_by_key(|(_, cone)| *cone)
        .expect("some view has a small cone");
    let original = workload
        .view_statements
        .iter()
        .find(|s| s.contains(&format!("CREATE VIEW {target} ")))
        .expect("target is a workload view");
    let texts = [redefinition(original, 1_000_001), redefinition(original, 1_000_002)];
    let incremental_start = Instant::now();
    for i in 0..incremental_reps {
        seq_engine.ingest(&texts[i % 2]).unwrap();
        let extracted = seq_engine.refresh().unwrap();
        assert_eq!(extracted, cone_size, "cone invalidation must be exact");
    }
    let incremental = incremental_start.elapsed() / incremental_reps as u32;

    // 6. The large-catalog tier: 10k views as independent diamond-stack
    // components, extracted with the component-sharded scheduler vs the
    // flat level scheduler, then churned (dirty-cone refresh vs full
    // re-extraction) and persisted (binary snapshot cold-start vs
    // re-extracting from SQL).
    let scale = run_scale_tier(scale_reps);

    let report = Report {
        views: VIEWS,
        statements: workload.statement_count(),
        jobs,
        one_shot_qps: qps(VIEWS, one_shot),
        one_shot_lenient_qps: qps(VIEWS, one_shot_lenient),
        lenient_overhead_pct,
        dialect_overhead_pct,
        engine_cold_sequential_qps: qps(VIEWS, cold_seq),
        reextract_sequential_qps: qps(VIEWS, reextract_seq),
        reextract_parallel_qps: qps(VIEWS, reextract_par),
        parallel_speedup: reextract_seq.as_secs_f64() / reextract_par.as_secs_f64(),
        incremental: IncrementalReport {
            redefined_view: target.clone(),
            cone_size,
            full_refresh_ms: ms(reextract_seq),
            incremental_refresh_ms: ms(incremental),
            speedup: reextract_seq.as_secs_f64() / incremental.as_secs_f64(),
        },
        scale,
    };

    section("ENGINE — results (best-of runs)");
    table2(
        ("mode", "throughput"),
        &[
            (
                "one-shot batch (LineageX::run)".into(),
                format!("{:.0} views/s", report.one_shot_qps),
            ),
            (
                "one-shot batch, lenient".into(),
                format!(
                    "{:.0} views/s ({:+.1}% vs strict)",
                    report.one_shot_lenient_qps, report.lenient_overhead_pct
                ),
            ),
            (
                "one-shot batch, snowflake front end".into(),
                format!("{:+.1}% vs default dialect", report.dialect_overhead_pct),
            ),
            (
                "engine cold batch, jobs=1".into(),
                format!("{:.0} views/s", report.engine_cold_sequential_qps),
            ),
            (
                "re-extract all, jobs=1".into(),
                format!("{:.0} views/s", report.reextract_sequential_qps),
            ),
            (
                format!("re-extract all, jobs={jobs}"),
                format!(
                    "{:.0} views/s ({:.2}x vs sequential)",
                    report.reextract_parallel_qps, report.parallel_speedup
                ),
            ),
            (
                format!("re-ingest {target} (cone {cone_size})"),
                format!(
                    "{:.2} ms/refresh vs {:.2} ms full ({:.1}x)",
                    report.incremental.incremental_refresh_ms,
                    report.incremental.full_refresh_ms,
                    report.incremental.speedup
                ),
            ),
        ],
    );
    if jobs == 1 {
        println!("\n  note: this machine exposes 1 CPU; the parallel scheduler can only");
        println!("  win wall-clock with jobs > 1 on a multi-core host.");
    }
    assert!(
        report.incremental.speedup > 1.0,
        "incremental re-ingest must beat re-extracting the whole log"
    );
    assert!(
        report.lenient_overhead_pct < 5.0,
        "lenient mode must stay within 5% of strict on a clean log \
         (measured {:+.1}%)",
        report.lenient_overhead_pct
    );
    assert!(
        report.dialect_overhead_pct < 3.0,
        "the dialect front end must stay within 3% of the default path \
         on ANSI input (measured {:+.1}%)",
        report.dialect_overhead_pct
    );

    section("ENGINE — 10k-view scale tier");
    table2(
        ("phase", "result"),
        &[
            (
                format!("catalog ({} comps, jobs={})", report.scale.components_10k, SCALE_JOBS),
                format!("{} views", report.scale.views_10k),
            ),
            (
                "re-extract all, component-sharded".into(),
                format!("{:.0} ms", report.scale.sharded_extract_ms_10k),
            ),
            (
                "re-extract all, flat levels".into(),
                format!(
                    "{:.0} ms ({:.2}x slower than sharded)",
                    report.scale.levelled_extract_ms_10k, report.scale.sharded_speedup_10k
                ),
            ),
            (
                format!("dirty-cone refresh (cone {})", report.scale.refresh_cone_10k),
                format!(
                    "{:.2} ms vs {:.0} ms full ({:.0}x)",
                    report.scale.refresh_ms_10k,
                    report.scale.full_reextract_ms_10k,
                    report.scale.refresh_speedup_10k
                ),
            ),
            (
                "snapshot save / load".into(),
                format!(
                    "{:.1} ms / {:.1} ms ({} bytes)",
                    report.scale.snapshot_save_ms_10k,
                    report.scale.snapshot_load_ms_10k,
                    report.scale.snapshot_bytes_10k
                ),
            ),
            (
                "cold start: snapshot vs SQL".into(),
                format!(
                    "{:.1} ms vs {:.0} ms ({:.0}x)",
                    report.scale.snapshot_load_ms_10k,
                    report.scale.cold_start_ms_10k,
                    report.scale.cold_start_speedup_10k
                ),
            ),
            ("peak graph + index bytes".into(), format!("{}", report.scale.peak_graph_bytes_10k)),
        ],
    );

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_engine.json", json + "\n").expect("can write BENCH_engine.json");
    println!("\n  wrote BENCH_engine.json");
}

/// Measure the large-catalog tier and return its report block.
fn run_scale_tier(reps: usize) -> ScaleReport {
    let config = ScaleConfig::with_views(31, SCALE_VIEWS);
    let workload = generate_scaled(&config);
    let sql = workload.full_sql();
    let options = |shard: bool| EngineOptions {
        jobs: SCALE_JOBS,
        shard_components: shard,
        ..EngineOptions::default()
    };

    // Component-sharded vs flat-levelled re-extraction of the full
    // catalog, same jobs, same session contents. Interleaved pairs for
    // the same reason as the lenient comparison above: each side takes
    // hundreds of milliseconds, so measuring them in two separate
    // blocks lets machine-wide drift masquerade as a scheduling effect.
    let mut sharded = Engine::with_options(options(true));
    sharded.ingest(&sql).unwrap();
    sharded.refresh().unwrap();
    let mut levelled = Engine::with_options(options(false));
    levelled.ingest(&sql).unwrap();
    levelled.refresh().unwrap();
    let (sharded_extract, levelled_extract, _) = paired(
        reps.max(2),
        || {
            sharded.invalidate_all();
            sharded.refresh().unwrap()
        },
        || {
            levelled.invalidate_all();
            levelled.refresh().unwrap()
        },
    );
    drop(levelled);

    // Dirty-cone refresh: redefine the deepest view (every churn step is
    // a real redefinition), so refresh re-extracts exactly its cone.
    let churn_reps = (10 * reps).max(10);
    let cone = workload.deep_cone.len();
    let churn_start = Instant::now();
    for i in 0..churn_reps {
        sharded.ingest(&workload.churn_statement(i)).unwrap();
        let extracted = sharded.refresh().unwrap();
        assert_eq!(extracted, cone, "churn must dirty exactly the deep cone");
    }
    let refresh = churn_start.elapsed() / churn_reps as u32;

    // Snapshot persistence: save the settled session, then cold-start
    // from the file vs re-ingesting + re-extracting the SQL. Publishing
    // is part of both paths — a server is not up until it can answer.
    let snapshot_path = std::env::temp_dir().join("lineagex_engine_bench_10k.lxsn");
    let save = best_of(reps, || sharded.save_snapshot(&snapshot_path).unwrap());
    let snapshot_bytes = std::fs::metadata(&snapshot_path).unwrap().len();
    sharded.publish().unwrap();
    let cold_start = best_of(reps, || {
        let mut engine = Engine::with_options(options(true));
        engine.ingest(&sql).unwrap();
        engine.publish().unwrap()
    });
    let load = best_of(reps, || {
        let mut engine = Engine::load_snapshot(&snapshot_path, options(true)).unwrap();
        engine.publish().unwrap()
    });
    std::fs::remove_file(&snapshot_path).ok();

    let peak_graph_bytes = lineagex_obs::registry().gauge("engine.peak_graph_bytes").get();

    ScaleReport {
        views_10k: config.views(),
        components_10k: config.components,
        jobs_10k: SCALE_JOBS,
        sharded_extract_ms_10k: ms(sharded_extract),
        levelled_extract_ms_10k: ms(levelled_extract),
        sharded_speedup_10k: levelled_extract.as_secs_f64() / sharded_extract.as_secs_f64(),
        refresh_cone_10k: cone,
        refresh_ms_10k: ms(refresh),
        full_reextract_ms_10k: ms(sharded_extract),
        refresh_speedup_10k: sharded_extract.as_secs_f64() / refresh.as_secs_f64(),
        snapshot_bytes_10k: snapshot_bytes,
        snapshot_save_ms_10k: ms(save),
        snapshot_load_ms_10k: ms(load),
        cold_start_ms_10k: ms(cold_start),
        cold_start_speedup_10k: cold_start.as_secs_f64() / load.as_secs_f64(),
        peak_graph_bytes_10k: peak_graph_bytes,
    }
}
