//! TAB1 — regenerate Table I: one focused scenario per keyword rule,
//! showing the rule firing and the resulting lineage-state updates.

use lineagex_bench::{join, section};
use lineagex_core::{LineageX, Rule};

struct Scenario {
    rule: &'static str,
    explanation: &'static str,
    sql: &'static str,
    /// The Table I rule expected to fire during extraction of the view.
    expect_rule: Rule,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        rule: "SELECT",
        explanation: "resolve C_con for each projection",
        sql: "CREATE TABLE t (a int, b int);
              CREATE VIEW v AS SELECT a + b AS s FROM t;",
        expect_rule: Rule::Select,
    },
    Scenario {
        rule: "FROM (Table/View)",
        explanation: "add to T, columns to C_pos",
        sql: "CREATE TABLE t (a int);
              CREATE VIEW v AS SELECT a FROM t;",
        expect_rule: Rule::FromTable,
    },
    Scenario {
        rule: "FROM (CTE/Subquery)",
        explanation: "find in M_CTE / recurse into the subquery",
        sql: "CREATE TABLE t (a int);
              CREATE VIEW v AS WITH c AS (SELECT a FROM t) SELECT a FROM c;",
        expect_rule: Rule::FromCteOrSubquery,
    },
    Scenario {
        rule: "WITH/Subquery",
        explanation: "stash intermediate lineage into M_CTE",
        sql: "CREATE TABLE t (a int);
              CREATE VIEW v AS WITH c AS (SELECT a FROM t) SELECT a FROM c;",
        expect_rule: Rule::WithSubquery,
    },
    Scenario {
        rule: "Set Operation",
        explanation: "branch projections into C_ref, repeated per leaf",
        sql: "CREATE TABLE t (a int); CREATE TABLE u (b int);
              CREATE VIEW v AS SELECT a FROM t UNION SELECT b FROM u;",
        expect_rule: Rule::SetOperation,
    },
    Scenario {
        rule: "Other Keywords",
        explanation: "predicate/grouping columns into C_ref",
        sql: "CREATE TABLE t (a int, b int);
              CREATE VIEW v AS SELECT a FROM t WHERE b > 0;",
        expect_rule: Rule::OtherKeywords,
    },
];

fn main() {
    section("TABLE I — keyword rules, one scenario each");
    let mut all_ok = true;
    for scenario in SCENARIOS {
        println!("\n--- {} ---", scenario.rule);
        println!("    ({})", scenario.explanation);
        println!("    SQL: {}", scenario.sql.trim().replace('\n', "\n         "));
        let result = LineageX::new().trace().run(scenario.sql).expect("extraction succeeds");
        let trace = &result.traces["v"];
        let fired = trace.rules().contains(&scenario.expect_rule);
        all_ok &= fired;
        println!("    rules fired: [{}]", join(trace.rules().iter().map(|r| r.table1_name())));
        println!("    expected rule fired: {}", if fired { "✔" } else { "✘" });
        let v = &result.graph.queries["v"];
        for out in &v.outputs {
            println!("    C_con({}) = {{{}}}", out.name, join(out.ccon.iter()));
        }
        println!("    C_ref = {{{}}}", join(v.cref.iter()));
    }
    assert!(all_ok, "every Table I rule must fire in its scenario");
    println!("\n✔ all six Table I rules reproduced");
}
