//! EXPL — "when the database connection is available" (§III): run the
//! EXPLAIN-based extraction against the simulated database, show the
//! create-views-first stack firing on missing dependencies, and verify
//! the static and connected paths agree.

use lineagex_bench::section;
use lineagex_catalog::{Catalog, SimulatedDatabase};
use lineagex_core::{lineagex, ExplainPathExtractor, QueryDict};
use lineagex_datasets::{example1, mimic};

fn main() {
    section("EXPLAIN path on Example 1");
    let db = SimulatedDatabase::with_catalog(Catalog::from_ddl(example1::DDL).expect("DDL parses"));
    // Show what the oracle produces for Q3.
    let bound = db
        .explain(
            "SELECT c.cid AS wcid, w.date AS wdate, w.page AS wpage, w.reg AS wreg
             FROM customers c JOIN web w ON c.cid = w.cid
             WHERE EXTRACT(YEAR FROM w.date) = 2022",
        )
        .expect("explain succeeds");
    println!("simulated EXPLAIN of Q3:\n{}", bound.plan);

    let qd = QueryDict::from_sql(example1::QUERIES).expect("queries parse");
    let connected = ExplainPathExtractor::new(qd, db).run().expect("connected path succeeds");
    println!("create-first deferrals: {:?}", connected.deferrals);
    println!("processing order:       {:?}", connected.graph.order);
    assert_eq!(connected.graph.order, vec!["webinfo", "webact", "info"]);

    section("Static vs EXPLAIN agreement (Example 1)");
    let static_result = lineagex(&example1::full_log()).expect("static path succeeds");
    compare(&static_result.graph, &connected.graph);

    section("Static vs EXPLAIN agreement (MIMIC-like, 70 views)");
    let workload = mimic::workload();
    let static_mimic = lineagex(&workload.full_sql()).expect("static path succeeds");
    let qd = QueryDict::from_sql(
        &workload.view_statements.iter().map(|s| format!("{s};")).collect::<String>(),
    )
    .expect("views parse");
    let db = SimulatedDatabase::with_catalog(Catalog::from_ddl(&workload.ddl).unwrap());
    let connected_mimic = ExplainPathExtractor::new(qd, db).run().expect("connected path");
    compare(&static_mimic.graph, &connected_mimic.graph);

    println!("\n✔ the static and EXPLAIN-based paths agree on catalog-complete workloads");
}

fn compare(a: &lineagex_core::LineageGraph, b: &lineagex_core::LineageGraph) {
    assert_eq!(a.queries.len(), b.queries.len(), "query counts differ");
    let mut mismatches = 0;
    for (id, qa) in &a.queries {
        let qb = &b.queries[id];
        if qa.outputs != qb.outputs || qa.cref != qb.cref || qa.tables != qb.tables {
            mismatches += 1;
            println!("  ✘ {id} differs");
            if qa.outputs != qb.outputs {
                println!("    static outputs:    {:?}", qa.output_names());
                println!("    connected outputs: {:?}", qb.output_names());
            }
            if qa.cref != qb.cref {
                println!("    static C_ref:    {:?}", qa.cref);
                println!("    connected C_ref: {:?}", qb.cref);
            }
        }
    }
    println!("  queries compared: {}, mismatches: {mismatches}", a.queries.len());
    assert_eq!(mismatches, 0, "static and EXPLAIN paths must agree");
}
