//! QUERY — the GraphQuery layer's traversal throughput on the 200-view
//! scaling workload: full cone queries (impact-style), upstream
//! closures, depth-limited cones, edge-kind-filtered cones, and
//! table-level explores, all over the interned `GraphIndex` (the path
//! every `LineageView` backend serves), plus an indexed-vs-string-walk
//! comparison against the legacy `run_on_unindexed` reference.
//!
//! Writes `BENCH_query.json` into the working directory so the query
//! layer joins the repo's perf trajectory alongside `BENCH_engine.json`.
//! `scripts/check_bench.sh` re-runs this binary (with `BENCH_QUICK=1`
//! for fewer repetitions) and fails CI when the indexed throughput
//! regresses more than 30% below the committed numbers.

use lineagex_bench::section;
use lineagex_core::{lineagex, EdgeKind, GraphIndex, LineageView, QuerySpec, SourceColumn};
use lineagex_datasets::{generator, GeneratorConfig};
use serde::Serialize;
use std::time::{Duration, Instant};

const VIEWS: usize = 200;

/// Best-of repetitions: 5 normally, 2 under `BENCH_QUICK=1` (the CI
/// regression gate's quick mode).
fn reps() -> usize {
    if std::env::var_os("BENCH_QUICK").is_some() {
        2
    } else {
        5
    }
}

#[derive(Serialize)]
struct Report {
    views: usize,
    origin_columns: usize,
    downstream_cone_qps: f64,
    upstream_closure_qps: f64,
    depth3_cone_qps: f64,
    contribute_only_qps: f64,
    table_explore_qps: f64,
    avg_cone_columns: f64,
    max_cone_columns: usize,
    index_build_ms: f64,
    index_columns: usize,
    index_edges: usize,
    string_walk_downstream_qps: f64,
    string_walk_upstream_qps: f64,
    index_speedup_downstream: f64,
    index_speedup_upstream: f64,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn qps(queries: usize, elapsed: Duration) -> f64 {
    queries as f64 / elapsed.as_secs_f64()
}

fn main() {
    let reps = reps();
    let workload =
        generator::generate(&GeneratorConfig { views: VIEWS, ..GeneratorConfig::seeded(29) });
    let sql = workload.full_sql();
    let mut view = lineagex(&sql).expect("workload extracts");
    let graph = view.settled_graph().expect("batch settles").clone();

    let build_start = Instant::now();
    let index = GraphIndex::build(&graph);
    let index_build = build_start.elapsed();

    // Every column of every relation is an origin: the worst-case sweep
    // a lineage service answering per-column questions would face.
    let origins: Vec<SourceColumn> = graph
        .nodes
        .values()
        .flat_map(|n| n.columns.iter().map(|c| SourceColumn::new(&n.name, c)))
        .collect();
    let tables: Vec<String> = graph.nodes.keys().cloned().collect();

    section("QUERY — workload");
    println!(
        "  {} statements ({} views), {} origin columns, {} relations",
        workload.statement_count(),
        VIEWS,
        origins.len(),
        tables.len()
    );
    println!(
        "  index: {} columns, {} merged edges, built in {:.2} ms",
        index.column_count(),
        index.edge_count(),
        1e3 * index_build.as_secs_f64()
    );

    let sweep = |spec_for: &dyn Fn(&SourceColumn) -> QuerySpec| -> (Duration, usize, usize) {
        let mut total = 0usize;
        let mut max = 0usize;
        let elapsed = best_of(reps, || {
            total = 0;
            max = 0;
            for origin in &origins {
                let answer = spec_for(origin).run_with(&index);
                total += answer.columns.len();
                max = max.max(answer.columns.len());
            }
        });
        (elapsed, total, max)
    };
    // The legacy string-keyed walk over the same specs — the reference
    // implementation the indexed path is asserted byte-identical to.
    let string_sweep = |spec_for: &dyn Fn(&SourceColumn) -> QuerySpec| -> Duration {
        best_of(reps, || {
            for origin in &origins {
                std::hint::black_box(spec_for(origin).run_on_unindexed(&graph));
            }
        })
    };

    let downstream_spec =
        |o: &SourceColumn| QuerySpec::new().from_column(&o.table, &o.column).downstream();
    let upstream_spec =
        |o: &SourceColumn| QuerySpec::new().from_column(&o.table, &o.column).upstream();

    let (down, down_total, down_max) = sweep(&downstream_spec);
    let (up, _, _) = sweep(&upstream_spec);
    let (depth3, _, _) =
        sweep(&|o| QuerySpec::new().from_column(&o.table, &o.column).downstream().max_depth(3));
    let (contribute, _, _) = sweep(&|o| {
        QuerySpec::new()
            .from_column(&o.table, &o.column)
            .downstream()
            .edge_kind(EdgeKind::Contribute)
            .edge_kind(EdgeKind::Both)
    });
    let string_down = string_sweep(&downstream_spec);
    let string_up = string_sweep(&upstream_spec);

    let explore_elapsed = best_of(reps, || {
        for table in &tables {
            std::hint::black_box(
                QuerySpec::new().from_table(table).table_level().max_depth(1).run_with(&index),
            );
        }
    });

    let report = Report {
        views: VIEWS,
        origin_columns: origins.len(),
        downstream_cone_qps: qps(origins.len(), down),
        upstream_closure_qps: qps(origins.len(), up),
        depth3_cone_qps: qps(origins.len(), depth3),
        contribute_only_qps: qps(origins.len(), contribute),
        table_explore_qps: qps(tables.len(), explore_elapsed),
        avg_cone_columns: down_total as f64 / origins.len() as f64,
        max_cone_columns: down_max,
        index_build_ms: 1e3 * index_build.as_secs_f64(),
        index_columns: index.column_count(),
        index_edges: index.edge_count(),
        string_walk_downstream_qps: qps(origins.len(), string_down),
        string_walk_upstream_qps: qps(origins.len(), string_up),
        index_speedup_downstream: string_down.as_secs_f64() / down.as_secs_f64(),
        index_speedup_upstream: string_up.as_secs_f64() / up.as_secs_f64(),
    };

    section("QUERY — GraphQuery traversal throughput (indexed)");
    println!("  downstream cone      : {:>10.0} queries/s", report.downstream_cone_qps);
    println!("  upstream closure     : {:>10.0} queries/s", report.upstream_closure_qps);
    println!("  depth-3 cone         : {:>10.0} queries/s", report.depth3_cone_qps);
    println!("  contribute-only cone : {:>10.0} queries/s", report.contribute_only_qps);
    println!("  table-level explore  : {:>10.0} queries/s", report.table_explore_qps);
    println!(
        "  cone size            : avg {:.1} columns, max {}",
        report.avg_cone_columns, report.max_cone_columns
    );

    section("QUERY — indexed vs string walk");
    println!(
        "  downstream cone      : {:>10.0} vs {:>8.0} queries/s ({:.1}x)",
        report.downstream_cone_qps,
        report.string_walk_downstream_qps,
        report.index_speedup_downstream
    );
    println!(
        "  upstream closure     : {:>10.0} vs {:>8.0} queries/s ({:.1}x)",
        report.upstream_closure_qps, report.string_walk_upstream_qps, report.index_speedup_upstream
    );

    // Downstream is where the string walk's per-hop whole-dictionary
    // scan hurts (O(queries) per BFS pop): the index must win by 5x or
    // more. The string walk's upstream neighbours were already direct
    // map lookups, so there the index only has to never lose.
    assert!(
        report.index_speedup_downstream >= 5.0,
        "the interned index must be at least 5x the string walk downstream \
         (measured {:.1}x)",
        report.index_speedup_downstream
    );
    assert!(
        report.index_speedup_upstream >= 1.0,
        "the interned index must not regress the upstream closure \
         (measured {:.1}x)",
        report.index_speedup_upstream
    );

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_query.json", json + "\n").expect("can write BENCH_query.json");
    println!("\n  wrote BENCH_query.json");
}
