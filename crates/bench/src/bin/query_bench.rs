//! QUERY — the GraphQuery layer's traversal throughput on the 200-view
//! scaling workload: full cone queries (impact-style), upstream
//! closures, depth-limited cones, edge-kind-filtered cones, and
//! table-level explores, all through the unified `LineageView` surface.
//!
//! Writes `BENCH_query.json` into the working directory so the query
//! layer joins the repo's perf trajectory alongside `BENCH_engine.json`.

use lineagex_bench::section;
use lineagex_core::{lineagex, EdgeKind, LineageView, QuerySpec, SourceColumn};
use lineagex_datasets::{generator, GeneratorConfig};
use serde::Serialize;
use std::time::{Duration, Instant};

const VIEWS: usize = 200;
const REPS: usize = 5;

#[derive(Serialize)]
struct Report {
    views: usize,
    origin_columns: usize,
    downstream_cone_qps: f64,
    upstream_closure_qps: f64,
    depth3_cone_qps: f64,
    contribute_only_qps: f64,
    table_explore_qps: f64,
    avg_cone_columns: f64,
    max_cone_columns: usize,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn qps(queries: usize, elapsed: Duration) -> f64 {
    queries as f64 / elapsed.as_secs_f64()
}

fn main() {
    let workload =
        generator::generate(&GeneratorConfig { views: VIEWS, ..GeneratorConfig::seeded(29) });
    let sql = workload.full_sql();
    let mut view = lineagex(&sql).expect("workload extracts");
    let graph = view.settled_graph().expect("batch settles").clone();

    // Every column of every relation is an origin: the worst-case sweep
    // a lineage service answering per-column questions would face.
    let origins: Vec<SourceColumn> = graph
        .nodes
        .values()
        .flat_map(|n| n.columns.iter().map(|c| SourceColumn::new(&n.name, c)))
        .collect();
    let tables: Vec<String> = graph.nodes.keys().cloned().collect();

    section("QUERY — workload");
    println!(
        "  {} statements ({} views), {} origin columns, {} relations",
        workload.statement_count(),
        VIEWS,
        origins.len(),
        tables.len()
    );

    let sweep = |spec_for: &dyn Fn(&SourceColumn) -> QuerySpec| -> (Duration, usize, usize) {
        let mut total = 0usize;
        let mut max = 0usize;
        let elapsed = best_of(REPS, || {
            total = 0;
            max = 0;
            for origin in &origins {
                let answer = spec_for(origin).run_on(&graph);
                total += answer.columns.len();
                max = max.max(answer.columns.len());
            }
        });
        (elapsed, total, max)
    };

    let (down, down_total, down_max) =
        sweep(&|o| QuerySpec::new().from_column(&o.table, &o.column).downstream());
    let (up, _, _) = sweep(&|o| QuerySpec::new().from_column(&o.table, &o.column).upstream());
    let (depth3, _, _) =
        sweep(&|o| QuerySpec::new().from_column(&o.table, &o.column).downstream().max_depth(3));
    let (contribute, _, _) = sweep(&|o| {
        QuerySpec::new()
            .from_column(&o.table, &o.column)
            .downstream()
            .edge_kind(EdgeKind::Contribute)
            .edge_kind(EdgeKind::Both)
    });

    let explore_elapsed = best_of(REPS, || {
        for table in &tables {
            std::hint::black_box(
                QuerySpec::new().from_table(table).table_level().max_depth(1).run_on(&graph),
            );
        }
    });

    let report = Report {
        views: VIEWS,
        origin_columns: origins.len(),
        downstream_cone_qps: qps(origins.len(), down),
        upstream_closure_qps: qps(origins.len(), up),
        depth3_cone_qps: qps(origins.len(), depth3),
        contribute_only_qps: qps(origins.len(), contribute),
        table_explore_qps: qps(tables.len(), explore_elapsed),
        avg_cone_columns: down_total as f64 / origins.len() as f64,
        max_cone_columns: down_max,
    };

    section("QUERY — GraphQuery traversal throughput");
    println!("  downstream cone      : {:>10.0} queries/s", report.downstream_cone_qps);
    println!("  upstream closure     : {:>10.0} queries/s", report.upstream_closure_qps);
    println!("  depth-3 cone         : {:>10.0} queries/s", report.depth3_cone_qps);
    println!("  contribute-only cone : {:>10.0} queries/s", report.contribute_only_qps);
    println!("  table-level explore  : {:>10.0} queries/s", report.table_explore_qps);
    println!(
        "  cone size            : avg {:.1} columns, max {}",
        report.avg_cone_columns, report.max_cone_columns
    );

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_query.json", json + "\n").expect("can write BENCH_query.json");
    println!("\n  wrote BENCH_query.json");
}
