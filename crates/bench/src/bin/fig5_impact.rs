//! FIG5 — regenerate Figure 5 / §IV steps 1–4: the full demonstration
//! walkthrough, producing the JSON and HTML artefacts the paper's API
//! returns and verifying the impact-analysis answer.

use lineagex_bench::{join, section};
use lineagex_core::{explore, lineagex, SourceColumn};
use lineagex_datasets::example1;
use lineagex_viz::{to_dot, to_html, to_output_json};

fn main() {
    section("FIG 5 — Step 1: get started");
    let result = lineagex(&example1::full_log()).expect("extraction succeeds");
    std::fs::create_dir_all("target/fig5").unwrap();
    std::fs::write("target/fig5/output.json", to_output_json(&result.graph)).unwrap();
    std::fs::write("target/fig5/graph.html", to_html(&result.graph)).unwrap();
    std::fs::write("target/fig5/graph.dot", to_dot(&result.graph)).unwrap();
    println!("  lineagex(sql) -> target/fig5/output.json + graph.html (+ graph.dot)");

    section("FIG 5 — Step 2: locating the table");
    let web = &result.graph.nodes["web"];
    println!("  dropdown pick `web` -> columns [{}]", join(web.columns.iter()));

    section("FIG 5 — Step 3: navigating column dependency (explore clicks)");
    let hop1 = explore(&result.graph, "web");
    println!("  explore(web):      downstream {:?}", hop1.downstream);
    assert_eq!(hop1.downstream, vec!["webact", "webinfo"]);
    let hop2 = explore(&result.graph, "webact");
    println!("  explore(webact):   downstream {:?}", hop2.downstream);
    assert_eq!(hop2.downstream, vec!["info"]);
    let hop3 = explore(&result.graph, "info");
    println!("  explore(info):     downstream {:?} (no more downstreams)", hop3.downstream);
    assert!(hop3.downstream.is_empty());

    println!("\n  hover web.page -> direct downstream highlights:");
    for (col, kind) in result.graph.direct_downstream(&SourceColumn::new("web", "page")) {
        println!("    {col} ({kind:?})");
    }

    section("FIG 5 — Step 4: solving the case");
    let impact = result.impact_of("web", "page");
    for (table, cols) in impact.by_table() {
        let rendered: Vec<String> =
            cols.iter().map(|c| format!("{}({:?})", c.column.column, c.kind)).collect();
        println!("  {table}: {}", rendered.join(", "));
    }
    let expected: std::collections::BTreeSet<SourceColumn> = example1::expected_page_impact()
        .into_iter()
        .map(|(t, c)| SourceColumn::new(t, c))
        .collect();
    let actual: std::collections::BTreeSet<SourceColumn> =
        impact.impacted().iter().map(|c| c.column.clone()).collect();
    assert_eq!(actual, expected);
    println!(
        "\n✔ impact = webinfo.wpage + all columns of webact and info ({} columns), as in §IV",
        expected.len()
    );
}
