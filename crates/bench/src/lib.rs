//! # lineagex-bench
//!
//! Experiment harnesses regenerating every artefact of the paper's
//! evaluation, plus criterion micro/macro benchmarks. One binary per
//! experiment id (see DESIGN.md §4):
//!
//! | binary | paper artefact |
//! |--------|----------------|
//! | `fig2_example1` | Fig. 2 — Example 1 lineage, LineageX vs SQLLineage-like |
//! | `table1_rules` | Table I — one focused scenario per keyword rule |
//! | `fig4_traversal` | Fig. 4 — post-order traversal trace of Q3 |
//! | `fig5_impact` | Fig. 5 / §IV steps 1–4 — impact analysis walkthrough |
//! | `mimic_coverage` | §IV workload statistics + accuracy on MIMIC-like data |
//! | `llm_compare` | §IV — LLM-style vs full impact analysis |
//! | `explain_path` | §III connected mode — static vs EXPLAIN agreement |
//! | `accuracy_sweep` | extension — F1 vs SQL-feature mix, ours vs baseline |
//! | `engine_bench` | extension — session engine: batch vs incremental vs parallel (`BENCH_engine.json`) |
//! | `query_bench` | extension — GraphQuery traversal throughput on the 200-view workload (`BENCH_query.json`) |

#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt::Display;

/// Print a boxed section header.
pub fn section(title: &str) {
    let bar = "=".repeat(title.len() + 4);
    println!("\n{bar}\n| {title} |\n{bar}");
}

/// Print an aligned two-column table.
pub fn table2(header: (&str, &str), rows: &[(String, String)]) {
    let w = rows.iter().map(|(a, _)| a.len()).chain([header.0.len()]).max().unwrap_or(10);
    println!("  {:<w$}  {}", header.0, header.1);
    println!("  {:-<w$}  {:-<30}", "", "");
    for (a, b) in rows {
        println!("  {a:<w$}  {b}");
    }
}

/// Format a float as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Render an iterator as a comma-joined string.
pub fn join<T: Display>(items: impl IntoIterator<Item = T>) -> String {
    items.into_iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn join_formats() {
        assert_eq!(join(["a", "b"]), "a, b");
        assert_eq!(join(Vec::<String>::new()), "");
    }
}
