//! PERF — parsing throughput: tokenizer + parser over the paper's
//! workloads ("lightweight" claim, §I).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lineagex_datasets::{example1, generator, mimic, GeneratorConfig};
use lineagex_sqlparse::parse_sql;

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");

    let ex1 = example1::full_log();
    group.throughput(Throughput::Bytes(ex1.len() as u64));
    group.bench_function("example1", |b| b.iter(|| parse_sql(std::hint::black_box(&ex1))));

    let mimic_sql = mimic::workload().full_sql();
    group.throughput(Throughput::Bytes(mimic_sql.len() as u64));
    group.bench_function("mimic_full_log", |b| {
        b.iter(|| parse_sql(std::hint::black_box(&mimic_sql)))
    });

    for views in [10usize, 50, 100] {
        let workload =
            generator::generate(&GeneratorConfig { views, ..GeneratorConfig::seeded(5) });
        let sql = workload.full_sql();
        group.throughput(Throughput::Bytes(sql.len() as u64));
        group.bench_with_input(BenchmarkId::new("generated_views", views), &sql, |b, sql| {
            b.iter(|| parse_sql(std::hint::black_box(sql)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
