//! PERF — scaling behaviour: extraction time vs number of views, vs
//! reversed (stack-heavy) statement order, and vs feature mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lineagex_core::lineagex;
use lineagex_datasets::{generator, GeneratorConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/views");
    for views in [10usize, 25, 50, 100, 200] {
        let workload =
            generator::generate(&GeneratorConfig { views, ..GeneratorConfig::seeded(9) });
        let sql = workload.full_sql();
        group.throughput(Throughput::Elements(views as u64));
        group.bench_with_input(BenchmarkId::from_parameter(views), &sql, |b, sql| {
            b.iter(|| lineagex(std::hint::black_box(sql)).unwrap())
        });
    }
    group.finish();

    // The auto-inference stack at work: same workload, dependency-reversed
    // statement order (every view deferred at least once).
    let mut group = c.benchmark_group("scaling/statement_order");
    for views in [25usize, 100] {
        let forward =
            generator::generate(&GeneratorConfig { views, ..GeneratorConfig::seeded(13) });
        let reversed = generator::generate(&GeneratorConfig {
            views,
            shuffle_statements: true,
            ..GeneratorConfig::seeded(13)
        });
        group.bench_with_input(
            BenchmarkId::new("forward", views),
            &forward.full_sql(),
            |b, sql| b.iter(|| lineagex(std::hint::black_box(sql)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("reversed", views),
            &reversed.full_sql(),
            |b, sql| b.iter(|| lineagex(std::hint::black_box(sql)).unwrap()),
        );
    }
    group.finish();

    // Feature-mix cost: stars force full expansions, set ops double the
    // branch work.
    let mut group = c.benchmark_group("scaling/feature_mix");
    type Mutator = fn(&mut GeneratorConfig);
    let mixes: [(&str, Mutator); 3] = [
        ("plain", |c| {
            c.star_probability = 0.0;
            c.setop_probability = 0.0;
            c.cte_probability = 0.0;
        }),
        ("stars", |c| {
            c.star_probability = 0.8;
            c.setop_probability = 0.0;
        }),
        ("setops_ctes", |c| {
            c.setop_probability = 0.5;
            c.cte_probability = 0.5;
        }),
    ];
    for (label, mutate) in mixes {
        let mut config = GeneratorConfig { views: 50, ..GeneratorConfig::seeded(21) };
        mutate(&mut config);
        let sql = generator::generate(&config).full_sql();
        group.bench_with_input(BenchmarkId::from_parameter(label), &sql, |b, sql| {
            b.iter(|| lineagex(std::hint::black_box(sql)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
