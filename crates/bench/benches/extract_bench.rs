//! PERF — end-to-end lineage extraction: LineageX static path, the
//! EXPLAIN-based connected path, and the SQLLineage-like baseline on the
//! same workloads, plus downstream artefact rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use lineagex_baseline::SqlLineageLike;
use lineagex_catalog::{Catalog, SimulatedDatabase};
use lineagex_core::{lineagex, ExplainPathExtractor, QueryDict};
use lineagex_datasets::{example1, mimic};
use lineagex_viz::{to_dot, to_html, to_output_json};

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract");

    let ex1 = example1::full_log();
    group.bench_function("lineagex/example1", |b| {
        b.iter(|| lineagex(std::hint::black_box(&ex1)).unwrap())
    });
    group.bench_function("baseline/example1", |b| {
        b.iter(|| SqlLineageLike::new().extract(std::hint::black_box(&ex1)).unwrap())
    });

    let mimic_sql = mimic::workload().full_sql();
    group.sample_size(20);
    group.bench_function("lineagex/mimic_70_views", |b| {
        b.iter(|| lineagex(std::hint::black_box(&mimic_sql)).unwrap())
    });
    group.bench_function("baseline/mimic_70_views", |b| {
        b.iter(|| SqlLineageLike::new().extract(std::hint::black_box(&mimic_sql)).unwrap())
    });

    // Connected mode: bind + create views through the simulated database.
    let workload = mimic::workload();
    let views_sql: String = workload.view_statements.iter().map(|s| format!("{s};")).collect();
    group.bench_function("explain_path/mimic_70_views", |b| {
        b.iter(|| {
            let qd = QueryDict::from_sql(std::hint::black_box(&views_sql)).unwrap();
            let db = SimulatedDatabase::with_catalog(Catalog::from_ddl(&workload.ddl).unwrap());
            ExplainPathExtractor::new(qd, db).run().unwrap()
        })
    });
    group.finish();

    // Rendering costs for the UI artefacts.
    let graph = lineagex(&mimic_sql).unwrap().graph;
    let mut render = c.benchmark_group("render");
    render
        .bench_function("json/mimic", |b| b.iter(|| to_output_json(std::hint::black_box(&graph))));
    render.bench_function("dot/mimic", |b| b.iter(|| to_dot(std::hint::black_box(&graph))));
    render.bench_function("html/mimic", |b| b.iter(|| to_html(std::hint::black_box(&graph))));
    render.finish();
}

criterion_group!(benches, bench_extract);
criterion_main!(benches);
