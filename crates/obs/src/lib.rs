//! Observability core for LineageX: counters, gauges, log₂ latency
//! histograms, RAII span timers, and a process-wide [`Registry`] with a
//! deterministic JSON snapshot.
//!
//! Design constraints, in order:
//!
//! * **Allocation-light, lock-free recording.** Every handle
//!   ([`Counter`], [`Gauge`], [`Histogram`]) is a cheap `Arc` around
//!   plain atomics; recording is a handful of relaxed atomic ops and
//!   never takes a lock or allocates. The registry's mutex is touched
//!   only at registration time (once per metric name) and on
//!   [`Registry::snapshot`].
//! * **Deterministic snapshots.** [`Registry::snapshot`] renders sorted
//!   keys (`BTreeMap` order) and integer-only values, so two registries
//!   fed the same recording sequence serialise to identical bytes, and
//!   consecutive snapshots diff cleanly (counters are monotonic).
//! * **Zero dependencies** beyond the vendored serde shims (the PR 1
//!   offline-build convention).
//!
//! Histograms use fixed log₂ buckets: value `v` lands in the bucket
//! indexed by its bit length, so bucket `i ≥ 1` spans `[2^(i-1), 2^i)`.
//! Quantile readout is exact over the buckets — the reported pXX is the
//! inclusive upper bound of the bucket holding the true rank, so it
//! bounds the true quantile within one bucket: `true ≤ reported ≤
//! 2·true` (for non-zero values). Durations are recorded in
//! microseconds; name such histograms with a `_us` suffix.
//!
//! A global kill switch ([`set_enabled`]) turns every recording path
//! into a single relaxed load, which is how the serve bench measures
//! instrumentation overhead (`obs_overhead_pct` in `BENCH_serve.json`).

#![deny(rustdoc::broken_intra_doc_links)]

use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of log₂ buckets per histogram. Bucket 31 is open-ended, so
/// durations up to ~35 minutes (in µs) resolve exactly.
const HIST_BUCKETS: usize = 32;

/// Capacity of the registry's slow-operation ring buffer.
const SLOW_RING_CAPACITY: usize = 32;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Process-wide recording kill switch. When disabled, every recording
/// path reduces to one relaxed atomic load; registration and snapshots
/// still work (values simply stop moving).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether recording is currently enabled (see [`set_enabled`]).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry: every instrumented layer (engine, query,
/// serve, CLI) records here, and `lineagex client metrics` snapshots it.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic, so handles can be cached at construction time and recorded
/// from any thread.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed instantaneous value (e.g. live connections).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, value: i64) {
        if enabled() {
            self.0.store(value, Ordering::Relaxed);
        }
    }

    /// Move the gauge by a signed delta.
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index for a recorded value: its bit length, capped to the
/// open-ended last bucket. Zero lands in bucket 0.
fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (the value every quantile readout
/// reports for ranks landing in that bucket).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log₂ histogram with exact p50/p90/p99 readout over
/// the buckets. Recording is lock-free (four relaxed atomic ops).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record a raw value (a count, a size, or a duration in µs).
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let core = &*self.0;
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration, in microseconds.
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Start an RAII timer that records its elapsed time (in µs) into
    /// this histogram when dropped.
    pub fn time(&self) -> SpanTimer {
        SpanTimer { histogram: Some(self.clone()), start: Instant::now() }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Fold another histogram's recordings into this one. Merging is
    /// bucket-wise addition, so it is commutative and associative:
    /// merge order cannot change any readout.
    pub fn merge_from(&self, other: &Histogram) {
        let (a, b) = (&*self.0, &*other.0);
        for i in 0..HIST_BUCKETS {
            a.buckets[i].fetch_add(b.buckets[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        a.count.fetch_add(b.count.load(Ordering::Relaxed), Ordering::Relaxed);
        a.sum.fetch_add(b.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        a.max.fetch_max(b.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The quantile readout for `q` in percent (e.g. `99.0`): the upper
    /// bound of the bucket containing the rank-`⌈q·n/100⌉` value.
    pub fn quantile(&self, q: f64) -> u64 {
        let core = &*self.0;
        let count = core.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in core.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// An integer-only summary (deterministic to serialise).
    pub fn summary(&self) -> HistogramSummary {
        let core = &*self.0;
        HistogramSummary {
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
            p50: self.quantile(50.0),
            p90: self.quantile(90.0),
            p99: self.quantile(99.0),
        }
    }
}

/// Point-in-time histogram readout. All fields are integers so the JSON
/// rendering is byte-deterministic.
#[derive(Serialize, Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (µs for duration histograms).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median readout (upper bound of the rank bucket).
    pub p50: u64,
    /// 90th-percentile readout.
    pub p90: u64,
    /// 99th-percentile readout.
    pub p99: u64,
}

/// RAII timer: records the elapsed time into its histogram on drop (or
/// explicitly via [`SpanTimer::stop`]).
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Option<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Stop now, record, and return the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if let Some(histogram) = self.histogram.take() {
            histogram.record_duration(elapsed);
        }
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(histogram) = self.histogram.take() {
            histogram.record_duration(self.start.elapsed());
        }
    }
}

/// One entry in the slow-operation ring: what ran, how long it took,
/// and the graph state it saw.
#[derive(Serialize, Clone, Debug, PartialEq, Eq)]
pub struct SlowOp {
    /// Operation name (a serve op or an engine phase).
    pub op: String,
    /// Wall time, in microseconds.
    pub duration_us: u64,
    /// Graph revision the operation observed.
    pub revision: u64,
    /// Number of origins involved (query fan-out), 0 when not a query.
    pub origins: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    slow_ops: VecDeque<SlowOp>,
}

/// A metrics registry: name → handle maps plus the slow-operation ring.
/// One process-wide instance lives behind [`registry`]; tests construct
/// local ones for determinism checks.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Get or register the counter named `name`. The returned handle is
    /// shared: all callers asking for the same name record into the same
    /// atomic, and registration pins the name into every snapshot.
    pub fn counter(&self, name: &str) -> Counter {
        self.lock().counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.lock().gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.lock().histograms.entry(name.to_string()).or_default().clone()
    }

    /// Push an entry into the bounded slow-operation ring (oldest entry
    /// evicted past capacity).
    pub fn record_slow(&self, op: &str, duration: Duration, revision: u64, origins: u64) {
        if !enabled() {
            return;
        }
        let entry = SlowOp {
            op: op.to_string(),
            duration_us: duration.as_micros().min(u64::MAX as u128) as u64,
            revision,
            origins,
        };
        let mut inner = self.lock();
        if inner.slow_ops.len() == SLOW_RING_CAPACITY {
            inner.slow_ops.pop_front();
        }
        inner.slow_ops.push_back(entry);
    }

    /// A point-in-time snapshot: sorted keys, integer values, slow ring
    /// oldest-first. Serialising the snapshot is byte-deterministic for
    /// a fixed sequence of recordings.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.summary())).collect(),
            slow_ops: inner.slow_ops.iter().cloned().collect(),
        }
    }
}

/// A deterministic point-in-time view of a [`Registry`]: plain sorted
/// maps, ready to serialise (`serde_json::to_string` yields the wire
/// form the serve `metrics` op returns).
#[derive(Serialize, Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges, by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries, by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Recent slow operations, oldest first.
    pub slow_ops: Vec<SlowOp>,
}

impl MetricsSnapshot {
    /// Compact JSON rendering (sorted keys, integers only).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("metrics snapshot serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
    }

    #[test]
    fn histogram_readout_is_exact_over_buckets() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 5, 900] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 907);
        assert_eq!(s.max, 900);
        // Rank 3 of 5 is the value 1 → bucket [1,1] upper bound 1.
        assert_eq!(s.p50, 1);
        // Ranks 5 (p90, p99) hit 900 → bucket [512,1023] upper 1023.
        assert_eq!(s.p90, 1023);
        assert_eq!(s.p99, 1023);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn span_timer_records_once() {
        let h = Histogram::default();
        {
            let _t = h.time();
        }
        let elapsed = h.time().stop();
        assert_eq!(h.count(), 2);
        assert!(elapsed >= Duration::ZERO);
    }

    #[test]
    fn slow_ring_is_bounded_and_ordered() {
        let r = Registry::new();
        for i in 0..(SLOW_RING_CAPACITY as u64 + 3) {
            r.record_slow("query", Duration::from_micros(i), i, 1);
        }
        let snap = r.snapshot();
        assert_eq!(snap.slow_ops.len(), SLOW_RING_CAPACITY);
        assert_eq!(snap.slow_ops.first().unwrap().revision, 3);
        assert_eq!(snap.slow_ops.last().unwrap().revision, SLOW_RING_CAPACITY as u64 + 2);
    }

    #[test]
    fn snapshot_is_byte_deterministic_for_a_fixed_recording_sequence() {
        let run = || {
            let r = Registry::new();
            r.counter("serve.requests").add(3);
            r.counter("engine.ast_cache.hits").inc();
            r.gauge("serve.connections_live").set(2);
            let h = r.histogram("engine.ingest_us");
            for v in [40, 7, 7, 2500, 0] {
                h.record(v);
            }
            r.record_slow("ingest", Duration::from_micros(2500), 4, 0);
            r.snapshot().to_json()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "snapshot rendering must be byte-deterministic");
        // The shape is pinned: sorted keys, integer values, struct field
        // order inside summaries.
        assert!(a.starts_with("{\"counters\":{\"engine.ast_cache.hits\":1,\"serve.requests\":3}"));
        assert!(a.contains("\"histograms\":{\"engine.ingest_us\":{\"count\":5,"));
        assert!(a.contains("\"slow_ops\":[{\"op\":\"ingest\",\"duration_us\":2500,"));
    }

    #[test]
    fn registry_handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x").get(), 2);
    }
}
