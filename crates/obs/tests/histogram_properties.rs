//! Property tests for the observability primitives.
//!
//! * **Merge order-independence**: folding a set of shard histograms
//!   into an accumulator must yield the same state in any merge order
//!   (bucket-wise addition is commutative and associative) — and the
//!   merged state must equal recording every value into one histogram.
//! * **Quantile bound**: the log₂-bucket readout reports the upper
//!   bound of the bucket holding the true rank, so it must bound the
//!   true quantile within one bucket: `true ≤ reported ≤ 2·true`
//!   (with equality at zero).

use lineagex_obs::Histogram;
use proptest::collection::vec;
use proptest::prelude::*;

/// The true rank-based quantile the histogram approximates: the value at
/// rank ⌈q·n/100⌉ (1-based) of the sorted recordings.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

fn recorded(values: &[u64]) -> Histogram {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn merge_is_order_independent(
        shards in vec(vec(0u64..1_000_000, 0..40), 1..6),
        rotate in 0usize..6,
    ) {
        // Merge the shards in two different orders (identity vs rotated)
        // and also record the concatenation directly into one histogram.
        let forward = Histogram::default();
        for shard in &shards {
            forward.merge_from(&recorded(shard));
        }
        let rotated = Histogram::default();
        let pivot = rotate % shards.len();
        for shard in shards[pivot..].iter().chain(&shards[..pivot]) {
            rotated.merge_from(&recorded(shard));
        }
        let all: Vec<u64> = shards.iter().flatten().copied().collect();
        let direct = recorded(&all);

        prop_assert_eq!(forward.summary(), rotated.summary());
        prop_assert_eq!(forward.summary(), direct.summary());
    }

    #[test]
    fn quantiles_bound_the_true_quantile_within_one_bucket(
        values in vec(0u64..1_000_000_000, 1..200),
    ) {
        let h = recorded(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [50.0, 90.0, 99.0] {
            let truth = true_quantile(&sorted, q);
            let reported = h.quantile(q);
            prop_assert!(
                reported >= truth,
                "q{} under-reported: true {} reported {}", q, truth, reported
            );
            prop_assert!(
                reported <= truth.saturating_mul(2),
                "q{} more than one bucket off: true {} reported {}", q, truth, reported
            );
        }
    }
}
