//! The public entry points, mirroring the Python library's one-call API
//! (`lineagex(sql=...)` in the paper's Fig. 5, step 1).

use crate::error::LineageError;
use crate::impact::{impact_of, ImpactReport};
use crate::infer::{InferenceEngine, LineageResult};
use crate::model::{LineageGraph, SourceColumn};
use crate::options::{AmbiguityPolicy, ExtractOptions};
use crate::preprocess::QueryDict;
use crate::report::JsonReport;
use lineagex_catalog::Catalog;

/// Builder-style façade over the extraction pipeline.
///
/// ```
/// use lineagex_core::LineageX;
///
/// let result = LineageX::new()
///     .run("CREATE TABLE web (cid int, page text);
///           CREATE VIEW v AS SELECT page FROM web WHERE cid > 0;")
///     .unwrap();
/// assert_eq!(result.graph.queries["v"].output_names(), vec!["page"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LineageX {
    catalog: Catalog,
    options: ExtractOptions,
}

impl LineageX {
    /// A fresh pipeline with an empty catalog and default options.
    pub fn new() -> Self {
        LineageX::default()
    }

    /// Provide base-table schemas as a catalog.
    pub fn with_catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Provide base-table schemas as a `CREATE TABLE` DDL script.
    pub fn with_ddl(mut self, ddl: &str) -> Result<Self, LineageError> {
        self.catalog = Catalog::from_ddl(ddl).map_err(|e| LineageError::Parse(e.to_string()))?;
        Ok(self)
    }

    /// Set the ambiguity policy.
    pub fn ambiguity(mut self, policy: AmbiguityPolicy) -> Self {
        self.options.ambiguity = policy;
        self
    }

    /// Record per-query traversal traces (Fig. 4).
    pub fn trace(mut self) -> Self {
        self.options.trace = true;
        self
    }

    /// Disable the table/view auto-inference stack (ablation mode: later
    /// definitions no longer resolve earlier queries' `SELECT *`).
    pub fn without_auto_inference(mut self) -> Self {
        self.options.auto_inference = false;
        self
    }

    /// Enable lenient mode: unparsable statements, duplicate ids,
    /// unresolvable columns, and dependency cycles degrade into
    /// span-tagged [`crate::Diagnostic`]s (the affected lineage is marked
    /// partial) instead of aborting the run — extraction over query logs
    /// *as they are*, per the paper's §III promise.
    pub fn lenient(mut self) -> Self {
        self.options.lenient = true;
        self
    }

    /// Select the SQL dialect the log is lexed and parsed under. Defaults
    /// to the permissive ANSI core; a named dialect unlocks its grammar
    /// extensions (`QUALIFY`, `TOP n`, `MERGE`, dialect comment styles)
    /// and tightens quoting to that engine's rules.
    pub fn dialect(mut self, dialect: lineagex_sqlparse::DialectKind) -> Self {
        self.options.dialect = dialect;
        self
    }

    /// Run over a `;`-separated SQL script (query-log style).
    ///
    /// The catalog is *borrowed* for the run ([`InferenceEngine::over`]):
    /// repeated runs over a large catalog never deep-copy it, and
    /// [`ExtractOptions`] is plain `Copy` data.
    pub fn run(&self, sql: &str) -> Result<LineageResult, LineageError> {
        let qd = QueryDict::from_sql_dialect(sql, self.options.lenient, self.options.dialect)?;
        InferenceEngine::over(qd, &self.catalog, self.options).run()
    }

    /// Run over named sources (dbt-style, file name = query id).
    pub fn run_named<'a, I>(&self, sources: I) -> Result<LineageResult, LineageError>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let qd = QueryDict::from_named_sources_dialect(
            sources,
            self.options.lenient,
            self.options.dialect,
        )?;
        InferenceEngine::over(qd, &self.catalog, self.options).run()
    }
}

/// One-call lenient convenience: like [`lineagex`], but messy logs —
/// syntax errors, duplicate ids, noise statements — degrade into
/// diagnostics instead of errors.
pub fn lineagex_lenient(sql: &str) -> Result<LineageResult, LineageError> {
    LineageX::new().lenient().run(sql)
}

/// One-call convenience: extract a lineage graph from a SQL script with
/// default options (the paper's `lineagex(sql)`).
pub fn lineagex(sql: &str) -> Result<LineageResult, LineageError> {
    LineageX::new().run(sql)
}

impl LineageResult {
    /// The JSON document (the paper's `output.json`).
    pub fn to_json_report(&self) -> JsonReport {
        JsonReport::from_graph(&self.graph)
    }

    /// Impact analysis from one column (paper §IV, step 4).
    pub fn impact_of(&self, table: &str, column: &str) -> ImpactReport {
        impact_of(&self.graph, &SourceColumn::new(table, column))
    }

    /// Borrow the graph.
    pub fn graph(&self) -> &LineageGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_call_api() {
        let result = lineagex(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t WHERE b = 1;",
        )
        .unwrap();
        assert!(result.graph.queries.contains_key("v"));
        let report = result.to_json_report();
        assert_eq!(report.queries["v"].referenced, vec!["t.b"]);
    }

    #[test]
    fn builder_with_ddl() {
        let result = LineageX::new()
            .with_ddl("CREATE TABLE web (cid int, page text)")
            .unwrap()
            .run("CREATE VIEW v AS SELECT * FROM web")
            .unwrap();
        assert_eq!(result.graph.queries["v"].output_names(), vec!["cid", "page"]);
    }

    #[test]
    fn named_sources_api() {
        let result = LineageX::new()
            .run_named([
                ("base_model", "SELECT w.page AS p FROM web w"),
                ("derived_model", "SELECT p FROM base_model"),
            ])
            .unwrap();
        assert!(result.graph.queries.contains_key("base_model"));
        assert_eq!(
            result.graph.queries["derived_model"].tables,
            std::collections::BTreeSet::from(["base_model".to_string()])
        );
    }

    #[test]
    fn impact_from_result() {
        let result = lineagex(
            "CREATE TABLE t (a int);
             CREATE VIEW v AS SELECT a AS x FROM t;",
        )
        .unwrap();
        let report = result.impact_of("t", "a");
        assert!(report.contains(&SourceColumn::new("v", "x")));
    }

    #[test]
    fn dialect_selection_reaches_the_parser() {
        let sql = "CREATE TABLE t (a int, rn int);
                   CREATE VIEW v AS SELECT a FROM t QUALIFY rn = 1;";
        let result =
            LineageX::new().dialect(lineagex_sqlparse::DialectKind::Snowflake).run(sql).unwrap();
        // QUALIFY contributes a referenced (C_ref) column, like HAVING.
        assert_eq!(result.to_json_report().queries["v"].referenced, vec!["t.rn"]);
        // Under the default ANSI grammar the same log is a parse error.
        assert!(LineageX::new().run(sql).is_err());
    }

    #[test]
    fn strict_policy_errors_on_ambiguity() {
        let sql = "CREATE TABLE a (k int); CREATE TABLE b (k int);
                   CREATE VIEW v AS SELECT k FROM a, b;";
        let err = LineageX::new().ambiguity(AmbiguityPolicy::Error).run(sql).unwrap_err();
        assert!(matches!(err, LineageError::AmbiguousColumn { .. }));
        // Default policy attributes to all.
        let result = LineageX::new().run(sql).unwrap();
        assert_eq!(result.graph.queries["v"].outputs[0].ccon.len(), 2);
    }
}
