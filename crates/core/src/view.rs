//! The unified read surface over every lineage backend.
//!
//! The workspace grew two front doors: the batch
//! [`LineageResult`] (one-shot extraction over a
//! whole log) and the incremental session engine (`lineagex-engine`'s
//! `Engine`). [`LineageView`] is the one contract both implement —
//! graph access, per-query lineage, diagnostics, stats, the
//! [`GraphQuery`] builder, and the versioned [`ReportV2`] wire document —
//! so application code is written once and runs against either backend,
//! the way SMOKE separates lineage *capture* from lineage *querying*.
//!
//! Methods take `&mut self` because an incremental backend settles lazily
//! (ingests are cheap; the first question after a burst pays for the
//! re-extraction). For the batch result settling is a no-op.

use crate::diagnostics::Diagnostic;
use crate::error::LineageError;
use crate::graph::GraphIndex;
use crate::infer::LineageResult;
use crate::model::{GraphStats, LineageGraph, SourceColumn};
use crate::query::GraphQuery;
use crate::report::ReportV2;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A queryable view over a settled lineage graph, implemented by both the
/// batch [`LineageResult`] and the session `Engine`.
pub trait LineageView {
    /// Settle the backend (re-extract anything pending) and borrow the
    /// lineage graph.
    fn settled_graph(&mut self) -> Result<&LineageGraph, LineageError>;

    /// Run-/session-level diagnostics: parse errors, skipped statements,
    /// duplicate ids. Per-query extraction diagnostics live on the
    /// graph's lineage records.
    fn run_diagnostics(&self) -> Vec<Diagnostic>;

    /// A short label for the backend (`"batch"`, `"session"`), for
    /// logging and UIs — deliberately *not* part of the wire documents,
    /// which must stay byte-identical across backends.
    fn backend_name(&self) -> &'static str;

    /// Settle the backend and return the interned traversal index
    /// ([`GraphIndex`]) over its graph — what [`GraphQuery::run`]
    /// traverses. The default builds a fresh index per call; both
    /// workspace backends override it with a cached one (the batch
    /// result behind a structural fingerprint, the session engine
    /// invalidating alongside its dirty-cone state), so a burst of
    /// queries over one settled graph pays the build once.
    fn settled_index(&mut self) -> Result<Arc<GraphIndex>, LineageError> {
        Ok(Arc::new(GraphIndex::build(self.settled_graph()?)))
    }

    /// Start a composable [`GraphQuery`] over this view.
    ///
    /// ```
    /// use lineagex_core::{lineagex, LineageView};
    ///
    /// let mut result = lineagex(
    ///     "CREATE TABLE t (a int);
    ///      CREATE VIEW v AS SELECT a FROM t;",
    /// ).unwrap();
    /// let answer = result.query().from("t.a").downstream().run().unwrap();
    /// assert_eq!(answer.columns[0].column.to_string(), "v.a");
    /// ```
    fn query(&mut self) -> GraphQuery<'_, Self>
    where
        Self: Sized,
    {
        GraphQuery::new(self)
    }

    /// Full lineage of one output column, `C_con(c) ∪ C_ref(Q)`.
    fn column_lineage(
        &mut self,
        table: &str,
        column: &str,
    ) -> Result<Option<BTreeSet<SourceColumn>>, LineageError> {
        Ok(self.settled_graph()?.queries.get(table).and_then(|q| q.lineage_of(column)))
    }

    /// Summary statistics of the settled graph.
    fn graph_stats(&mut self) -> Result<GraphStats, LineageError> {
        Ok(self.settled_graph()?.stats())
    }

    /// The versioned wire document ([`ReportV2`], `schema_version: 2`):
    /// graph, per-query lineage, embedded diagnostics, and stats in one
    /// deterministic JSON-able value. Byte-identical across backends for
    /// equal graphs and diagnostics.
    fn report_v2(&mut self) -> Result<ReportV2, LineageError> {
        self.settled_graph()?;
        let diagnostics = self.run_diagnostics();
        let graph = self.settled_graph()?;
        Ok(ReportV2::from_graph(graph, &diagnostics))
    }
}

impl LineageView for LineageResult {
    fn settled_graph(&mut self) -> Result<&LineageGraph, LineageError> {
        Ok(&self.graph)
    }

    fn run_diagnostics(&self) -> Vec<Diagnostic> {
        self.diagnostics.clone()
    }

    fn backend_name(&self) -> &'static str {
        "batch"
    }

    fn settled_index(&mut self) -> Result<Arc<GraphIndex>, LineageError> {
        Ok(self.index.get_or_build(&self.graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::lineagex;

    fn result() -> LineageResult {
        lineagex(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t WHERE b > 0;",
        )
        .unwrap()
    }

    #[test]
    fn batch_result_is_a_view() {
        let mut view = result();
        assert_eq!(view.backend_name(), "batch");
        assert!(view.run_diagnostics().is_empty());
        let graph = view.settled_graph().unwrap();
        assert!(graph.queries.contains_key("v"));
        let stats = view.graph_stats().unwrap();
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn column_lineage_through_the_trait() {
        let mut view = result();
        let lineage = view.column_lineage("v", "a").unwrap().unwrap();
        assert!(lineage.contains(&SourceColumn::new("t", "a")));
        assert!(lineage.contains(&SourceColumn::new("t", "b")));
        assert!(view.column_lineage("v", "ghost").unwrap().is_none());
    }

    #[test]
    fn query_builder_through_the_trait() {
        let mut view = result();
        let answer = view.query().from("t.a").downstream().run().unwrap();
        assert_eq!(answer.columns.len(), 1);
    }

    #[test]
    fn report_v2_through_the_trait() {
        let mut view = result();
        let report = view.report_v2().unwrap();
        assert_eq!(report.schema_version, 2);
        assert!(report.queries.contains_key("v"));
    }

    #[test]
    fn batch_view_caches_its_index() {
        let mut view = result();
        let first = view.settled_index().unwrap();
        let second = view.settled_index().unwrap();
        assert!(Arc::ptr_eq(&first, &second), "repeat queries must reuse the index");
        assert!(first.lookup_column("v", "a").is_some());
        // Builder answers come off the same index and stay correct.
        let answer = view.query().from("t.a").downstream().run().unwrap();
        assert_eq!(answer.columns[0].column, SourceColumn::new("v", "a"));
    }
}
