//! Errors raised during lineage extraction.

use std::fmt;

/// Errors from the LineageX extraction pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineageError {
    /// SQL failed to parse.
    Parse(String),
    /// A scanned relation is a Query-Dictionary entry that has not been
    /// processed yet. Internal to the auto-inference engine: it triggers
    /// the deferral stack and never escapes a successful run.
    MissingDependency {
        /// The query being extracted when the gap was found.
        query: String,
        /// The unprocessed dependency.
        dependency: String,
    },
    /// View definitions form a dependency cycle.
    DependencyCycle(Vec<String>),
    /// A column reference could not be attributed to any relation in scope.
    ColumnNotFound {
        /// The query being extracted.
        query: String,
        /// The unresolved column.
        column: String,
        /// The qualifier, when one was written.
        relation: Option<String>,
    },
    /// An unqualified column matches several relations and the ambiguity
    /// policy is [`crate::options::AmbiguityPolicy::Error`].
    AmbiguousColumn {
        /// The query being extracted.
        query: String,
        /// The ambiguous column.
        column: String,
        /// Relations that all expose it.
        candidates: Vec<String>,
    },
    /// A qualifier does not name any relation in scope.
    UnknownQualifier {
        /// The query being extracted.
        query: String,
        /// The qualifier.
        qualifier: String,
    },
    /// Set-operation branches disagree on arity.
    SetOperationArityMismatch {
        /// The query being extracted.
        query: String,
        /// Left branch arity.
        left: usize,
        /// Right branch arity.
        right: usize,
    },
    /// Two Query-Dictionary entries claim the same identifier.
    DuplicateQueryId(String),
    /// Two relations in one `FROM` clause share a binding name.
    DuplicateBinding {
        /// The query being extracted.
        query: String,
        /// The duplicated binding.
        binding: String,
    },
    /// An alias/view column list does not match the output arity.
    ColumnCountMismatch {
        /// The owner (view, CTE, or alias) declaring the list.
        owner: String,
        /// Declared names.
        declared: usize,
        /// Actual output arity.
        actual: usize,
    },
    /// A statement kind the extractor does not handle.
    Unsupported(String),
    /// An error reported by the (simulated) database connection in
    /// EXPLAIN-based extraction.
    Database(String),
    /// A binary snapshot could not be written or read back (I/O failure,
    /// wrong magic, unsupported version, truncation, checksum mismatch).
    /// Carries the typed [`crate::DiagnosticCode::SnapshotCorrupt`]
    /// classification via [`crate::snapshot::SnapshotError`].
    Snapshot(String),
}

impl fmt::Display for LineageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineageError::Parse(msg) => write!(f, "parse error: {msg}"),
            LineageError::MissingDependency { query, dependency } => {
                write!(f, "query {query} depends on unprocessed relation {dependency}")
            }
            LineageError::DependencyCycle(path) => {
                write!(f, "dependency cycle: {}", path.join(" -> "))
            }
            LineageError::ColumnNotFound { query, column, relation: Some(rel) } => {
                write!(f, "in {query}: column {rel}.{column} does not exist")
            }
            LineageError::ColumnNotFound { query, column, relation: None } => {
                write!(f, "in {query}: column \"{column}\" does not exist")
            }
            LineageError::AmbiguousColumn { query, column, candidates } => write!(
                f,
                "in {query}: column reference \"{column}\" is ambiguous (candidates: {})",
                candidates.join(", ")
            ),
            LineageError::UnknownQualifier { query, qualifier } => {
                write!(f, "in {query}: missing FROM-clause entry for \"{qualifier}\"")
            }
            LineageError::SetOperationArityMismatch { query, left, right } => write!(
                f,
                "in {query}: set-operation branches have different arities ({left} vs {right})"
            ),
            LineageError::DuplicateQueryId(id) => {
                write!(f, "duplicate query identifier \"{id}\"")
            }
            LineageError::DuplicateBinding { query, binding } => {
                write!(f, "in {query}: table name \"{binding}\" specified more than once")
            }
            LineageError::ColumnCountMismatch { owner, declared, actual } => write!(
                f,
                "\"{owner}\" declares {declared} column names but produces {actual} columns"
            ),
            LineageError::Unsupported(what) => write!(f, "unsupported: {what}"),
            LineageError::Database(msg) => write!(f, "database error: {msg}"),
            LineageError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for LineageError {}

impl From<lineagex_sqlparse::ParseError> for LineageError {
    fn from(e: lineagex_sqlparse::ParseError) -> Self {
        LineageError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LineageError::DependencyCycle(vec!["a".into(), "b".into(), "a".into()]);
        assert_eq!(e.to_string(), "dependency cycle: a -> b -> a");
        let e = LineageError::ColumnNotFound {
            query: "info".into(),
            column: "wpage".into(),
            relation: Some("w".into()),
        };
        assert!(e.to_string().contains("w.wpage"));
        let e = LineageError::UnknownQualifier { query: "q1".into(), qualifier: "zz".into() };
        assert!(e.to_string().contains("missing FROM-clause entry"));
    }

    #[test]
    fn parse_error_conversion() {
        let pe = lineagex_sqlparse::parse_sql("SELECT FROM").unwrap_err();
        assert!(matches!(LineageError::from(pe), LineageError::Parse(_)));
    }
}
