//! Traversal tracing — reproduces the paper's Fig. 4 walkthrough.
//!
//! When [`crate::options::ExtractOptions::trace`] is set, the extractor
//! records one [`TraceStep`] per AST node it visits during its post-order
//! DFS, together with the Table I rule it applied and a snapshot of the
//! temporary variables (`T`, `C_pos`, `C_ref`, `P`).

use crate::model::SourceColumn;
use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt;

/// Which Table I rule fired at a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Rule {
    /// `FROM` over a base table or view.
    FromTable,
    /// `FROM` over a CTE or derived subquery.
    FromCteOrSubquery,
    /// `WITH`/subquery registration into `M_CTE`.
    WithSubquery,
    /// The `SELECT` projection rule (resolve `C_con` per projection).
    Select,
    /// The set-operation rule (branch projections into `C_ref`).
    SetOperation,
    /// Any other keyword (`JOIN ON`, `WHERE`, `GROUP BY`, ...).
    OtherKeywords,
}

impl Rule {
    /// The rule's name as written in the paper's Table I.
    pub fn table1_name(&self) -> &'static str {
        match self {
            Rule::FromTable => "FROM (Table/View)",
            Rule::FromCteOrSubquery => "FROM (CTE/Subquery)",
            Rule::WithSubquery => "WITH/Subquery",
            Rule::Select => "SELECT",
            Rule::SetOperation => "Set Operation",
            Rule::OtherKeywords => "Other Keywords",
        }
    }
}

/// A snapshot of the extractor's temporary variables after a step.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct StateSnapshot {
    /// Table lineage `T` so far.
    pub tables: Vec<String>,
    /// Candidate columns `C_pos` (the in-scope relation columns).
    pub cpos: Vec<String>,
    /// Referenced columns `C_ref` so far.
    pub cref: Vec<String>,
    /// The most recent projection's output columns `P`.
    pub projection: Vec<String>,
}

/// One step of the traversal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceStep {
    /// 1-based step number (the circled numbers in Fig. 4).
    pub step: usize,
    /// The rule applied.
    pub rule: Rule,
    /// Human-readable description of the visited node.
    pub node: String,
    /// Variable state after the step.
    pub state: StateSnapshot,
}

/// The ordered trace of one query's extraction.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct TraceLog {
    /// Steps in visit order.
    pub steps: Vec<TraceStep>,
}

impl TraceLog {
    /// Record a step, assigning the next number.
    pub fn record(
        &mut self,
        rule: Rule,
        node: impl Into<String>,
        tables: &BTreeSet<String>,
        cpos: Vec<String>,
        cref: &BTreeSet<SourceColumn>,
        projection: Vec<String>,
    ) {
        let state = StateSnapshot {
            tables: tables.iter().cloned().collect(),
            cpos,
            cref: cref.iter().map(|c| c.to_string()).collect(),
            projection,
        };
        self.steps.push(TraceStep { step: self.steps.len() + 1, rule, node: node.into(), state });
    }

    /// The rules fired, in order.
    pub fn rules(&self) -> Vec<Rule> {
        self.steps.iter().map(|s| s.rule).collect()
    }
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            writeln!(f, "({}) {:<20} {}", step.step, step.rule.table1_name(), step.node)?;
            writeln!(f, "      T     = [{}]", step.state.tables.join(", "))?;
            writeln!(f, "      C_pos = [{}]", step.state.cpos.join(", "))?;
            writeln!(f, "      C_ref = [{}]", step.state.cref.join(", "))?;
            if !step.state.projection.is_empty() {
                writeln!(f, "      P     = [{}]", step.state.projection.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_numbered_steps() {
        let mut log = TraceLog::default();
        let tables = BTreeSet::from(["customers".to_string()]);
        let cref = BTreeSet::new();
        log.record(Rule::FromTable, "scan customers", &tables, vec!["cid".into()], &cref, vec![]);
        log.record(Rule::OtherKeywords, "WHERE", &tables, vec![], &cref, vec![]);
        assert_eq!(log.steps.len(), 2);
        assert_eq!(log.steps[0].step, 1);
        assert_eq!(log.steps[1].step, 2);
        assert_eq!(log.rules(), vec![Rule::FromTable, Rule::OtherKeywords]);
    }

    #[test]
    fn display_shows_rule_names() {
        let mut log = TraceLog::default();
        log.record(
            Rule::Select,
            "projection",
            &BTreeSet::new(),
            vec![],
            &BTreeSet::new(),
            vec!["wcid".into()],
        );
        let text = log.to_string();
        assert!(text.contains("SELECT"), "{text}");
        assert!(text.contains("P     = [wcid]"), "{text}");
    }

    #[test]
    fn rule_names_match_table1() {
        assert_eq!(Rule::FromTable.table1_name(), "FROM (Table/View)");
        assert_eq!(Rule::SetOperation.table1_name(), "Set Operation");
        assert_eq!(Rule::WithSubquery.table1_name(), "WITH/Subquery");
    }
}
