//! The composable graph-query layer — the workspace's one front door for
//! lineage questions.
//!
//! Historically every question had its own free function (`impact_of`,
//! `upstream_of`, `path_between`, `explore`), each hard-wiring one
//! traversal. [`QuerySpec`] factors them into a single description —
//! origins, direction, depth, edge-kind and node-kind filters, column or
//! table granularity, an optional target — executed by one engine
//! ([`QuerySpec::run_on`]). The legacy functions are now thin shortcuts
//! over it, and the [`crate::LineageView`] trait exposes the fluent
//! [`GraphQuery`] builder over *any* backend (batch result, incremental
//! session engine):
//!
//! ```
//! use lineagex_core::{lineagex, EdgeKind, LineageView};
//!
//! let mut result = lineagex(
//!     "CREATE TABLE web (cid int, page text);
//!      CREATE VIEW v AS SELECT page FROM web WHERE cid > 0;",
//! ).unwrap();
//! let answer = result
//!     .query()
//!     .from("web.page")
//!     .downstream()
//!     .max_depth(3)
//!     .edge_kind(EdgeKind::Contribute)
//!     .run()
//!     .unwrap();
//! assert_eq!(answer.columns.len(), 1);
//! assert_eq!(answer.columns[0].column.to_string(), "v.page");
//! ```
//!
//! Every answer carries a renderable [`Subgraph`] slice (the traversal
//! cone) so `lineagex-viz` can draw exactly the part of the graph a
//! question touched instead of the whole thing.

use crate::graph::{ColumnId, GraphIndex, RelationId};
use crate::model::{Edge, EdgeKind, LineageGraph, Node, NodeKind, SourceColumn};
use lineagex_obs::{Counter, Histogram};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::OnceLock;

/// Query-layer handles into the process-wide metrics registry, created
/// once and shared across every query.
struct QueryMetrics {
    /// Wall time per executed [`QuerySpec`], in µs.
    spec_us: Histogram,
    /// Total BFS nodes visited (columns at column granularity, relations
    /// at table granularity).
    bfs_nodes: Counter,
}

fn query_metrics() -> &'static QueryMetrics {
    static METRICS: OnceLock<QueryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = lineagex_obs::registry();
        QueryMetrics {
            spec_us: registry.histogram("query.spec_us"),
            bfs_nodes: registry.counter("query.bfs_nodes"),
        }
    })
}

/// Idempotently register the query-layer metric names (`query.spec_us`,
/// `query.bfs_nodes`, `query.index_build_us`) in the process-wide
/// registry, so metric snapshots have a stable shape even before the
/// first query runs. `lineagex-serve` calls this at startup.
pub fn register_metrics() {
    let _ = query_metrics();
    crate::graph::register_metrics();
}

/// Traversal direction over the lineage graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Follow edges from sources to derived columns (impact-style).
    #[default]
    Downstream,
    /// Follow edges from derived columns back to their sources.
    Upstream,
}

impl Direction {
    /// The kebab label used in serialized documents.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Downstream => "downstream",
            Direction::Upstream => "upstream",
        }
    }
}

impl Serialize for Direction {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.as_str().to_string())
    }
}

/// Traversal granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// Walk column-to-column lineage edges (the default).
    #[default]
    Column,
    /// Walk relation-to-relation table lineage (the paper's `explore`).
    Table,
}

/// One traversal origin: a single column, or every column of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OriginSpec {
    Column(SourceColumn),
    Table(String),
}

/// A declarative lineage query: what to start from, which way to walk,
/// how far, and through which edges. Build one fluently (methods consume
/// and return `self`), then execute it with [`QuerySpec::run_on`] — or
/// let the [`GraphQuery`] builder drive it against a
/// [`crate::LineageView`] backend.
#[derive(Debug, Clone, Default)]
pub struct QuerySpec {
    origins: Vec<OriginSpec>,
    direction: Direction,
    granularity: Granularity,
    max_depth: Option<usize>,
    edge_kinds: Option<BTreeSet<EdgeKind>>,
    node_kinds: Option<Vec<NodeKind>>,
    target: Option<SourceColumn>,
}

impl QuerySpec {
    /// An empty downstream column-granularity query.
    pub fn new() -> Self {
        QuerySpec::default()
    }

    /// Add an origin from a `table.column` spec; a spec without a dot
    /// names a whole relation (every one of its columns).
    pub fn from(self, spec: &str) -> Self {
        match spec.rsplit_once('.') {
            Some((table, column)) => self.from_column(table, column),
            None => self.from_table(spec),
        }
    }

    /// Add one column origin.
    pub fn from_column(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.origins.push(OriginSpec::Column(SourceColumn::new(table, column)));
        self
    }

    /// Add a whole-relation origin (all of its columns at column
    /// granularity; the relation itself at table granularity).
    pub fn from_table(mut self, name: impl Into<String>) -> Self {
        self.origins.push(OriginSpec::Table(name.into()));
        self
    }

    /// Walk downstream (the default).
    pub fn downstream(mut self) -> Self {
        self.direction = Direction::Downstream;
        self
    }

    /// Walk upstream.
    pub fn upstream(mut self) -> Self {
        self.direction = Direction::Upstream;
        self
    }

    /// Stop after `depth` hops (origins are depth 0).
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Only traverse edges of this kind (repeatable; kinds accumulate).
    /// Note that [`EdgeKind::Both`] is its own kind: filtering to
    /// `Contribute` excludes edges that also reference. A
    /// column-granularity concept — [`QuerySpec::table_level`]
    /// traversals ignore it (relation edges have no single kind).
    pub fn edge_kind(mut self, kind: EdgeKind) -> Self {
        self.edge_kinds.get_or_insert_with(BTreeSet::new).insert(kind);
        self
    }

    /// Only traverse into relations of this node kind (repeatable).
    /// Origins are always admitted.
    pub fn node_kind(mut self, kind: NodeKind) -> Self {
        let kinds = self.node_kinds.get_or_insert_with(Vec::new);
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
        self
    }

    /// Switch to table granularity (relation-to-relation edges).
    pub fn table_level(mut self) -> Self {
        self.granularity = Granularity::Table;
        self
    }

    /// Also compute the shortest path from the origins to this column
    /// (column granularity only); the answer's `path` is `None` when the
    /// target is unreachable.
    pub fn to(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.target = Some(SourceColumn::new(table, column));
        self
    }

    /// The configured direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Execute against a settled lineage graph.
    ///
    /// Builds a throw-away [`GraphIndex`] and runs [`QuerySpec::run_with`]
    /// over it — fine for one-off questions. Callers answering many
    /// queries over the same settled graph should build (or borrow) the
    /// index once: both [`crate::LineageView`] backends cache one and the
    /// [`GraphQuery`] builder uses it automatically.
    pub fn run_on(&self, graph: &LineageGraph) -> QueryAnswer {
        self.run_with(&GraphIndex::build(graph))
    }

    /// Execute against a prebuilt [`GraphIndex`] — the fast path: BFS
    /// over dense integer ids and CSR adjacency, translating back to
    /// strings only at the answer boundary. Produces byte-identical
    /// answers to [`QuerySpec::run_on_unindexed`].
    pub fn run_with(&self, index: &GraphIndex) -> QueryAnswer {
        // Metrics never touch the answer: the indexed ≡ unindexed
        // byte-identity property holds with instrumentation enabled.
        let _timer = query_metrics().spec_us.time();
        match self.granularity {
            Granularity::Column => run_columns_indexed(index, self),
            Granularity::Table => run_tables_indexed(index, self),
        }
    }

    /// Execute with the legacy string-keyed walk, without building an
    /// index. Kept as the *reference implementation*: the equivalence
    /// property tests and the bench-regression gate assert that
    /// [`QuerySpec::run_with`] answers match it byte for byte.
    pub fn run_on_unindexed(&self, graph: &LineageGraph) -> QueryAnswer {
        match self.granularity {
            Granularity::Column => run_columns(graph, self),
            Granularity::Table => run_tables(graph, self),
        }
    }

    fn allows_edge(&self, kind: EdgeKind) -> bool {
        self.edge_kinds.as_ref().is_none_or(|kinds| kinds.contains(&kind))
    }

    fn allows_node(&self, graph: &LineageGraph, relation: &str) -> bool {
        match &self.node_kinds {
            None => true,
            Some(kinds) => {
                graph.nodes.get(relation).map(|n| kinds.contains(&n.kind)).unwrap_or(true)
            }
        }
    }

    /// The indexed twin of [`QuerySpec::allows_node`]: a relation with no
    /// node (externals referenced only inside lineage records) is always
    /// admitted, exactly like the string walk admits a missing `nodes`
    /// entry.
    fn allows_node_id(&self, index: &GraphIndex, relation: RelationId) -> bool {
        match &self.node_kinds {
            None => true,
            Some(kinds) => match index.relation_kind(relation) {
                Some(kind) => kinds.contains(&kind),
                None => true,
            },
        }
    }
}

/// One column reached by a traversal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ColumnMatch {
    /// The reached column.
    pub column: SourceColumn,
    /// How the traversal front reaches it, merged over every
    /// shortest-path predecessor (contribution + reference ⇒
    /// [`EdgeKind::Both`]) — the same semantics as the paper's impact UI.
    pub kind: EdgeKind,
    /// Hops from the nearest origin.
    pub distance: usize,
}

/// One relation reached by a traversal (origins report distance 0).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RelationMatch {
    /// The relation name.
    pub name: String,
    /// Minimum hops from an origin over any of its columns (column
    /// granularity) or over table edges (table granularity).
    pub distance: usize,
}

/// One hop of a shortest lineage path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PathStep {
    /// The column stepped onto.
    pub column: SourceColumn,
    /// The kind of the edge into it.
    pub kind: EdgeKind,
}

/// The renderable slice of the graph a query touched: the traversal cone,
/// with node column lists restricted to the touched columns. Small enough
/// to hand straight to the `lineagex-viz` renderers even when the full
/// graph is huge.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct Subgraph {
    /// Touched relations, keyed by name; `columns` keeps only touched
    /// columns, in the relation's declared order.
    pub nodes: BTreeMap<String, Node>,
    /// Every edge of the allowed kinds between touched columns, sorted.
    pub edges: Vec<Edge>,
}

/// The typed result of one [`QuerySpec`] execution.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QueryAnswer {
    /// The direction that was walked.
    pub direction: Direction,
    /// The resolved column origins (whole-relation origins expand to all
    /// of the relation's columns; table granularity reports them with an
    /// empty column name).
    pub origins: Vec<SourceColumn>,
    /// Columns reached (distance ≥ 1), sorted by `(distance, column)`.
    /// Empty at table granularity.
    pub columns: Vec<ColumnMatch>,
    /// Relations reached, including origin relations at distance 0,
    /// sorted by `(distance, name)`.
    pub relations: Vec<RelationMatch>,
    /// The shortest path to the requested target, when one was set and
    /// is reachable. An origin targeting itself yields an empty path.
    pub path: Option<Vec<PathStep>>,
    /// The renderable traversal cone.
    pub subgraph: Subgraph,
}

impl QueryAnswer {
    /// The traversal edges of the answer (the subgraph's edge slice).
    pub fn edges(&self) -> &[Edge] {
        &self.subgraph.edges
    }

    /// Whether `column` was reached by the traversal.
    pub fn reaches(&self, column: &SourceColumn) -> bool {
        self.columns.iter().any(|m| &m.column == column)
    }
}

/// Resolve the spec's origins to concrete columns, preserving order and
/// deduplicating.
fn resolve_column_origins(graph: &LineageGraph, spec: &QuerySpec) -> Vec<SourceColumn> {
    let mut seen = BTreeSet::new();
    let mut origins = Vec::new();
    let mut push = |col: SourceColumn| {
        if seen.insert(col.clone()) {
            origins.push(col);
        }
    };
    for origin in &spec.origins {
        match origin {
            OriginSpec::Column(col) => push(col.clone()),
            OriginSpec::Table(name) => {
                if let Some(node) = graph.nodes.get(name) {
                    for column in &node.columns {
                        push(SourceColumn::new(name, column));
                    }
                }
            }
        }
    }
    origins
}

/// Column-granularity execution: BFS distances over the allowed edges,
/// then a kind-merge pass over every shortest-path predecessor — exactly
/// the algorithm of the paper's impact analysis, generalised to multiple
/// origins, both directions, depth limits, and filters.
fn run_columns(graph: &LineageGraph, spec: &QuerySpec) -> QueryAnswer {
    let origins = resolve_column_origins(graph, spec);
    let neighbors = |col: &SourceColumn| -> Vec<(SourceColumn, EdgeKind)> {
        match spec.direction {
            Direction::Downstream => graph.direct_downstream(col),
            Direction::Upstream => graph.direct_upstream_with_kinds(col),
        }
    };

    // Pass 1: BFS distances over allowed edges and nodes.
    let mut distance: BTreeMap<SourceColumn, usize> =
        origins.iter().cloned().map(|o| (o, 0)).collect();
    let mut queue: VecDeque<(SourceColumn, usize)> =
        origins.iter().cloned().map(|o| (o, 0)).collect();
    while let Some((current, dist)) = queue.pop_front() {
        if spec.max_depth.is_some_and(|limit| dist >= limit) {
            continue;
        }
        for (next, kind) in neighbors(&current) {
            if !spec.allows_edge(kind) || !spec.allows_node(graph, &next.table) {
                continue;
            }
            if !distance.contains_key(&next) {
                distance.insert(next.clone(), dist + 1);
                queue.push_back((next, dist + 1));
            }
        }
    }

    // Pass 2: merge the edge kinds of every shortest-path predecessor, so
    // a column reached at the same distance through both a contribution
    // and a reference reports `Both` (the paper's orange).
    let mut columns: Vec<ColumnMatch> = Vec::new();
    for (column, dist) in &distance {
        if *dist == 0 {
            continue;
        }
        let mut contributes = false;
        let mut references = false;
        let mut merge = |kind: Option<EdgeKind>| {
            let Some(kind) = kind else { return };
            if !spec.allows_edge(kind) {
                return;
            }
            contributes |= matches!(kind, EdgeKind::Contribute | EdgeKind::Both);
            references |= matches!(kind, EdgeKind::Reference | EdgeKind::Both);
        };
        match spec.direction {
            Direction::Downstream => {
                // Every predecessor feeds the same query, so the output's
                // `C_con` sets are looked up once, not per predecessor
                // (plural: same-named outputs merge, like `all_edges`).
                let Some(query) = graph.queries.get(&column.table) else { continue };
                let ccons: Vec<_> = query
                    .outputs
                    .iter()
                    .filter(|o| o.name == column.column)
                    .map(|o| &o.ccon)
                    .collect();
                for (pred, pred_dist) in &distance {
                    if pred_dist + 1 != *dist {
                        continue;
                    }
                    let c = ccons.iter().any(|ccon| ccon.contains(pred));
                    merge(pair_kind(c, query.cref.contains(pred)));
                }
            }
            Direction::Upstream => {
                for (pred, pred_dist) in &distance {
                    if pred_dist + 1 != *dist {
                        continue;
                    }
                    merge(edge_kind_between(graph, column, pred));
                }
            }
        }
        let kind = match (contributes, references) {
            (true, true) => EdgeKind::Both,
            (true, false) => EdgeKind::Contribute,
            _ => EdgeKind::Reference,
        };
        columns.push(ColumnMatch { column: column.clone(), kind, distance: *dist });
    }
    columns.sort_by(|a, b| (a.distance, &a.column).cmp(&(b.distance, &b.column)));

    let path = spec
        .target
        .as_ref()
        .and_then(|target| shortest_path(graph, spec, &origins, target, &neighbors));

    // Relations reached, with min distance over their columns.
    let mut relation_distance: BTreeMap<&str, usize> = BTreeMap::new();
    for (column, dist) in &distance {
        relation_distance
            .entry(column.table.as_str())
            .and_modify(|d| *d = (*d).min(*dist))
            .or_insert(*dist);
    }
    let mut relations: Vec<RelationMatch> = relation_distance
        .into_iter()
        .map(|(name, distance)| RelationMatch { name: name.to_string(), distance })
        .collect();
    relations.sort_by(|a, b| (a.distance, &a.name).cmp(&(b.distance, &b.name)));

    let subgraph = slice_subgraph(graph, spec, distance.keys());
    QueryAnswer { direction: spec.direction, origins, columns, relations, path, subgraph }
}

/// The merged kind of a (contributes, references) pair, if any edge
/// exists at all.
fn pair_kind(contributes: bool, references: bool) -> Option<EdgeKind> {
    match (contributes, references) {
        (true, true) => Some(EdgeKind::Both),
        (true, false) => Some(EdgeKind::Contribute),
        (false, true) => Some(EdgeKind::Reference),
        (false, false) => None,
    }
}

/// The merged kind of the direct edge `from -> to`, if one exists.
/// Same-named outputs merge their `C_con` sets, like `all_edges`.
fn edge_kind_between(
    graph: &LineageGraph,
    from: &SourceColumn,
    to: &SourceColumn,
) -> Option<EdgeKind> {
    let query = graph.queries.get(&to.table)?;
    let contributes =
        query.outputs.iter().filter(|o| o.name == to.column).any(|o| o.ccon.contains(from));
    pair_kind(contributes, query.cref.contains(from))
}

/// BFS shortest path from any origin to `target` over the allowed edges
/// (the legacy `path_between` algorithm, origin-set generalised).
fn shortest_path(
    graph: &LineageGraph,
    spec: &QuerySpec,
    origins: &[SourceColumn],
    target: &SourceColumn,
    neighbors: &dyn Fn(&SourceColumn) -> Vec<(SourceColumn, EdgeKind)>,
) -> Option<Vec<PathStep>> {
    let mut predecessor: BTreeMap<SourceColumn, (SourceColumn, EdgeKind)> = BTreeMap::new();
    let mut queue: VecDeque<(SourceColumn, usize)> =
        origins.iter().cloned().map(|o| (o, 0)).collect();
    let mut visited: BTreeSet<SourceColumn> = origins.iter().cloned().collect();
    while let Some((current, dist)) = queue.pop_front() {
        if &current == target {
            let mut path = Vec::new();
            let mut cursor = current;
            while let Some((prev, kind)) = predecessor.get(&cursor) {
                path.push(PathStep { column: cursor.clone(), kind: *kind });
                cursor = prev.clone();
            }
            path.reverse();
            return Some(path);
        }
        if spec.max_depth.is_some_and(|limit| dist >= limit) {
            continue;
        }
        for (next, kind) in neighbors(&current) {
            if !spec.allows_edge(kind) || !spec.allows_node(graph, &next.table) {
                continue;
            }
            if visited.insert(next.clone()) {
                predecessor.insert(next.clone(), (current.clone(), kind));
                queue.push_back((next, dist + 1));
            }
        }
    }
    None
}

/// Table-granularity execution: BFS over the relation-level edge set.
fn run_tables(graph: &LineageGraph, spec: &QuerySpec) -> QueryAnswer {
    // Adjacency from the table edge set, oriented by direction.
    let mut adjacency: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (from, to) in graph.table_edges() {
        match spec.direction {
            Direction::Downstream => adjacency.entry(from).or_default().insert(to),
            Direction::Upstream => adjacency.entry(to).or_default().insert(from),
        };
    }

    let mut seen = BTreeSet::new();
    let mut origins: Vec<String> = Vec::new();
    for origin in &spec.origins {
        let name = match origin {
            OriginSpec::Table(name) => name.clone(),
            OriginSpec::Column(col) => col.table.clone(),
        };
        if seen.insert(name.clone()) {
            origins.push(name);
        }
    }

    let mut distance: BTreeMap<String, usize> = origins.iter().cloned().map(|o| (o, 0)).collect();
    let mut queue: VecDeque<(String, usize)> = origins.iter().cloned().map(|o| (o, 0)).collect();
    while let Some((current, dist)) = queue.pop_front() {
        if spec.max_depth.is_some_and(|limit| dist >= limit) {
            continue;
        }
        for next in adjacency.get(&current).into_iter().flatten() {
            if !spec.allows_node(graph, next) {
                continue;
            }
            if !distance.contains_key(next) {
                distance.insert(next.clone(), dist + 1);
                queue.push_back((next.clone(), dist + 1));
            }
        }
    }

    let mut relations: Vec<RelationMatch> = distance
        .iter()
        .map(|(name, distance)| RelationMatch { name: name.clone(), distance: *distance })
        .collect();
    relations.sort_by(|a, b| (a.distance, &a.name).cmp(&(b.distance, &b.name)));

    // The cone at table granularity includes every column of the touched
    // relations.
    let touched: Vec<SourceColumn> = distance
        .keys()
        .filter_map(|name| graph.nodes.get(name))
        .flat_map(|node| node.columns.iter().map(|c| SourceColumn::new(&node.name, c)))
        .collect();
    let subgraph = slice_subgraph(graph, spec, touched.iter());
    QueryAnswer {
        direction: spec.direction,
        origins: origins.into_iter().map(|name| SourceColumn::new(name, "")).collect(),
        columns: Vec::new(),
        relations,
        path: None,
        subgraph,
    }
}

/// Cut the renderable slice: touched relations (column lists restricted
/// to touched columns, declared order preserved) plus every allowed-kind
/// edge between touched columns.
fn slice_subgraph<'a>(
    graph: &LineageGraph,
    spec: &QuerySpec,
    touched: impl Iterator<Item = &'a SourceColumn>,
) -> Subgraph {
    let mut by_table: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let touched: Vec<&SourceColumn> = touched.collect();
    for col in &touched {
        by_table.entry(col.table.as_str()).or_default().insert(col.column.as_str());
    }
    let mut nodes = BTreeMap::new();
    for (table, columns) in &by_table {
        let node = match graph.nodes.get(*table) {
            Some(node) => Node {
                name: node.name.clone(),
                kind: node.kind,
                columns: node
                    .columns
                    .iter()
                    .filter(|c| columns.contains(c.as_str()))
                    .cloned()
                    .collect(),
            },
            None => Node {
                name: (*table).to_string(),
                kind: NodeKind::External,
                columns: columns.iter().map(|c| (*c).to_string()).collect(),
            },
        };
        nodes.insert((*table).to_string(), node);
    }
    let in_slice = |col: &SourceColumn| {
        by_table.get(col.table.as_str()).is_some_and(|cols| cols.contains(col.column.as_str()))
    };
    // Enumerate edges from the touched queries' lineage records only —
    // the cost is proportional to the cone, never to the whole graph.
    // Merging mirrors `LineageGraph::all_edges` (contribute upgraded to
    // `Both` by a matching reference), restricted to in-slice endpoints.
    let mut merged: BTreeMap<(SourceColumn, SourceColumn), EdgeKind> = BTreeMap::new();
    for (table, columns) in &by_table {
        let Some(query) = graph.queries.get(*table) else { continue };
        for out in &query.outputs {
            if !columns.contains(out.name.as_str()) {
                continue;
            }
            let to = SourceColumn::new(&query.id, &out.name);
            for src in &out.ccon {
                if in_slice(src) {
                    merged.insert((src.clone(), to.clone()), EdgeKind::Contribute);
                }
            }
        }
        for src in &query.cref {
            if !in_slice(src) {
                continue;
            }
            for out in &query.outputs {
                if !columns.contains(out.name.as_str()) {
                    continue;
                }
                let to = SourceColumn::new(&query.id, &out.name);
                merged
                    .entry((src.clone(), to))
                    .and_modify(|k| {
                        if *k == EdgeKind::Contribute {
                            *k = EdgeKind::Both;
                        }
                    })
                    .or_insert(EdgeKind::Reference);
            }
        }
    }
    // The edge-kind filter is a column-granularity concept; table-level
    // cones keep every edge between their relations so a node never
    // renders disconnected from the traversal that reached it.
    let keep = |kind: EdgeKind| match spec.granularity {
        Granularity::Column => spec.allows_edge(kind),
        Granularity::Table => true,
    };
    let edges = merged
        .into_iter()
        .filter(|(_, kind)| keep(*kind))
        .map(|((from, to), kind)| Edge { from, to, kind })
        .collect();
    Subgraph { nodes, edges }
}

// ---------------------------------------------------------------------
// Indexed execution: the same two-pass BFS + kind-merge algorithms, run
// over `GraphIndex`'s dense ids and CSR adjacency. Ids are assigned in
// lexicographic name order and CSR rows are sorted by id, so visit
// orders — and therefore every tie-break the answers depend on — match
// the string walk exactly.
// ---------------------------------------------------------------------

/// The spec's origins resolved against an index: the legacy origin list
/// (order-preserving, deduplicated), each with its column id when the
/// column is actually indexed. Unknown origins still appear in answers
/// (distance 0, no edges), exactly like the string walk kept them in its
/// distance map.
fn resolve_origins_indexed(
    index: &GraphIndex,
    spec: &QuerySpec,
) -> Vec<(SourceColumn, Option<ColumnId>)> {
    let mut seen = BTreeSet::new();
    let mut resolved = Vec::new();
    let mut push = |col: SourceColumn, id: Option<ColumnId>| {
        if seen.insert(col.clone()) {
            resolved.push((col, id));
        }
    };
    for origin in &spec.origins {
        match origin {
            OriginSpec::Column(col) => {
                let id = index.lookup_column(&col.table, &col.column);
                push(col.clone(), id);
            }
            OriginSpec::Table(name) => {
                // Whole-relation origins expand through the *node's*
                // declared column list (a relation without a node
                // contributes nothing), matching the string walk.
                if let Some(rel) = index.lookup_relation(name) {
                    for &col in index.declared_columns(rel) {
                        push(index.source_column(col), Some(col));
                    }
                }
            }
        }
    }
    resolved
}

/// Column-granularity execution over the index.
fn run_columns_indexed(index: &GraphIndex, spec: &QuerySpec) -> QueryAnswer {
    let resolved = resolve_origins_indexed(index, spec);

    // Pass 1: BFS distances over allowed edges and nodes, on dense ids.
    let mut dist: Vec<u32> = vec![u32::MAX; index.column_count()];
    let mut touched: Vec<ColumnId> = Vec::new();
    let mut queue: VecDeque<ColumnId> = VecDeque::new();
    for (_, id) in &resolved {
        if let Some(id) = *id {
            if dist[id.index()] == u32::MAX {
                dist[id.index()] = 0;
                touched.push(id);
                queue.push_back(id);
            }
        }
    }
    while let Some(current) = queue.pop_front() {
        let d = dist[current.index()];
        if spec.max_depth.is_some_and(|limit| d as usize >= limit) {
            continue;
        }
        let row = match spec.direction {
            Direction::Downstream => index.out_edges(current),
            Direction::Upstream => index.in_edges(current),
        };
        for &(next, kind) in row {
            if !spec.allows_edge(kind) {
                continue;
            }
            let next = ColumnId::from_index(next as usize);
            if dist[next.index()] != u32::MAX
                || !spec.allows_node_id(index, index.column_relation(next))
            {
                continue;
            }
            dist[next.index()] = d + 1;
            touched.push(next);
            queue.push_back(next);
        }
    }
    query_metrics().bfs_nodes.add(touched.len() as u64);

    // Pass 2: merge the edge kinds of every shortest-path predecessor.
    // Predecessors of a reached column are exactly its CSR neighbours in
    // the *opposite* direction sitting one hop closer to the origins.
    let mut matches: Vec<(u32, ColumnId, EdgeKind)> = Vec::new();
    for &id in &touched {
        let d = dist[id.index()];
        if d == 0 {
            continue;
        }
        let mut contributes = false;
        let mut references = false;
        let preds = match spec.direction {
            Direction::Downstream => index.in_edges(id),
            Direction::Upstream => index.out_edges(id),
        };
        for &(pred, kind) in preds {
            let pd = dist[pred as usize];
            if pd == u32::MAX || pd + 1 != d || !spec.allows_edge(kind) {
                continue;
            }
            contributes |= matches!(kind, EdgeKind::Contribute | EdgeKind::Both);
            references |= matches!(kind, EdgeKind::Reference | EdgeKind::Both);
        }
        let kind = match (contributes, references) {
            (true, true) => EdgeKind::Both,
            (true, false) => EdgeKind::Contribute,
            _ => EdgeKind::Reference,
        };
        matches.push((d, id, kind));
    }
    matches.sort_unstable_by_key(|&(d, id, _)| (d, id));
    let columns = matches
        .into_iter()
        .map(|(d, id, kind)| ColumnMatch {
            column: index.source_column(id),
            kind,
            distance: d as usize,
        })
        .collect();

    let path = spec
        .target
        .as_ref()
        .and_then(|target| shortest_path_indexed(index, spec, &resolved, target));

    // Relations reached, with min distance over their columns; unknown
    // origins count as distance-0 members of their (possibly unknown)
    // relation.
    let mut relation_distance: BTreeMap<&str, usize> = BTreeMap::new();
    for &id in &touched {
        let name = index.relation_name(index.column_relation(id));
        let d = dist[id.index()] as usize;
        relation_distance.entry(name).and_modify(|cur| *cur = (*cur).min(d)).or_insert(d);
    }
    let unknown: Vec<&SourceColumn> =
        resolved.iter().filter(|(_, id)| id.is_none()).map(|(col, _)| col).collect();
    for col in &unknown {
        relation_distance.entry(col.table.as_str()).and_modify(|cur| *cur = 0).or_insert(0);
    }
    let mut relations: Vec<RelationMatch> = relation_distance
        .into_iter()
        .map(|(name, distance)| RelationMatch { name: name.to_string(), distance })
        .collect();
    relations.sort_by(|a, b| (a.distance, &a.name).cmp(&(b.distance, &b.name)));

    let subgraph = slice_subgraph_indexed(index, spec, &dist, &touched, &unknown);
    QueryAnswer {
        direction: spec.direction,
        origins: resolved.into_iter().map(|(col, _)| col).collect(),
        columns,
        relations,
        path,
        subgraph,
    }
}

/// Indexed BFS shortest path from any origin to `target`.
fn shortest_path_indexed(
    index: &GraphIndex,
    spec: &QuerySpec,
    resolved: &[(SourceColumn, Option<ColumnId>)],
    target: &SourceColumn,
) -> Option<Vec<PathStep>> {
    let Some(target_id) = index.lookup_column(&target.table, &target.column) else {
        // An unindexed target is reachable only as a trivial path to an
        // origin naming the same column.
        return resolved.iter().any(|(origin, _)| origin == target).then(Vec::new);
    };
    let mut predecessor: Vec<u32> = vec![u32::MAX; index.column_count()];
    let mut pred_kind: Vec<EdgeKind> = vec![EdgeKind::Contribute; index.column_count()];
    let mut visited: Vec<bool> = vec![false; index.column_count()];
    let mut queue: VecDeque<(ColumnId, usize)> = VecDeque::new();
    for (_, id) in resolved {
        if let Some(id) = *id {
            if !visited[id.index()] {
                visited[id.index()] = true;
                queue.push_back((id, 0));
            }
        }
    }
    while let Some((current, d)) = queue.pop_front() {
        if current == target_id {
            let mut path = Vec::new();
            let mut cursor = current;
            while predecessor[cursor.index()] != u32::MAX {
                path.push(PathStep {
                    column: index.source_column(cursor),
                    kind: pred_kind[cursor.index()],
                });
                cursor = ColumnId::from_index(predecessor[cursor.index()] as usize);
            }
            path.reverse();
            return Some(path);
        }
        if spec.max_depth.is_some_and(|limit| d >= limit) {
            continue;
        }
        let row = match spec.direction {
            Direction::Downstream => index.out_edges(current),
            Direction::Upstream => index.in_edges(current),
        };
        for &(next, kind) in row {
            if !spec.allows_edge(kind) {
                continue;
            }
            let next = ColumnId::from_index(next as usize);
            if visited[next.index()] || !spec.allows_node_id(index, index.column_relation(next)) {
                continue;
            }
            visited[next.index()] = true;
            predecessor[next.index()] = current.index() as u32;
            pred_kind[next.index()] = kind;
            queue.push_back((next, d + 1));
        }
    }
    None
}

/// Table-granularity execution over the index's relation-level CSR.
fn run_tables_indexed(index: &GraphIndex, spec: &QuerySpec) -> QueryAnswer {
    let mut seen = BTreeSet::new();
    let mut origin_names: Vec<String> = Vec::new();
    for origin in &spec.origins {
        let name = match origin {
            OriginSpec::Table(name) => name.clone(),
            OriginSpec::Column(col) => col.table.clone(),
        };
        if seen.insert(name.clone()) {
            origin_names.push(name);
        }
    }

    let mut dist: Vec<u32> = vec![u32::MAX; index.relation_count()];
    let mut reached: Vec<RelationId> = Vec::new();
    let mut unknown_relations: Vec<&str> = Vec::new();
    let mut queue: VecDeque<RelationId> = VecDeque::new();
    for name in &origin_names {
        match index.lookup_relation(name) {
            Some(rel) if dist[rel.index()] == u32::MAX => {
                dist[rel.index()] = 0;
                reached.push(rel);
                queue.push_back(rel);
            }
            Some(_) => {}
            None => unknown_relations.push(name.as_str()),
        }
    }
    while let Some(current) = queue.pop_front() {
        let d = dist[current.index()];
        if spec.max_depth.is_some_and(|limit| d as usize >= limit) {
            continue;
        }
        let row = match spec.direction {
            Direction::Downstream => index.table_out(current),
            Direction::Upstream => index.table_in(current),
        };
        for &(next, _) in row {
            let next = RelationId::from_index(next as usize);
            if dist[next.index()] != u32::MAX || !spec.allows_node_id(index, next) {
                continue;
            }
            dist[next.index()] = d + 1;
            reached.push(next);
            queue.push_back(next);
        }
    }
    query_metrics().bfs_nodes.add(reached.len() as u64);

    let mut relation_distance: BTreeMap<&str, usize> = BTreeMap::new();
    for &rel in &reached {
        relation_distance.insert(index.relation_name(rel), dist[rel.index()] as usize);
    }
    for name in &unknown_relations {
        relation_distance.entry(name).or_insert(0);
    }
    let mut relations: Vec<RelationMatch> = relation_distance
        .into_iter()
        .map(|(name, distance)| RelationMatch { name: name.to_string(), distance })
        .collect();
    relations.sort_by(|a, b| (a.distance, &a.name).cmp(&(b.distance, &b.name)));

    // The cone at table granularity includes every declared column of
    // the touched relations (relations without a node contribute none).
    // Deduplicate as we go: same-named outputs repeat their ColumnId in
    // the declared list, and the slice must enumerate each column's
    // edges exactly once.
    let mut col_dist: Vec<u32> = vec![u32::MAX; index.column_count()];
    let mut touched: Vec<ColumnId> = Vec::new();
    for &rel in &reached {
        for &col in index.declared_columns(rel) {
            if col_dist[col.index()] == u32::MAX {
                col_dist[col.index()] = 0;
                touched.push(col);
            }
        }
    }
    let subgraph = slice_subgraph_indexed(index, spec, &col_dist, &touched, &[]);
    QueryAnswer {
        direction: spec.direction,
        origins: origin_names.into_iter().map(|name| SourceColumn::new(name, "")).collect(),
        columns: Vec::new(),
        relations,
        path: None,
        subgraph,
    }
}

/// Indexed cone slicing: touched relations with declared-order column
/// lists restricted to the touched set, plus every kept edge between
/// touched columns — enumerated straight off the reverse CSR, cost
/// proportional to the cone.
fn slice_subgraph_indexed(
    index: &GraphIndex,
    spec: &QuerySpec,
    dist: &[u32],
    touched: &[ColumnId],
    unknown: &[&SourceColumn],
) -> Subgraph {
    let mut by_table: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for &id in touched {
        by_table
            .entry(index.relation_name(index.column_relation(id)))
            .or_default()
            .insert(index.column_name(id));
    }
    for col in unknown {
        by_table.entry(col.table.as_str()).or_default().insert(col.column.as_str());
    }
    let mut nodes = BTreeMap::new();
    for (table, columns) in &by_table {
        let indexed_node = index
            .lookup_relation(table)
            .and_then(|rel| index.relation_kind(rel).map(|kind| (rel, kind)));
        let node = match indexed_node {
            Some((rel, kind)) => Node {
                name: (*table).to_string(),
                kind,
                columns: index
                    .declared_columns(rel)
                    .iter()
                    .map(|&c| index.column_name(c))
                    .filter(|c| columns.contains(c))
                    .map(str::to_string)
                    .collect(),
            },
            None => Node {
                name: (*table).to_string(),
                kind: NodeKind::External,
                columns: columns.iter().map(|c| (*c).to_string()).collect(),
            },
        };
        nodes.insert((*table).to_string(), node);
    }
    // The edge-kind filter is a column-granularity concept; table-level
    // cones keep every edge between their relations (see the string-walk
    // twin for the rationale).
    let keep = |kind: EdgeKind| match spec.granularity {
        Granularity::Column => spec.allows_edge(kind),
        Granularity::Table => true,
    };
    let mut edge_ids: Vec<(u32, ColumnId, EdgeKind)> = Vec::new();
    for &id in touched {
        for &(from, kind) in index.in_edges(id) {
            if dist[from as usize] != u32::MAX && keep(kind) {
                edge_ids.push((from, id, kind));
            }
        }
    }
    edge_ids.sort_unstable_by_key(|&(from, to, _)| (from, to));
    let edges = edge_ids
        .into_iter()
        .map(|(from, to, kind)| Edge {
            from: index.source_column(ColumnId::from_index(from as usize)),
            to: index.source_column(to),
            kind,
        })
        .collect();
    Subgraph { nodes, edges }
}

/// The fluent query builder returned by [`crate::LineageView::query`]:
/// accumulates a [`QuerySpec`], then settles the backing view and runs
/// the spec against its graph.
pub struct GraphQuery<'v, V: crate::view::LineageView> {
    view: &'v mut V,
    spec: QuerySpec,
}

impl<'v, V: crate::view::LineageView> GraphQuery<'v, V> {
    /// Start an empty query over a view.
    pub fn new(view: &'v mut V) -> Self {
        GraphQuery { view, spec: QuerySpec::new() }
    }

    /// Add an origin from a `table.column` spec (no dot = whole relation).
    pub fn from(mut self, spec: &str) -> Self {
        self.spec = self.spec.from(spec);
        self
    }

    /// Add one column origin.
    pub fn from_column(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.spec = self.spec.from_column(table, column);
        self
    }

    /// Add a whole-relation origin.
    pub fn from_table(mut self, name: impl Into<String>) -> Self {
        self.spec = self.spec.from_table(name);
        self
    }

    /// Walk downstream (the default).
    pub fn downstream(mut self) -> Self {
        self.spec = self.spec.downstream();
        self
    }

    /// Walk upstream.
    pub fn upstream(mut self) -> Self {
        self.spec = self.spec.upstream();
        self
    }

    /// Stop after `depth` hops.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.spec = self.spec.max_depth(depth);
        self
    }

    /// Only traverse edges of this kind (repeatable).
    pub fn edge_kind(mut self, kind: EdgeKind) -> Self {
        self.spec = self.spec.edge_kind(kind);
        self
    }

    /// Only traverse into relations of this node kind (repeatable).
    pub fn node_kind(mut self, kind: NodeKind) -> Self {
        self.spec = self.spec.node_kind(kind);
        self
    }

    /// Switch to table granularity.
    pub fn table_level(mut self) -> Self {
        self.spec = self.spec.table_level();
        self
    }

    /// Also compute the shortest path to this column.
    pub fn to(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.spec = self.spec.to(table, column);
        self
    }

    /// The accumulated spec.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Settle the view (refreshing an incremental backend if needed) and
    /// execute over its cached [`GraphIndex`].
    pub fn run(self) -> Result<QueryAnswer, crate::error::LineageError> {
        let index = self.view.settled_index()?;
        Ok(self.spec.run_with(&index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::lineagex;

    fn graph() -> LineageGraph {
        lineagex(
            "CREATE TABLE base (a int, k int);
             CREATE VIEW mid AS SELECT a AS b FROM base WHERE k > 0;
             CREATE VIEW top AS SELECT b AS c FROM mid;",
        )
        .unwrap()
        .graph
    }

    #[test]
    fn downstream_matches_cover_the_cone() {
        let answer = QuerySpec::new().from("base.a").run_on(&graph());
        let names: Vec<String> = answer.columns.iter().map(|m| m.column.to_string()).collect();
        assert_eq!(names, vec!["mid.b", "top.c"]);
        assert_eq!(answer.columns[0].distance, 1);
        assert_eq!(answer.columns[1].distance, 2);
        assert_eq!(answer.origins, vec![SourceColumn::new("base", "a")]);
    }

    #[test]
    fn depth_limit_cuts_the_cone() {
        let answer = QuerySpec::new().from("base.a").max_depth(1).run_on(&graph());
        let names: Vec<String> = answer.columns.iter().map(|m| m.column.to_string()).collect();
        assert_eq!(names, vec!["mid.b"]);
        // Depth 0 keeps only the origins.
        let answer = QuerySpec::new().from("base.a").max_depth(0).run_on(&graph());
        assert!(answer.columns.is_empty());
        assert_eq!(answer.relations.len(), 1);
    }

    #[test]
    fn edge_kind_filter_drops_reference_only_reaches() {
        // base.k only feeds mid through its WHERE clause.
        let answer =
            QuerySpec::new().from("base.k").edge_kind(EdgeKind::Contribute).run_on(&graph());
        assert!(answer.columns.is_empty());
        let answer =
            QuerySpec::new().from("base.k").edge_kind(EdgeKind::Reference).run_on(&graph());
        assert_eq!(answer.columns[0].column, SourceColumn::new("mid", "b"));
    }

    #[test]
    fn multi_origin_traversal_merges_distances() {
        let answer = QuerySpec::new().from("base.a").from("mid.b").run_on(&graph());
        // top.c is distance 1 from mid.b even though it is 2 from base.a.
        let top = answer.columns.iter().find(|m| m.column.table == "top").unwrap();
        assert_eq!(top.distance, 1);
        assert_eq!(answer.origins.len(), 2);
    }

    #[test]
    fn whole_table_origin_expands_to_all_columns() {
        let answer = QuerySpec::new().from("base").run_on(&graph());
        assert_eq!(
            answer.origins,
            vec![SourceColumn::new("base", "a"), SourceColumn::new("base", "k")]
        );
        assert!(answer.columns.iter().any(|m| m.column.table == "mid"));
    }

    #[test]
    fn upstream_walks_back_to_sources() {
        let answer = QuerySpec::new().from("top.c").upstream().run_on(&graph());
        let names: Vec<String> = answer.columns.iter().map(|m| m.column.to_string()).collect();
        assert_eq!(names, vec!["mid.b", "base.a", "base.k"]);
        let k = answer.columns.iter().find(|m| m.column.column == "k").unwrap();
        assert_eq!(k.kind, EdgeKind::Reference);
    }

    #[test]
    fn node_kind_filter_blocks_traversal() {
        // Refusing to enter View nodes stops the walk immediately.
        let answer =
            QuerySpec::new().from("base.a").node_kind(NodeKind::BaseTable).run_on(&graph());
        assert!(answer.columns.is_empty());
    }

    #[test]
    fn subgraph_is_a_renderable_cone() {
        let answer = QuerySpec::new().from("base.a").run_on(&graph());
        assert_eq!(answer.subgraph.nodes.keys().collect::<Vec<_>>(), vec!["base", "mid", "top"]);
        // base's untouched column k stays out of the slice.
        assert_eq!(answer.subgraph.nodes["base"].columns, vec!["a"]);
        assert_eq!(answer.edges().len(), 2);
        assert!(answer.edges().iter().all(|e| e.kind == EdgeKind::Contribute));
    }

    #[test]
    fn path_to_target_is_reported() {
        let answer = QuerySpec::new().from("base.a").to("top", "c").run_on(&graph());
        let path = answer.path.unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[1].column, SourceColumn::new("top", "c"));
        // Unreachable target: no path, cone still reported.
        let answer = QuerySpec::new().from("top.c").to("base", "a").run_on(&graph());
        assert!(answer.path.is_none());
    }

    #[test]
    fn table_level_explores_relations() {
        let answer = QuerySpec::new().from_table("base").table_level().run_on(&graph());
        let names: Vec<&str> = answer.relations.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["base", "mid", "top"]);
        assert_eq!(answer.relations[1].distance, 1);
        assert!(answer.columns.is_empty());
        // Depth 1 = one explore click.
        let answer =
            QuerySpec::new().from_table("base").table_level().max_depth(1).run_on(&graph());
        let names: Vec<&str> = answer.relations.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["base", "mid"]);
    }

    #[test]
    fn table_level_cone_keeps_edges_despite_edge_filter() {
        // Edge-kind filters are a column-granularity concept: a
        // table-level traversal ignores them both in the walk and in the
        // rendered cone, so no node ever shows up disconnected from the
        // traversal that reached it.
        let g = lineagex(
            "CREATE TABLE base (a int, k int);
             CREATE VIEW filtered AS SELECT a FROM base WHERE k > 0;",
        )
        .unwrap()
        .graph;
        let answer = QuerySpec::new()
            .from_table("base")
            .table_level()
            .edge_kind(EdgeKind::Contribute)
            .run_on(&g);
        let names: Vec<&str> = answer.relations.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["base", "filtered"]);
        // The reference edge (base.k -> filtered.a) survives in the cone.
        assert!(answer.edges().iter().any(|e| e.kind == EdgeKind::Reference));
    }

    #[test]
    fn subgraph_edges_match_full_graph_restriction() {
        // The targeted cone enumeration must agree with filtering the
        // whole graph's edge set down to the touched columns.
        let g = graph();
        let answer = QuerySpec::new().from("base").run_on(&g);
        let touched: std::collections::BTreeSet<&SourceColumn> =
            answer.origins.iter().chain(answer.columns.iter().map(|m| &m.column)).collect();
        let expected: Vec<Edge> = g
            .all_edges()
            .into_iter()
            .filter(|e| touched.contains(&e.from) && touched.contains(&e.to))
            .collect();
        assert_eq!(answer.subgraph.edges, expected);
        assert!(!expected.is_empty());
    }

    #[test]
    fn unknown_origin_yields_empty_answer() {
        let answer = QuerySpec::new().from("ghost.col").run_on(&graph());
        assert!(answer.columns.is_empty());
        assert_eq!(answer.origins, vec![SourceColumn::new("ghost", "col")]);
        let answer = QuerySpec::new().from("ghost_table").run_on(&graph());
        assert!(answer.origins.is_empty());
    }

    /// Every spec shape the builder can express, for the indexed-vs-
    /// string equivalence sweeps below.
    fn spec_zoo() -> Vec<QuerySpec> {
        vec![
            QuerySpec::new().from("base.a"),
            QuerySpec::new().from("base.a").max_depth(1),
            QuerySpec::new().from("base.a").max_depth(0),
            QuerySpec::new().from("base.k").edge_kind(EdgeKind::Contribute),
            QuerySpec::new().from("base.k").edge_kind(EdgeKind::Reference),
            QuerySpec::new().from("base.a").from("mid.b"),
            QuerySpec::new().from("base"),
            QuerySpec::new().from("top.c").upstream(),
            QuerySpec::new().from("base.a").node_kind(NodeKind::BaseTable),
            QuerySpec::new().from("base.a").to("top", "c"),
            QuerySpec::new().from("top.c").to("base", "a"),
            QuerySpec::new().from("base.a").to("base", "a"),
            QuerySpec::new().from_table("base").table_level(),
            QuerySpec::new().from_table("base").table_level().max_depth(1),
            QuerySpec::new().from_table("top").table_level().upstream(),
            QuerySpec::new().from("ghost.col"),
            QuerySpec::new().from("ghost.col").to("ghost", "col"),
            QuerySpec::new().from("base.ghost"),
            QuerySpec::new().from_table("ghost_table").table_level(),
            QuerySpec::new().from("mid.b").upstream().edge_kind(EdgeKind::Reference),
        ]
    }

    #[test]
    fn indexed_execution_matches_the_string_walk() {
        let g = graph();
        let index = crate::graph::GraphIndex::build(&g);
        for (i, spec) in spec_zoo().into_iter().enumerate() {
            let legacy = spec.run_on_unindexed(&g);
            let indexed = spec.run_with(&index);
            assert_eq!(indexed, legacy, "spec #{i} diverged");
            assert_eq!(
                serde_json::to_string(&indexed).unwrap(),
                serde_json::to_string(&legacy).unwrap(),
                "spec #{i} serialisation diverged"
            );
        }
    }

    #[test]
    fn indexed_execution_matches_on_self_loops_and_writes() {
        // INSERT-into-self and multi-writer targets stress the table
        // level: self edges, '#'-suffixed ids, shared scan sources.
        let g = lineagex(
            "CREATE TABLE t (a int);
             CREATE TABLE s (b int);
             INSERT INTO t SELECT a + 1 FROM t;
             INSERT INTO t SELECT b FROM s WHERE b > 0;",
        )
        .unwrap()
        .graph;
        let index = crate::graph::GraphIndex::build(&g);
        for spec in [
            QuerySpec::new().from("t.a"),
            QuerySpec::new().from("t.a").upstream(),
            QuerySpec::new().from_table("t").table_level(),
            QuerySpec::new().from_table("t").table_level().upstream(),
            QuerySpec::new().from_table("s").table_level().max_depth(1),
        ] {
            assert_eq!(spec.run_with(&index), spec.run_on_unindexed(&g));
        }
    }

    #[test]
    fn indexed_execution_matches_on_duplicate_output_names() {
        // `SELECT a AS x, b AS x` writes one graph column `v.x` through
        // two projection slots. Both implementations treat the
        // duplicates as one column with merged C_con (the `all_edges`
        // semantics), in every direction and granularity.
        let g = lineagex(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a AS x, b AS x FROM t WHERE b > 0;",
        )
        .unwrap()
        .graph;
        assert_eq!(g.queries["v"].outputs.len(), 2, "the projection must keep both slots");
        let index = crate::graph::GraphIndex::build(&g);
        for spec in [
            QuerySpec::new().from("t.a"),
            QuerySpec::new().from("t.b"),
            QuerySpec::new().from("v.x").upstream(),
            QuerySpec::new().from("t.a").to("v", "x"),
            QuerySpec::new().from_table("t").table_level(),
            QuerySpec::new().from_table("v").table_level().upstream(),
        ] {
            let legacy = spec.run_on_unindexed(&g);
            let indexed = spec.run_with(&index);
            assert_eq!(indexed, legacy);
            // A table-level cone must list the duplicate-named edge once.
            let unique: BTreeSet<&Edge> = indexed.subgraph.edges.iter().collect();
            assert_eq!(unique.len(), indexed.subgraph.edges.len(), "no duplicate edges");
        }
        // The merged upstream sees *both* contributing sources.
        let up = QuerySpec::new().from("v.x").upstream().run_on(&g);
        assert!(up.reaches(&SourceColumn::new("t", "a")));
        assert!(up.reaches(&SourceColumn::new("t", "b")));
        let a = up.columns.iter().find(|m| m.column.column == "a").unwrap();
        assert_eq!(a.kind, EdgeKind::Contribute);
        let b = up.columns.iter().find(|m| m.column.column == "b").unwrap();
        assert_eq!(b.kind, EdgeKind::Both, "b contributes and is referenced by the WHERE");
    }

    #[test]
    fn run_on_uses_the_indexed_path() {
        // `run_on` is now a build-and-run convenience over `run_with`:
        // same answer object either way.
        let g = graph();
        let index = crate::graph::GraphIndex::build(&g);
        let spec = QuerySpec::new().from("base.a").to("top", "c");
        assert_eq!(spec.run_on(&g), spec.run_with(&index));
    }
}
