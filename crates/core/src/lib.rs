//! # lineagex-core
//!
//! The LineageX column-lineage extraction engine — a Rust reproduction of
//! the system demonstrated in *"LineageX: A Column Lineage Extraction
//! System for SQL"* (ICDE 2025).
//!
//! Given a set of SQL statements (a query log, view definitions, or
//! dbt-style named models), LineageX infers, **without executing
//! anything**:
//!
//! * table-level lineage `T` — which relations each query reads;
//! * column-level lineage — for each output column, the contributing
//!   inputs `C_con`, plus the query-level referenced set `C_ref`
//!   (predicates, grouping, ordering, set-operation branches) and their
//!   intersection `C_both`;
//! * a combined [`model::LineageGraph`] over base tables, views, and
//!   query results, ready for impact analysis and visualisation.
//!
//! The pipeline follows the paper's architecture (Fig. 3):
//!
//! 1. [`preprocess`] — the SQL Preprocessing Module builds the **Query
//!    Dictionary** mapping identifiers to query bodies;
//! 2. `lineagex-sqlparse` — the Transformation Module produces ASTs;
//! 3. `extract` (internal) — the Lineage Information Extraction Module traverses
//!    each AST post-order, applying the keyword rules of Table I;
//! 4. [`infer`] — **Table/View Auto-Inference** reorders processing with a
//!    LIFO deferral stack so `SELECT *` and prefix-less columns resolve
//!    even when definitions arrive out of order;
//! 5. [`explain_path`] — the optional connected mode, using a simulated
//!    PostgreSQL `EXPLAIN` as a metadata oracle.
//!
//! ## Quick start
//!
//! ```
//! let result = lineagex_core::lineagex(
//!     "CREATE TABLE web (cid int, date date, page text, reg boolean);
//!      CREATE VIEW webinfo AS
//!        SELECT cid AS wcid, page AS wpage FROM web WHERE reg;",
//! ).unwrap();
//!
//! let webinfo = &result.graph.queries["webinfo"];
//! assert_eq!(webinfo.output_names(), vec!["wcid", "wpage"]);
//! // web.reg is referenced (C_ref) but contributes to no output.
//! assert!(webinfo.cref.iter().any(|c| c.column == "reg"));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod api;
pub mod diagnostics;
pub mod error;
pub mod explain_path;
pub(crate) mod extract;
pub mod graph;
pub mod impact;
pub mod infer;
pub mod model;
pub mod options;
pub mod preprocess;
pub mod query;
pub mod report;
pub mod snapshot;
pub mod trace;
pub mod view;

pub use api::{lineagex, lineagex_lenient, LineageX};
pub use diagnostics::{Diagnostic, DiagnosticCode, DiagnosticSpan, Severity};
pub use error::LineageError;
pub use explain_path::ExplainPathExtractor;
pub use graph::{ColumnId, GraphIndex, GraphIndexCache, Interner, RelationId, Symbol};
pub use impact::{explore, impact_of, path_between, upstream_of, ExploreStep, ImpactReport};
pub use infer::{
    assemble_graph, assemble_nodes, cycle_stub, extract_entry, InferenceEngine, LineageResult,
};
pub use lineagex_sqlparse::DialectKind;
pub use model::{
    Edge, EdgeKind, GraphStats, LineageGraph, Node, NodeKind, OutputColumn, QueryKind,
    QueryLineage, SourceColumn,
};
pub use options::{AmbiguityPolicy, ExtractOptions};
pub use preprocess::{preprocess_statement, PreprocessedStatement, QueryDict, QueryEntry};
pub use query::{
    ColumnMatch, Direction, GraphQuery, PathStep, QueryAnswer, QuerySpec, RelationMatch, Subgraph,
};
pub use report::{JsonReport, QueryReport, ReportV2, SCHEMA_VERSION};
pub use snapshot::{
    read_snapshot, read_snapshot_file, write_snapshot, write_snapshot_file, GraphSnapshot,
    SnapshotEntry, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use trace::{Rule, TraceLog, TraceStep};
pub use view::LineageView;
