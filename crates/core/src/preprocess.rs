//! The SQL Preprocessing Module (paper §III).
//!
//! Scans a query log and records the mapping from each query's identifier
//! to its defining `SELECT` body, producing the **Query Dictionary** (QD):
//!
//! * `CREATE VIEW v AS ...` / `CREATE TABLE t AS ...` → identifier `v`/`t`;
//! * `INSERT INTO t ...` → identifier `t` (suffixed `t#2`, `t#3`, ... for
//!   repeat writers);
//! * bare `SELECT` → a generated identifier `query_N` (the paper uses a
//!   random id; we number deterministically for reproducibility), or the
//!   source name when the log comes from named files (the paper's
//!   dbt-style wrapper, footnote 1);
//! * plain `CREATE TABLE` DDL carries no lineage but contributes schema,
//!   collected into [`QueryDict::ddl_catalog`];
//! * `DROP` statements are skipped with a warning.

use crate::error::LineageError;
use crate::model::{QueryKind, Warning};
use lineagex_catalog::{Catalog, Column, TableSchema};
use lineagex_sqlparse::ast::{Query, Statement};
use lineagex_sqlparse::parse_sql;

/// One entry of the Query Dictionary.
#[derive(Debug, Clone)]
pub struct QueryEntry {
    /// The query identifier (relation name or generated id).
    pub id: String,
    /// Statement kind for the lineage record.
    pub kind: QueryKind,
    /// The full parsed statement.
    pub statement: Statement,
    /// The defining query: the `SELECT` body, or the synthesised
    /// equivalent for `UPDATE` (see [`Statement::update_as_query`]).
    pub query: Query,
    /// Explicit output column names (`CREATE VIEW v(a, b)` / INSERT column
    /// list), empty when none were written.
    pub declared_columns: Vec<String>,
}

impl QueryEntry {
    /// The defining query (the `SELECT` body).
    pub fn query(&self) -> &Query {
        &self.query
    }
}

/// What preprocessing turned one statement into.
///
/// [`QueryDict::from_sql`] folds a whole log through this classification;
/// the incremental engine (`lineagex-engine`) applies it one statement at
/// a time, so both paths share exactly one set of preprocessing rules.
#[derive(Debug, Clone)]
pub enum PreprocessedStatement {
    /// A lineage-bearing Query-Dictionary entry (boxed: an entry is two
    /// orders of magnitude larger than the other variants).
    Entry(Box<QueryEntry>),
    /// Plain DDL: contributes schema, not lineage.
    Schema(TableSchema),
    /// A `DROP`: the dropped base names, as written. The one-shot pipeline
    /// records these as skipped; a session engine retracts them.
    Drop(Vec<String>),
    /// A statement carrying neither lineage nor schema.
    Skipped(Warning),
}

/// Classify one statement exactly as the Query Dictionary does.
///
/// `source_name` is the dbt-style file name for bare `SELECT`s,
/// `anon_counter` numbers anonymous queries (`query_N`), and `taken`
/// reports identifiers already in use so repeat `INSERT`/`UPDATE` targets
/// disambiguate (`t`, `t#2`, ...). Duplicate-id handling is the caller's
/// job: the one-shot dictionary rejects duplicates, a session replaces.
pub fn preprocess_statement(
    stmt: Statement,
    source_name: Option<&str>,
    anon_counter: &mut usize,
    taken: &mut dyn FnMut(&str) -> bool,
) -> PreprocessedStatement {
    match stmt {
        Statement::CreateView { ref name, ref columns, materialized, .. } => {
            let id = name.base_name().to_string();
            let declared = columns.iter().map(|c| c.value.clone()).collect();
            let query = stmt.defining_query().expect("view has a query").clone();
            PreprocessedStatement::Entry(Box::new(QueryEntry {
                id,
                kind: QueryKind::View { materialized },
                statement: stmt,
                query,
                declared_columns: declared,
            }))
        }
        Statement::CreateTable { ref name, ref columns, query: Some(_), .. } => {
            let id = name.base_name().to_string();
            let declared = columns.iter().map(|c| c.name.value.clone()).collect();
            let query = stmt.defining_query().expect("CTAS has a query").clone();
            PreprocessedStatement::Entry(Box::new(QueryEntry {
                id,
                kind: QueryKind::TableAs,
                statement: stmt,
                query,
                declared_columns: declared,
            }))
        }
        Statement::CreateTable { ref name, ref columns, query: None, .. } => {
            PreprocessedStatement::Schema(TableSchema::base_table(
                name.base_name().to_string(),
                columns
                    .iter()
                    .map(|c| Column::new(c.name.value.clone(), c.data_type.to_string()))
                    .collect(),
            ))
        }
        Statement::Insert { ref table, ref columns, .. } => {
            let id = unique_target_id(table.base_name(), taken);
            let declared = columns.iter().map(|c| c.value.clone()).collect();
            let query = stmt.defining_query().expect("insert has a source").clone();
            PreprocessedStatement::Entry(Box::new(QueryEntry {
                id,
                kind: QueryKind::Insert,
                statement: stmt,
                query,
                declared_columns: declared,
            }))
        }
        Statement::Update { ref table, .. } => {
            let id = unique_target_id(table.base_name(), taken);
            let query = stmt.update_as_query().expect("update synthesises");
            PreprocessedStatement::Entry(Box::new(QueryEntry {
                id,
                kind: QueryKind::Update,
                statement: stmt,
                query,
                declared_columns: Vec::new(),
            }))
        }
        Statement::Query(_) => {
            let id = match source_name {
                Some(name) => name.to_string(),
                None => {
                    *anon_counter += 1;
                    format!("query_{anon_counter}")
                }
            };
            let query = stmt.defining_query().expect("bare query").clone();
            PreprocessedStatement::Entry(Box::new(QueryEntry {
                id,
                kind: QueryKind::Select,
                statement: stmt,
                query,
                declared_columns: Vec::new(),
            }))
        }
        Statement::Drop { ref names, .. } => {
            PreprocessedStatement::Drop(names.iter().map(|n| n.base_name().to_string()).collect())
        }
        Statement::Delete { ref table, .. } => {
            // A DELETE creates no columns; only its target matters for
            // lineage, so it is recorded as skipped.
            PreprocessedStatement::Skipped(Warning::SkippedStatement {
                what: format!("DELETE FROM {}", table.base_name()),
            })
        }
    }
}

/// First free identifier for a write target: `base`, then `base#2`, ...
fn unique_target_id(base: &str, taken: &mut dyn FnMut(&str) -> bool) -> String {
    if !taken(base) {
        return base.to_string();
    }
    let mut n = 2;
    loop {
        let candidate = format!("{base}#{n}");
        if !taken(&candidate) {
            return candidate;
        }
        n += 1;
    }
}

/// The Query Dictionary: ordered entries plus the schema contributed by
/// plain DDL statements in the same log.
#[derive(Debug, Clone, Default)]
pub struct QueryDict {
    entries: Vec<QueryEntry>,
    /// Base-table schemas found in the log (plain `CREATE TABLE`).
    pub ddl_catalog: Catalog,
    /// Warnings produced during preprocessing (skipped statements).
    pub warnings: Vec<Warning>,
}

impl QueryDict {
    /// Build the dictionary from a `;`-separated SQL script.
    pub fn from_sql(sql: &str) -> Result<Self, LineageError> {
        let statements = parse_sql(sql)?;
        Self::from_statements(statements.into_iter().map(|s| (None, s)))
    }

    /// Build the dictionary from named sources (dbt-style: one query per
    /// file, the file name is the identifier for bare `SELECT`s).
    pub fn from_named_sources<'a, I>(sources: I) -> Result<Self, LineageError>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut pairs = Vec::new();
        for (name, sql) in sources {
            for stmt in parse_sql(sql)? {
                pairs.push((Some(name.to_string()), stmt));
            }
        }
        Self::from_statements(pairs)
    }

    fn from_statements<I>(statements: I) -> Result<Self, LineageError>
    where
        I: IntoIterator<Item = (Option<String>, Statement)>,
    {
        let mut dict = QueryDict::default();
        let mut anon_counter = 0usize;
        for (source_name, stmt) in statements {
            let preprocessed = {
                let entries = &dict.entries;
                preprocess_statement(stmt, source_name.as_deref(), &mut anon_counter, &mut |id| {
                    entries.iter().any(|e| e.id == id)
                })
            };
            match preprocessed {
                PreprocessedStatement::Entry(entry) => dict.push(*entry)?,
                PreprocessedStatement::Schema(schema) => dict.ddl_catalog.add_or_replace(schema),
                PreprocessedStatement::Drop(names) => dict
                    .warnings
                    .push(Warning::SkippedStatement { what: format!("DROP {}", names.join(", ")) }),
                PreprocessedStatement::Skipped(warning) => dict.warnings.push(warning),
            }
        }
        Ok(dict)
    }

    fn push(&mut self, entry: QueryEntry) -> Result<(), LineageError> {
        if self.contains(&entry.id) {
            return Err(LineageError::DuplicateQueryId(entry.id));
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Whether `id` names a dictionary entry.
    pub fn contains(&self, id: &str) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Look an entry up by id.
    pub fn get(&self, id: &str) -> Option<&QueryEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Entries in log order.
    pub fn entries(&self) -> &[QueryEntry] {
        &self.entries
    }

    /// All identifiers in log order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.id.as_str())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_views_by_created_name() {
        let qd = QueryDict::from_sql(
            "CREATE VIEW webinfo AS SELECT cid FROM web;
             CREATE TABLE snap AS SELECT * FROM webinfo;",
        )
        .unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["webinfo", "snap"]);
        assert!(matches!(qd.get("webinfo").unwrap().kind, QueryKind::View { .. }));
        assert!(matches!(qd.get("snap").unwrap().kind, QueryKind::TableAs));
    }

    #[test]
    fn generates_deterministic_ids_for_bare_selects() {
        let qd = QueryDict::from_sql("SELECT 1; SELECT 2").unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["query_1", "query_2"]);
    }

    #[test]
    fn named_sources_use_file_name() {
        let qd = QueryDict::from_named_sources([
            ("model_users", "SELECT cid FROM customers"),
            ("model_orders", "SELECT oid FROM orders"),
        ])
        .unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["model_users", "model_orders"]);
    }

    #[test]
    fn plain_ddl_feeds_catalog_not_entries() {
        let qd = QueryDict::from_sql(
            "CREATE TABLE web (cid int, page text);
             CREATE VIEW v AS SELECT page FROM web;",
        )
        .unwrap();
        assert_eq!(qd.len(), 1);
        assert!(qd.ddl_catalog.contains("web"));
        assert_eq!(qd.ddl_catalog.get("web").unwrap().columns.len(), 2);
    }

    #[test]
    fn insert_ids_disambiguate() {
        let qd = QueryDict::from_sql(
            "INSERT INTO t SELECT 1; INSERT INTO t SELECT 2; INSERT INTO t SELECT 3",
        )
        .unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["t", "t#2", "t#3"]);
    }

    #[test]
    fn duplicate_view_name_errors() {
        let err = QueryDict::from_sql("CREATE VIEW v AS SELECT 1; CREATE VIEW v AS SELECT 2")
            .unwrap_err();
        assert!(matches!(err, LineageError::DuplicateQueryId(id) if id == "v"));
    }

    #[test]
    fn drop_is_skipped_with_warning() {
        let qd = QueryDict::from_sql("DROP VIEW old_v; SELECT 1").unwrap();
        assert_eq!(qd.len(), 1);
        assert!(
            matches!(&qd.warnings[0], Warning::SkippedStatement { what } if what.contains("old_v"))
        );
    }

    #[test]
    fn declared_columns_recorded() {
        let qd = QueryDict::from_sql("CREATE VIEW v(a, b) AS SELECT 1, 2").unwrap();
        assert_eq!(qd.get("v").unwrap().declared_columns, vec!["a", "b"]);
    }

    #[test]
    fn preprocess_statement_classifies_each_kind() {
        let mut anon = 0usize;
        let classify = |sql: &str, anon: &mut usize| {
            let stmt = lineagex_sqlparse::parse_statement(sql).unwrap();
            preprocess_statement(stmt, None, anon, &mut |_| false)
        };
        assert!(matches!(
            classify("CREATE VIEW v AS SELECT 1", &mut anon),
            PreprocessedStatement::Entry(e) if e.id == "v"
        ));
        assert!(matches!(
            classify("CREATE TABLE t (a int)", &mut anon),
            PreprocessedStatement::Schema(s) if s.name == "t"
        ));
        assert!(matches!(
            classify("DROP VIEW a, b", &mut anon),
            PreprocessedStatement::Drop(names) if names == vec!["a", "b"]
        ));
        assert!(matches!(
            classify("DELETE FROM t", &mut anon),
            PreprocessedStatement::Skipped(Warning::SkippedStatement { .. })
        ));
        assert!(matches!(
            classify("SELECT 1", &mut anon),
            PreprocessedStatement::Entry(e) if e.id == "query_1"
        ));
        // A taken insert target disambiguates with a #N suffix.
        let stmt = lineagex_sqlparse::parse_statement("INSERT INTO t SELECT 1").unwrap();
        let mut t_taken = |id: &str| id == "t";
        assert!(matches!(
            preprocess_statement(stmt, None, &mut anon, &mut t_taken),
            PreprocessedStatement::Entry(e) if e.id == "t#2"
        ));
    }
}
