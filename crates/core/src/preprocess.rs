//! The SQL Preprocessing Module (paper §III).
//!
//! Scans a query log and records the mapping from each query's identifier
//! to its defining `SELECT` body, producing the **Query Dictionary** (QD):
//!
//! * `CREATE VIEW v AS ...` / `CREATE TABLE t AS ...` → identifier `v`/`t`;
//! * `INSERT INTO t ...` → identifier `t` (suffixed `t#2`, `t#3`, ... for
//!   repeat writers);
//! * bare `SELECT` → a generated identifier `query_N` (the paper uses a
//!   random id; we number deterministically for reproducibility), or the
//!   source name when the log comes from named files (the paper's
//!   dbt-style wrapper, footnote 1);
//! * plain `CREATE TABLE` DDL carries no lineage but contributes schema,
//!   collected into [`QueryDict::ddl_catalog`];
//! * `DROP` statements are skipped with a diagnostic;
//! * log noise (`EXPLAIN`, `SET`, transaction control, `ANALYZE`) is
//!   skipped with a typed [`Diagnostic`] instead of tripping the parser.
//!
//! In **lenient** mode ([`QueryDict::from_sql_lenient`]) the dictionary is
//! built with the recovering parser — unparsable statements become
//! span-tagged [`DiagnosticCode::ParseError`] diagnostics — and duplicate
//! identifiers resolve last-definition-wins (matching the session
//! engine's redefinition semantics) instead of aborting the run.

use crate::diagnostics::{Diagnostic, DiagnosticCode};
use crate::error::LineageError;
use crate::model::QueryKind;
use lineagex_catalog::{Catalog, Column, TableSchema};
use lineagex_sqlparse::ast::{Query, SpannedStatement, Statement};
use lineagex_sqlparse::{
    parse_sql_spanned_with, parse_statements_recovering_with, DialectKind, Span,
};

/// One entry of the Query Dictionary.
#[derive(Debug, Clone)]
pub struct QueryEntry {
    /// The query identifier (relation name or generated id).
    pub id: String,
    /// Statement kind for the lineage record.
    pub kind: QueryKind,
    /// The full parsed statement.
    pub statement: Statement,
    /// The source span the statement occupies in its script.
    pub span: Span,
    /// The defining query: the `SELECT` body, or the synthesised
    /// equivalent for `UPDATE` (see [`Statement::update_as_query`]).
    pub query: Query,
    /// Explicit output column names (`CREATE VIEW v(a, b)` / INSERT column
    /// list), empty when none were written.
    pub declared_columns: Vec<String>,
}

impl QueryEntry {
    /// The defining query (the `SELECT` body).
    pub fn query(&self) -> &Query {
        &self.query
    }
}

/// What preprocessing turned one statement into.
///
/// [`QueryDict::from_sql`] folds a whole log through this classification;
/// the incremental engine (`lineagex-engine`) applies it one statement at
/// a time, so both paths share exactly one set of preprocessing rules.
#[derive(Debug, Clone)]
pub enum PreprocessedStatement {
    /// A lineage-bearing Query-Dictionary entry (boxed: an entry is two
    /// orders of magnitude larger than the other variants).
    Entry(Box<QueryEntry>),
    /// Plain DDL: contributes schema, not lineage.
    Schema(TableSchema),
    /// A `DROP`: the dropped base names, as written, plus the statement's
    /// span. The one-shot pipeline records these as skipped; a session
    /// engine retracts them.
    Drop(Vec<String>, Span),
    /// A statement carrying neither lineage nor schema, with the typed
    /// diagnostic explaining why it was skipped.
    Skipped(Diagnostic),
}

/// Classify one statement exactly as the Query Dictionary does.
///
/// `source_name` is the dbt-style file name for bare `SELECT`s,
/// `anon_counter` numbers anonymous queries (`query_N`), and `taken`
/// reports identifiers already in use so repeat `INSERT`/`UPDATE` targets
/// disambiguate (`t`, `t#2`, ...). Duplicate-id handling is the caller's
/// job: the strict dictionary rejects duplicates, a lenient dictionary
/// and the session engine replace (last definition wins).
pub fn preprocess_statement(
    spanned: SpannedStatement,
    source_name: Option<&str>,
    anon_counter: &mut usize,
    taken: &mut dyn FnMut(&str) -> bool,
) -> PreprocessedStatement {
    let SpannedStatement { statement: stmt, span } = spanned;
    match stmt {
        Statement::CreateView { ref name, ref columns, materialized, .. } => {
            let id = name.base_name().to_string();
            let declared = columns.iter().map(|c| c.value.clone()).collect();
            let query = stmt.defining_query().expect("view has a query").clone();
            PreprocessedStatement::Entry(Box::new(QueryEntry {
                id,
                kind: QueryKind::View { materialized },
                statement: stmt,
                span,
                query,
                declared_columns: declared,
            }))
        }
        Statement::CreateTable { ref name, ref columns, query: Some(_), .. } => {
            let id = name.base_name().to_string();
            let declared = columns.iter().map(|c| c.name.value.clone()).collect();
            let query = stmt.defining_query().expect("CTAS has a query").clone();
            PreprocessedStatement::Entry(Box::new(QueryEntry {
                id,
                kind: QueryKind::TableAs,
                statement: stmt,
                span,
                query,
                declared_columns: declared,
            }))
        }
        Statement::CreateTable { ref name, ref columns, query: None, .. } => {
            PreprocessedStatement::Schema(TableSchema::base_table(
                name.base_name().to_string(),
                columns
                    .iter()
                    .map(|c| Column::new(c.name.value.clone(), c.data_type.to_string()))
                    .collect(),
            ))
        }
        Statement::Insert { ref table, ref columns, .. } => {
            let id = unique_target_id(table.base_name(), taken);
            let declared = columns.iter().map(|c| c.value.clone()).collect();
            let query = stmt.defining_query().expect("insert has a source").clone();
            PreprocessedStatement::Entry(Box::new(QueryEntry {
                id,
                kind: QueryKind::Insert,
                statement: stmt,
                span,
                query,
                declared_columns: declared,
            }))
        }
        Statement::Update { ref table, .. } => {
            let id = unique_target_id(table.base_name(), taken);
            let query = stmt.update_as_query().expect("update synthesises");
            PreprocessedStatement::Entry(Box::new(QueryEntry {
                id,
                kind: QueryKind::Update,
                statement: stmt,
                span,
                query,
                declared_columns: Vec::new(),
            }))
        }
        Statement::Query(_) => {
            let id = match source_name {
                Some(name) => name.to_string(),
                None => {
                    *anon_counter += 1;
                    format!("query_{anon_counter}")
                }
            };
            let query = stmt.defining_query().expect("bare query").clone();
            PreprocessedStatement::Entry(Box::new(QueryEntry {
                id,
                kind: QueryKind::Select,
                statement: stmt,
                span,
                query,
                declared_columns: Vec::new(),
            }))
        }
        Statement::Drop { ref names, .. } => PreprocessedStatement::Drop(
            names.iter().map(|n| n.base_name().to_string()).collect(),
            span,
        ),
        Statement::Delete { ref table, .. } => {
            // A DELETE creates no columns; only its target matters for
            // lineage, so it is recorded as skipped.
            PreprocessedStatement::Skipped(
                Diagnostic::new(
                    DiagnosticCode::SkippedStatement,
                    format!("skipped DELETE FROM {}", table.base_name()),
                )
                .with_span(span),
            )
        }
        Statement::Noise(noise) => PreprocessedStatement::Skipped(
            Diagnostic::new(
                DiagnosticCode::NoiseStatement,
                format!("skipped {} statement: {}", noise.kind.as_str(), noise.text),
            )
            .with_span(span),
        ),
        Statement::Merge(ref merge) => {
            // The parser recognises MERGE only under dialects that support
            // it, but does not model its WHEN clauses structurally, so the
            // statement degrades into a span-tagged fallback diagnostic
            // rather than pretending to know its lineage.
            let target = merge.target.base_name().to_string();
            PreprocessedStatement::Skipped(
                Diagnostic::new(
                    DiagnosticCode::DialectFallback,
                    format!("skipped MERGE INTO {target}: statement form not modelled for lineage"),
                )
                .for_statement(&target)
                .with_span(span),
            )
        }
    }
}

/// First free identifier for a write target: `base`, then `base#2`, ...
fn unique_target_id(base: &str, taken: &mut dyn FnMut(&str) -> bool) -> String {
    if !taken(base) {
        return base.to_string();
    }
    let mut n = 2;
    loop {
        let candidate = format!("{base}#{n}");
        if !taken(&candidate) {
            return candidate;
        }
        n += 1;
    }
}

/// The Query Dictionary: ordered entries plus the schema contributed by
/// plain DDL statements in the same log.
#[derive(Debug, Clone, Default)]
pub struct QueryDict {
    entries: Vec<QueryEntry>,
    /// Base-table schemas found in the log (plain `CREATE TABLE`).
    pub ddl_catalog: Catalog,
    /// Diagnostics produced during preprocessing: skipped statements,
    /// noise, and — in lenient mode — parse errors and duplicate ids.
    pub diagnostics: Vec<Diagnostic>,
}

impl QueryDict {
    /// Build the dictionary from a `;`-separated SQL script, strictly: the
    /// first parse error or duplicate identifier aborts.
    pub fn from_sql(sql: &str) -> Result<Self, LineageError> {
        Self::from_sql_with(sql, false)
    }

    /// Build the dictionary leniently: unparsable statements become
    /// [`DiagnosticCode::ParseError`] diagnostics (parsing resumes at the
    /// next `;`) and duplicate identifiers resolve last-definition-wins
    /// with a [`DiagnosticCode::DuplicateQueryId`] diagnostic.
    pub fn from_sql_lenient(sql: &str) -> Self {
        Self::from_sql_with(sql, true).expect("lenient preprocessing is infallible")
    }

    /// Build the dictionary with explicit strictness.
    pub fn from_sql_with(sql: &str, lenient: bool) -> Result<Self, LineageError> {
        Self::from_sql_dialect(sql, lenient, DialectKind::Ansi)
    }

    /// Build the dictionary under a specific SQL [`DialectKind`], with
    /// explicit strictness. Dialect selection only affects lexing and
    /// parsing; classification downstream of the parser is shared by every
    /// dialect.
    pub fn from_sql_dialect(
        sql: &str,
        lenient: bool,
        dialect: DialectKind,
    ) -> Result<Self, LineageError> {
        if lenient {
            let script = parse_statements_recovering_with(sql, dialect);
            let mut dict =
                Self::from_statements(script.statements.into_iter().map(|s| (None, s)), true)?;
            // Parse errors come first: they were detected during parsing,
            // before any classification happened.
            let mut diagnostics: Vec<Diagnostic> = script
                .errors
                .iter()
                .map(|e| {
                    Diagnostic::new(DiagnosticCode::ParseError, e.message.clone())
                        .with_span(e.span)
                        .with_excerpt_from(sql)
                })
                .collect();
            diagnostics.append(&mut dict.diagnostics);
            dict.diagnostics = diagnostics;
            Ok(dict)
        } else {
            let statements = parse_sql_spanned_with(sql, dialect)?;
            Self::from_statements(statements.into_iter().map(|s| (None, s)), false)
        }
    }

    /// Build the dictionary from named sources (dbt-style: one query per
    /// file, the file name is the identifier for bare `SELECT`s).
    pub fn from_named_sources<'a, I>(sources: I) -> Result<Self, LineageError>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        Self::from_named_sources_with(sources, false)
    }

    /// Named-source variant with explicit strictness (lenient recovers
    /// per-file: a corrupt model file loses only its own statements).
    pub fn from_named_sources_with<'a, I>(sources: I, lenient: bool) -> Result<Self, LineageError>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        Self::from_named_sources_dialect(sources, lenient, DialectKind::Ansi)
    }

    /// Named-source variant under a specific SQL [`DialectKind`].
    pub fn from_named_sources_dialect<'a, I>(
        sources: I,
        lenient: bool,
        dialect: DialectKind,
    ) -> Result<Self, LineageError>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut pairs = Vec::new();
        let mut parse_diagnostics = Vec::new();
        for (name, sql) in sources {
            if lenient {
                let script = parse_statements_recovering_with(sql, dialect);
                parse_diagnostics.extend(script.errors.iter().map(|e| {
                    Diagnostic::new(DiagnosticCode::ParseError, format!("in {name}: {}", e.message))
                        .with_span(e.span)
                        .with_excerpt_from(sql)
                }));
                for stmt in script.statements {
                    pairs.push((Some(name.to_string()), stmt));
                }
            } else {
                for stmt in parse_sql_spanned_with(sql, dialect)? {
                    pairs.push((Some(name.to_string()), stmt));
                }
            }
        }
        let mut dict = Self::from_statements(pairs, lenient)?;
        parse_diagnostics.append(&mut dict.diagnostics);
        dict.diagnostics = parse_diagnostics;
        Ok(dict)
    }

    fn from_statements<I>(statements: I, lenient: bool) -> Result<Self, LineageError>
    where
        I: IntoIterator<Item = (Option<String>, SpannedStatement)>,
    {
        let mut dict = QueryDict::default();
        let mut anon_counter = 0usize;
        for (source_name, stmt) in statements {
            let preprocessed = {
                let entries = &dict.entries;
                preprocess_statement(stmt, source_name.as_deref(), &mut anon_counter, &mut |id| {
                    entries.iter().any(|e| e.id == id)
                })
            };
            match preprocessed {
                PreprocessedStatement::Entry(entry) => dict.push(*entry, lenient)?,
                PreprocessedStatement::Schema(schema) => dict.ddl_catalog.add_or_replace(schema),
                PreprocessedStatement::Drop(names, span) => dict.diagnostics.push(
                    Diagnostic::new(
                        DiagnosticCode::SkippedStatement,
                        format!("skipped DROP {}", names.join(", ")),
                    )
                    .with_span(span),
                ),
                PreprocessedStatement::Skipped(diagnostic) => dict.diagnostics.push(diagnostic),
            }
        }
        Ok(dict)
    }

    fn push(&mut self, entry: QueryEntry, lenient: bool) -> Result<(), LineageError> {
        let Some(existing) = self.entries.iter().position(|e| e.id == entry.id) else {
            self.entries.push(entry);
            return Ok(());
        };
        if !lenient {
            return Err(LineageError::DuplicateQueryId(entry.id));
        }
        // Last definition wins, in place: the entry keeps its slot in log
        // order (the auto-inference stack makes processing order
        // independent anyway), mirroring the session engine's
        // redefinition semantics.
        self.diagnostics.push(
            Diagnostic::new(
                DiagnosticCode::DuplicateQueryId,
                format!("duplicate query identifier \"{}\": last definition wins", entry.id),
            )
            .for_statement(&entry.id)
            .with_span(entry.span),
        );
        self.entries[existing] = entry;
        Ok(())
    }

    /// Whether `id` names a dictionary entry.
    pub fn contains(&self, id: &str) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Look an entry up by id.
    pub fn get(&self, id: &str) -> Option<&QueryEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Entries in log order.
    pub fn entries(&self) -> &[QueryEntry] {
        &self.entries
    }

    /// All identifiers in log order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.id.as_str())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;

    #[test]
    fn keys_views_by_created_name() {
        let qd = QueryDict::from_sql(
            "CREATE VIEW webinfo AS SELECT cid FROM web;
             CREATE TABLE snap AS SELECT * FROM webinfo;",
        )
        .unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["webinfo", "snap"]);
        assert!(matches!(qd.get("webinfo").unwrap().kind, QueryKind::View { .. }));
        assert!(matches!(qd.get("snap").unwrap().kind, QueryKind::TableAs));
    }

    #[test]
    fn generates_deterministic_ids_for_bare_selects() {
        let qd = QueryDict::from_sql("SELECT 1; SELECT 2").unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["query_1", "query_2"]);
    }

    #[test]
    fn named_sources_use_file_name() {
        let qd = QueryDict::from_named_sources([
            ("model_users", "SELECT cid FROM customers"),
            ("model_orders", "SELECT oid FROM orders"),
        ])
        .unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["model_users", "model_orders"]);
    }

    #[test]
    fn plain_ddl_feeds_catalog_not_entries() {
        let qd = QueryDict::from_sql(
            "CREATE TABLE web (cid int, page text);
             CREATE VIEW v AS SELECT page FROM web;",
        )
        .unwrap();
        assert_eq!(qd.len(), 1);
        assert!(qd.ddl_catalog.contains("web"));
        assert_eq!(qd.ddl_catalog.get("web").unwrap().columns.len(), 2);
    }

    #[test]
    fn insert_ids_disambiguate() {
        let qd = QueryDict::from_sql(
            "INSERT INTO t SELECT 1; INSERT INTO t SELECT 2; INSERT INTO t SELECT 3",
        )
        .unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["t", "t#2", "t#3"]);
    }

    #[test]
    fn duplicate_view_name_errors_strictly() {
        let err = QueryDict::from_sql("CREATE VIEW v AS SELECT 1; CREATE VIEW v AS SELECT 2")
            .unwrap_err();
        assert!(matches!(err, LineageError::DuplicateQueryId(id) if id == "v"));
    }

    #[test]
    fn duplicate_view_name_is_last_definition_wins_leniently() {
        let qd = QueryDict::from_sql_lenient(
            "CREATE VIEW v AS SELECT 1 AS a;\nCREATE VIEW v AS SELECT 2 AS b;",
        );
        assert_eq!(qd.len(), 1);
        // The later definition replaced the earlier one, in place.
        let entry = qd.get("v").unwrap();
        assert!(entry.statement.to_string().contains("AS b"), "{}", entry.statement);
        let dup = qd
            .diagnostics
            .iter()
            .find(|d| d.code == DiagnosticCode::DuplicateQueryId)
            .expect("duplicate diagnostic");
        assert_eq!(dup.statement.as_deref(), Some("v"));
        assert_eq!(dup.span.unwrap().line, 2);
    }

    #[test]
    fn lenient_parse_errors_become_diagnostics() {
        let qd = QueryDict::from_sql_lenient(
            "CREATE VIEW good AS SELECT 1 AS x;\nSELECT FROM broken;\nSELECT 2 AS y;",
        );
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["good", "query_1"]);
        let parse = qd
            .diagnostics
            .iter()
            .find(|d| d.code == DiagnosticCode::ParseError)
            .expect("parse diagnostic");
        assert_eq!(parse.severity, Severity::Error);
        assert_eq!(parse.span.unwrap().line, 2);
        assert_eq!(parse.excerpt.as_deref(), Some("SELECT FROM broken;"));
    }

    #[test]
    fn drop_is_skipped_with_diagnostic() {
        let qd = QueryDict::from_sql("DROP VIEW old_v; SELECT 1").unwrap();
        assert_eq!(qd.len(), 1);
        let d = &qd.diagnostics[0];
        assert_eq!(d.code, DiagnosticCode::SkippedStatement);
        assert!(d.message.contains("old_v"), "{}", d.message);
        assert_eq!(d.span.unwrap().column, 1);
    }

    #[test]
    fn noise_is_skipped_with_typed_diagnostic() {
        let qd = QueryDict::from_sql(
            "BEGIN;\nSET search_path = analytics;\nCREATE VIEW v AS SELECT 1 AS a;\n\
             EXPLAIN SELECT * FROM v;\nCOMMIT;",
        )
        .unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["v"]);
        let kinds: Vec<_> = qd.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(kinds, vec![DiagnosticCode::NoiseStatement; 4]);
        assert!(qd.diagnostics[1].message.contains("SET"), "{}", qd.diagnostics[1].message);
        assert_eq!(qd.diagnostics[1].span.unwrap().line, 2);
    }

    #[test]
    fn merge_degrades_to_dialect_fallback_diagnostic() {
        let qd = QueryDict::from_sql_dialect(
            "CREATE VIEW v AS SELECT 1 AS a;\n\
             MERGE INTO tgt USING src ON tgt.id = src.id WHEN MATCHED THEN UPDATE SET x = 1;",
            false,
            DialectKind::Snowflake,
        )
        .unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["v"]);
        let d = &qd.diagnostics[0];
        assert_eq!(d.code, DiagnosticCode::DialectFallback);
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.statement.as_deref(), Some("tgt"));
        assert_eq!(d.span.unwrap().line, 2);
        assert!(d.message.contains("MERGE INTO tgt"), "{}", d.message);
    }

    #[test]
    fn dialect_constructor_parses_dialect_forms() {
        let qd = QueryDict::from_sql_dialect(
            "# comment style\nCREATE VIEW v AS SELECT a FROM `raw tbl` QUALIFY a = 1",
            false,
            DialectKind::BigQuery,
        )
        .unwrap();
        assert_eq!(qd.ids().collect::<Vec<_>>(), vec!["v"]);
        // The same text is a hard error under the strict ANSI default.
        assert!(QueryDict::from_sql(
            "# comment style\nCREATE VIEW v AS SELECT a FROM `raw tbl` QUALIFY a = 1"
        )
        .is_err());
    }

    #[test]
    fn declared_columns_recorded() {
        let qd = QueryDict::from_sql("CREATE VIEW v(a, b) AS SELECT 1, 2").unwrap();
        assert_eq!(qd.get("v").unwrap().declared_columns, vec!["a", "b"]);
    }

    #[test]
    fn entries_carry_statement_spans() {
        let sql = "SELECT 1;\nCREATE VIEW v AS SELECT 2;";
        let qd = QueryDict::from_sql(sql).unwrap();
        assert_eq!(qd.get("query_1").unwrap().span.location.line, 1);
        let v = qd.get("v").unwrap();
        assert_eq!(v.span.location.line, 2);
        assert_eq!(v.span.slice(sql), "CREATE VIEW v AS SELECT 2");
    }

    #[test]
    fn preprocess_statement_classifies_each_kind() {
        let mut anon = 0usize;
        let classify = |sql: &str, anon: &mut usize| {
            let stmt = lineagex_sqlparse::parse_sql_spanned(sql).unwrap().remove(0);
            preprocess_statement(stmt, None, anon, &mut |_| false)
        };
        assert!(matches!(
            classify("CREATE VIEW v AS SELECT 1", &mut anon),
            PreprocessedStatement::Entry(e) if e.id == "v"
        ));
        assert!(matches!(
            classify("CREATE TABLE t (a int)", &mut anon),
            PreprocessedStatement::Schema(s) if s.name == "t"
        ));
        assert!(matches!(
            classify("DROP VIEW a, b", &mut anon),
            PreprocessedStatement::Drop(names, _) if names == vec!["a", "b"]
        ));
        assert!(matches!(
            classify("DELETE FROM t", &mut anon),
            PreprocessedStatement::Skipped(d) if d.code == DiagnosticCode::SkippedStatement
        ));
        assert!(matches!(
            classify("BEGIN", &mut anon),
            PreprocessedStatement::Skipped(d) if d.code == DiagnosticCode::NoiseStatement
        ));
        assert!(matches!(
            classify("SELECT 1", &mut anon),
            PreprocessedStatement::Entry(e) if e.id == "query_1"
        ));
        // A taken insert target disambiguates with a #N suffix.
        let stmt =
            lineagex_sqlparse::parse_sql_spanned("INSERT INTO t SELECT 1").unwrap().remove(0);
        let mut t_taken = |id: &str| id == "t";
        assert!(matches!(
            preprocess_statement(stmt, None, &mut anon, &mut t_taken),
            PreprocessedStatement::Entry(e) if e.id == "t#2"
        ));
    }
}
