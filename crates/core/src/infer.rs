//! Table/View Auto-Inference (paper §III).
//!
//! Queries are processed in log order, but a query that scans a relation
//! defined by a *later* (or otherwise unprocessed) Query-Dictionary entry
//! cannot be resolved yet: its `SELECT *` cannot be expanded and its
//! prefix-less columns cannot be attributed. The paper's answer is a LIFO
//! deferral stack: the current traversal is pushed, the missing dependency
//! is processed first, then the deferred query is popped and resumed.
//!
//! [`InferenceEngine::run`] implements exactly that protocol (the deferral
//! log is exposed for inspection) with cycle detection on top. The result
//! is order-independent: shuffling the input statements never changes the
//! extracted lineage, which the property tests assert.

use crate::diagnostics::{Diagnostic, DiagnosticCode};
use crate::error::LineageError;
use crate::extract::{rename_outputs, Extractor};
use crate::model::{LineageGraph, Node, NodeKind, OutputColumn, QueryKind, QueryLineage};
use crate::options::ExtractOptions;
use crate::preprocess::{QueryDict, QueryEntry};
use crate::trace::TraceLog;
use lineagex_catalog::Catalog;
use lineagex_sqlparse::ast::Ident;
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};

/// The outcome of a full extraction run.
#[derive(Debug, Clone, Default)]
pub struct LineageResult {
    /// The combined lineage graph.
    pub graph: LineageGraph,
    /// Per-query traversal traces (only when tracing was enabled).
    pub traces: BTreeMap<String, TraceLog>,
    /// The deferral log: `(deferred query, missing dependency)` pairs in
    /// the order the stack mechanism fired.
    pub deferrals: Vec<(String, String)>,
    /// Usage-inferred schemas of external tables.
    pub inferred: BTreeMap<String, BTreeSet<String>>,
    /// Run-level diagnostics: skipped statements, noise, and — in lenient
    /// mode — parse errors and duplicate ids. Per-query findings live on
    /// each [`QueryLineage::diagnostics`].
    pub diagnostics: Vec<Diagnostic>,
    /// Build-once cache for the interned traversal index
    /// ([`crate::graph::GraphIndex`]); populated lazily by the first
    /// query through [`crate::LineageView`]. Call
    /// [`crate::graph::GraphIndexCache::invalidate`] after mutating
    /// [`LineageResult::graph`] in place.
    pub index: crate::graph::GraphIndexCache,
}

/// Drives extraction over a whole Query Dictionary.
///
/// The catalog is held as a [`Cow`]: borrow it with
/// [`InferenceEngine::over`] and a query-only log (no in-log DDL) runs
/// without ever deep-copying the caller's — possibly very large —
/// catalog. Only a log that actually carries `CREATE TABLE` statements
/// pays a clone, when the DDL schemas are merged in.
pub struct InferenceEngine<'a> {
    qd: QueryDict,
    qd_ids: BTreeSet<String>,
    catalog: Cow<'a, Catalog>,
    options: ExtractOptions,
    processed: BTreeMap<String, QueryLineage>,
    order: Vec<String>,
    inferred: BTreeMap<String, BTreeSet<String>>,
    deferrals: Vec<(String, String)>,
    traces: BTreeMap<String, TraceLog>,
}

impl InferenceEngine<'static> {
    /// Create an engine that owns its catalog. Schemas found as DDL in
    /// the log are merged into the catalog.
    pub fn new(qd: QueryDict, user_catalog: Catalog, options: ExtractOptions) -> Self {
        InferenceEngine::build(qd, Cow::Owned(user_catalog), options)
    }
}

impl<'a> InferenceEngine<'a> {
    /// Create an engine *borrowing* the user catalog: repeated runs over
    /// the same catalog (the [`crate::LineageX`] façade's pattern) pay no
    /// deep copy. The catalog is cloned lazily, and only when the log
    /// itself defines schemas that must be merged in.
    pub fn over(qd: QueryDict, user_catalog: &'a Catalog, options: ExtractOptions) -> Self {
        InferenceEngine::build(qd, Cow::Borrowed(user_catalog), options)
    }

    fn build(qd: QueryDict, mut catalog: Cow<'a, Catalog>, options: ExtractOptions) -> Self {
        if qd.ddl_catalog.relations().next().is_some() {
            let merged = catalog.to_mut();
            for schema in qd.ddl_catalog.relations() {
                merged.add_or_replace(schema.clone());
            }
        }
        let qd_ids = qd.ids().map(String::from).collect();
        InferenceEngine {
            qd,
            qd_ids,
            catalog,
            options,
            processed: BTreeMap::new(),
            order: Vec::new(),
            inferred: BTreeMap::new(),
            deferrals: Vec::new(),
            traces: BTreeMap::new(),
        }
    }

    /// Process every entry (deferring as needed) and assemble the graph.
    pub fn run(mut self) -> Result<LineageResult, LineageError> {
        let ids: Vec<String> = self.qd.ids().map(String::from).collect();
        for id in &ids {
            self.process(id)?;
        }
        Ok(self.assemble())
    }

    /// Process one entry with the paper's explicit LIFO stack: a query
    /// whose extraction hits an unprocessed dependency stays on the stack
    /// (deferred) while the dependency is pushed on top; once extracted,
    /// the deferred query is popped back and resumed. Iterative, so even
    /// pathologically deep view chains cannot overflow the call stack.
    fn process(&mut self, root: &str) -> Result<(), LineageError> {
        let mut stack: Vec<String> = vec![root.to_string()];
        while let Some(id) = stack.last().cloned() {
            if self.processed.contains_key(&id) {
                stack.pop();
                continue;
            }
            let entry = self.qd.get(&id).expect("id comes from the dictionary").clone();
            match self.try_extract(&entry) {
                Ok(lineage) => {
                    self.processed.insert(id.clone(), lineage);
                    self.order.push(id.clone());
                    stack.pop();
                }
                Err(LineageError::MissingDependency { dependency, .. }) => {
                    if let Some(pos) = stack.iter().position(|x| x == &dependency) {
                        let mut path: Vec<String> = stack[pos..].to_vec();
                        path.push(dependency);
                        if !self.options.lenient {
                            return Err(LineageError::DependencyCycle(path));
                        }
                        // Lenient: break the cycle by stubbing the entry
                        // that closed it; the rest of the cycle then
                        // resolves against the stub (empty outputs).
                        let stub = cycle_stub(&entry, &path);
                        self.processed.insert(id.clone(), stub);
                        self.order.push(id.clone());
                        stack.pop();
                        continue;
                    }
                    self.deferrals.push((id, dependency.clone()));
                    stack.push(dependency);
                }
                Err(other) => return Err(other),
            }
        }
        Ok(())
    }

    fn try_extract(&mut self, entry: &QueryEntry) -> Result<QueryLineage, LineageError> {
        let (lineage, trace) = extract_entry(
            entry,
            &self.qd_ids,
            &self.processed,
            self.catalog.as_ref(),
            &self.options,
            &mut self.inferred,
        )?;
        if let Some(trace) = trace {
            self.traces.insert(entry.id.clone(), trace);
        }
        Ok(lineage)
    }

    fn assemble(self) -> LineageResult {
        let graph =
            assemble_graph(self.catalog.as_ref(), self.processed, &self.inferred, self.order);
        LineageResult {
            graph,
            traces: self.traces,
            deferrals: self.deferrals,
            inferred: self.inferred,
            diagnostics: self.qd.diagnostics,
            index: Default::default(),
        }
    }
}

/// The lineage stub recorded for an entry whose extraction lenient mode
/// had to abandon: declared output names (when any were written) with no
/// sources, no referenced columns, and a diagnostic explaining why.
fn failure_stub(entry: &QueryEntry, diagnostic: Diagnostic) -> QueryLineage {
    QueryLineage {
        id: entry.id.clone(),
        kind: entry.kind.clone(),
        outputs: entry
            .declared_columns
            .iter()
            .map(|name| OutputColumn::new(name, BTreeSet::new()))
            .collect(),
        cref: BTreeSet::new(),
        tables: BTreeSet::new(),
        diagnostics: vec![diagnostic],
        partial: true,
    }
}

/// The stub breaking a dependency cycle in lenient mode: declared output
/// names with no sources, marked partial, carrying a
/// [`DiagnosticCode::DependencyCycle`] diagnostic with the cycle path.
/// The batch pipeline stubs the entry that *closed* the cycle (the top
/// of the deferral stack); the session engine mirrors that choice by
/// stubbing the second-to-last member of the detected cycle path.
pub fn cycle_stub(entry: &QueryEntry, path: &[String]) -> QueryLineage {
    failure_stub(
        entry,
        Diagnostic::new(
            DiagnosticCode::DependencyCycle,
            format!("dependency cycle: {}", path.join(" -> ")),
        )
        .for_statement(&entry.id)
        .with_span(entry.span),
    )
}

/// Extract one Query-Dictionary entry in isolation.
///
/// This is the unit of work the [`InferenceEngine`] drives via its
/// deferral stack, exposed so a long-lived session engine
/// (`lineagex-engine`) can re-extract a single view without re-running
/// the whole log. `processed` must already contain the lineage of every
/// dictionary entry this one scans, or the call returns
/// [`LineageError::MissingDependency`]; `inferred` accumulates
/// usage-inferred schemas of external relations.
pub fn extract_entry(
    entry: &QueryEntry,
    qd_ids: &BTreeSet<String>,
    processed: &BTreeMap<String, QueryLineage>,
    catalog: &Catalog,
    options: &ExtractOptions,
    inferred: &mut BTreeMap<String, BTreeSet<String>>,
) -> Result<(QueryLineage, Option<TraceLog>), LineageError> {
    match try_extract_entry(entry, qd_ids, processed, catalog, options, inferred) {
        Ok(done) => Ok(done),
        // The deferral/scheduling machinery consumes this one; it must
        // propagate even in lenient mode.
        Err(error @ LineageError::MissingDependency { .. }) => Err(error),
        Err(error) if options.lenient => {
            // Anything else degrades to a partial stub so one broken
            // query cannot poison the batch.
            let diagnostic = Diagnostic::new(
                DiagnosticCode::ExtractionFailed,
                format!("lineage extraction failed: {error}"),
            )
            .for_statement(&entry.id)
            .with_span(entry.span);
            Ok((failure_stub(entry, diagnostic), None))
        }
        Err(error) => Err(error),
    }
}

fn try_extract_entry(
    entry: &QueryEntry,
    qd_ids: &BTreeSet<String>,
    processed: &BTreeMap<String, QueryLineage>,
    catalog: &Catalog,
    options: &ExtractOptions,
    inferred: &mut BTreeMap<String, BTreeSet<String>>,
) -> Result<(QueryLineage, Option<TraceLog>), LineageError> {
    let mut extractor =
        Extractor::new(entry.id.clone(), qd_ids, processed, catalog, options, inferred);
    let outputs = extractor.extract(entry.query())?;
    let trace = extractor.trace.take();
    let cref = std::mem::take(&mut extractor.cref);
    let tables = std::mem::take(&mut extractor.tables);
    let diagnostics = std::mem::take(&mut extractor.diagnostics);
    let partial = extractor.partial;
    drop(extractor); // release &mut inferred
    let outputs = apply_output_names(entry, outputs, catalog)?;
    let lineage = QueryLineage {
        id: entry.id.clone(),
        kind: entry.kind.clone(),
        outputs,
        cref,
        tables,
        diagnostics,
        partial,
    };
    Ok((lineage, trace))
}

/// Rename outputs by the declared column list (`CREATE VIEW v(a, b)`,
/// `INSERT INTO t (a, b)`); an INSERT without a list takes the target
/// table's column names when the catalog knows them.
fn apply_output_names(
    entry: &QueryEntry,
    outputs: Vec<OutputColumn>,
    catalog: &Catalog,
) -> Result<Vec<OutputColumn>, LineageError> {
    if !entry.declared_columns.is_empty() {
        let idents: Vec<Ident> = entry.declared_columns.iter().map(Ident::new).collect();
        return rename_outputs(outputs, &idents, &entry.id);
    }
    if matches!(entry.kind, QueryKind::Insert) {
        let target = entry.id.split('#').next().unwrap_or(&entry.id);
        if let Some(schema) = catalog.get(target) {
            if schema.columns.len() == outputs.len() {
                let idents: Vec<Ident> =
                    schema.columns.iter().map(|c| Ident::new(&c.name)).collect();
                return rename_outputs(outputs, &idents, &entry.id);
            }
        }
    }
    Ok(outputs)
}

/// Build the relation-node map of a lineage graph from its three sources:
/// catalog relations, extracted query lineage (which shadows catalog
/// entries of the same name — the dictionary definition is fresher), and
/// usage-inferred externals (which never shadow anything).
pub fn assemble_nodes(
    catalog: &Catalog,
    processed: &BTreeMap<String, QueryLineage>,
    inferred: &BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, Node> {
    let mut nodes = BTreeMap::new();

    // Catalog relations become base-table / view nodes.
    for schema in catalog.relations() {
        let kind = if schema.is_view() { NodeKind::View } else { NodeKind::BaseTable };
        nodes.insert(
            schema.name.clone(),
            Node {
                name: schema.name.clone(),
                kind,
                columns: schema.column_names().map(String::from).collect(),
            },
        );
    }
    // Query results become view/table/query nodes.
    for (id, lineage) in processed {
        let mut columns: Vec<String> = lineage.outputs.iter().map(|o| o.name.clone()).collect();
        // INSERT/UPDATE touch a subset of the target's columns; keep
        // the full schema on the node when the catalog knows it.
        if matches!(lineage.kind, QueryKind::Insert | QueryKind::Update) {
            if let Some(existing) = nodes.get(id.split('#').next().unwrap_or(id)) {
                let mut merged = existing.columns.clone();
                for c in columns {
                    if !merged.contains(&c) {
                        merged.push(c);
                    }
                }
                columns = merged;
            }
        }
        let kind = NodeKind::for_query(&lineage.kind);
        nodes.insert(id.clone(), Node { name: id.clone(), kind, columns });
    }
    // Usage-inferred externals.
    for (name, columns) in inferred {
        nodes.entry(name.clone()).or_insert_with(|| Node {
            name: name.clone(),
            kind: NodeKind::External,
            columns: columns.iter().cloned().collect(),
        });
    }
    nodes
}

/// Assemble a full [`LineageGraph`] from extracted per-query lineage.
///
/// `order` must list the keys of `processed` in a dependency-consistent
/// order (upstream before downstream); both the one-shot pipeline and the
/// incremental engine guarantee that by construction.
pub fn assemble_graph(
    catalog: &Catalog,
    processed: BTreeMap<String, QueryLineage>,
    inferred: &BTreeMap<String, BTreeSet<String>>,
    order: Vec<String>,
) -> LineageGraph {
    let nodes = assemble_nodes(catalog, &processed, inferred);
    LineageGraph { nodes, queries: processed, order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceColumn;

    fn run_sql(sql: &str) -> LineageResult {
        let qd = QueryDict::from_sql(sql).unwrap();
        InferenceEngine::new(qd, Catalog::new(), ExtractOptions::default()).run().unwrap()
    }

    #[test]
    fn processes_in_dependency_order_with_stack() {
        // v2 comes first in the log but depends on v1: the stack defers v2.
        let result = run_sql(
            "CREATE TABLE base (a int, b int);
             CREATE VIEW v2 AS SELECT * FROM v1;
             CREATE VIEW v1 AS SELECT a, b FROM base;",
        );
        assert_eq!(result.graph.order, vec!["v1", "v2"]);
        assert_eq!(result.deferrals, vec![("v2".to_string(), "v1".to_string())]);
        // SELECT * through the deferred dependency expands fully.
        let v2 = &result.graph.queries["v2"];
        assert_eq!(v2.output_names(), vec!["a", "b"]);
        assert_eq!(v2.outputs[0].ccon, BTreeSet::from([SourceColumn::new("v1", "a")]));
    }

    #[test]
    fn deep_dependency_chain_defers_transitively() {
        let result = run_sql(
            "CREATE TABLE t (x int);
             CREATE VIEW d AS SELECT * FROM c;
             CREATE VIEW c AS SELECT * FROM b;
             CREATE VIEW b AS SELECT * FROM a;
             CREATE VIEW a AS SELECT x FROM t;",
        );
        assert_eq!(result.graph.order, vec!["a", "b", "c", "d"]);
        assert_eq!(result.deferrals.len(), 3);
        // LIFO: d deferred on c, then c on b, then b on a.
        assert_eq!(result.deferrals[0].0, "d");
        assert_eq!(result.deferrals[1].0, "c");
        assert_eq!(result.deferrals[2].0, "b");
        let d = &result.graph.queries["d"];
        assert_eq!(d.output_names(), vec!["x"]);
    }

    #[test]
    fn cycle_is_reported_with_path() {
        let qd = QueryDict::from_sql(
            "CREATE VIEW a AS SELECT * FROM b;
             CREATE VIEW b AS SELECT * FROM a;",
        )
        .unwrap();
        let err =
            InferenceEngine::new(qd, Catalog::new(), ExtractOptions::default()).run().unwrap_err();
        match err {
            LineageError::DependencyCycle(path) => {
                assert_eq!(path, vec!["a", "b", "a"]);
            }
            other => panic!("expected cycle, got {other}"),
        }
    }

    #[test]
    fn external_tables_are_inferred() {
        let result = run_sql("CREATE VIEW v AS SELECT w.page FROM web w");
        assert!(result.inferred["web"].contains("page"));
        let node = &result.graph.nodes["web"];
        assert_eq!(node.kind, NodeKind::External);
        assert_eq!(node.columns, vec!["page"]);
    }

    #[test]
    fn declared_view_columns_rename_outputs() {
        let result = run_sql(
            "CREATE TABLE t (a int);
             CREATE VIEW v(renamed) AS SELECT a FROM t;",
        );
        assert_eq!(result.graph.queries["v"].output_names(), vec!["renamed"]);
    }

    #[test]
    fn insert_takes_target_column_names() {
        let result = run_sql(
            "CREATE TABLE src (x int, y int);
             CREATE TABLE dst (a int, b int);
             INSERT INTO dst SELECT x, y FROM src;",
        );
        let ins = &result.graph.queries["dst"];
        assert_eq!(ins.output_names(), vec!["a", "b"]);
        assert_eq!(ins.outputs[0].ccon, BTreeSet::from([SourceColumn::new("src", "x")]));
    }

    #[test]
    fn order_independence_of_input() {
        let forward = run_sql(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v1 AS SELECT a FROM t;
             CREATE VIEW v2 AS SELECT * FROM v1;",
        );
        let shuffled = run_sql(
            "CREATE VIEW v2 AS SELECT * FROM v1;
             CREATE VIEW v1 AS SELECT a FROM t;
             CREATE TABLE t (a int, b int);",
        );
        assert_eq!(forward.graph.queries, shuffled.graph.queries);
        assert_eq!(forward.graph.nodes, shuffled.graph.nodes);
    }

    #[test]
    fn traces_recorded_when_enabled() {
        let qd = QueryDict::from_sql(
            "CREATE TABLE t (a int); CREATE VIEW v AS SELECT a FROM t WHERE a > 0",
        )
        .unwrap();
        let result = InferenceEngine::new(qd, Catalog::new(), ExtractOptions::new().with_trace())
            .run()
            .unwrap();
        let trace = &result.traces["v"];
        assert!(!trace.steps.is_empty());
        let rendered = trace.to_string();
        assert!(rendered.contains("FROM (Table/View)"), "{rendered}");
    }
}
