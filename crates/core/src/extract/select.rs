//! The SELECT rule of Table I: resolve `C_con` for each projection, with
//! `WHERE`/`GROUP BY`/`HAVING`/`QUALIFY`/`DISTINCT ON` feeding `C_ref`.

use super::{Extractor, Relation, Scope};
use crate::diagnostics::{Diagnostic, DiagnosticCode};
use crate::error::LineageError;
use crate::model::{OutputColumn, SourceColumn};
use crate::trace::Rule;
use lineagex_sqlparse::ast::visit::output_name;
use lineagex_sqlparse::ast::{Distinct, Select, SelectItem};
use std::collections::BTreeSet;

impl Extractor<'_> {
    /// Extract one `SELECT` block, returning its output columns and the
    /// `FROM` relations (for `ORDER BY` resolution by the caller).
    pub(crate) fn extract_select(
        &mut self,
        select: &Select,
        outer: Option<&Scope<'_>>,
    ) -> Result<(Vec<OutputColumn>, Vec<Relation>), LineageError> {
        let relations = self.build_from(&select.from, outer)?;
        let scope = Scope { relations: &relations, parent: outer };

        // Other Keywords rule: predicate/grouping columns → C_ref.
        if let Some(selection) = &select.selection {
            let refs = self.resolve_expr(selection, Some(&scope))?;
            self.cref.extend(refs);
            self.trace_step(Rule::OtherKeywords, "WHERE (σ)", Vec::new(), Vec::new());
        }
        if !select.group_by.is_empty() {
            for expr in &select.group_by {
                let refs = self.resolve_expr(expr, Some(&scope))?;
                self.cref.extend(refs);
            }
            self.trace_step(Rule::OtherKeywords, "GROUP BY (γ)", Vec::new(), Vec::new());
        }
        if let Some(having) = &select.having {
            let refs = self.resolve_expr(having, Some(&scope))?;
            self.cref.extend(refs);
            self.trace_step(Rule::OtherKeywords, "HAVING", Vec::new(), Vec::new());
        }
        // Dialect extensions filter rows, never columns, so they feed
        // C_ref exactly like WHERE/HAVING (QUALIFY) or touch nothing at
        // all (T-SQL's TOP n literal carries no column references).
        if let Some(qualify) = &select.qualify {
            let refs = self.resolve_expr(qualify, Some(&scope))?;
            self.cref.extend(refs);
            self.trace_step(Rule::OtherKeywords, "QUALIFY", Vec::new(), Vec::new());
        }
        if let Some(Distinct::On(exprs)) = &select.distinct {
            for expr in exprs {
                let refs = self.resolve_expr(expr, Some(&scope))?;
                self.cref.extend(refs);
            }
            self.trace_step(Rule::OtherKeywords, "DISTINCT ON", Vec::new(), Vec::new());
        }

        // SELECT rule: resolve C_con for each projection.
        let mut outputs: Vec<OutputColumn> = Vec::new();
        for item in &select.projection {
            match item {
                SelectItem::Wildcard => {
                    for rel in &relations {
                        outputs.extend(self.expand_relation(rel));
                    }
                }
                SelectItem::QualifiedWildcard(name) => {
                    let binding = name.base_name();
                    let Some(rel) = scope.find_binding(binding) else {
                        let qualifier = binding.to_string();
                        self.unresolved(
                            format!("missing FROM-clause entry for \"{qualifier}\""),
                            name.span(),
                            || LineageError::UnknownQualifier { query: String::new(), qualifier },
                        )?;
                        continue;
                    };
                    outputs.extend(self.expand_relation(rel));
                }
                SelectItem::UnnamedExpr(expr) => {
                    let ccon = self.resolve_expr(expr, Some(&scope))?;
                    outputs.push(OutputColumn::new(output_name(expr), ccon));
                }
                SelectItem::ExprWithAlias { expr, alias } => {
                    let ccon = self.resolve_expr(expr, Some(&scope))?;
                    outputs.push(OutputColumn::new(alias.value.clone(), ccon));
                }
            }
        }

        let cpos = Self::cpos_snapshot(&relations);
        let names: Vec<String> = outputs.iter().map(|o| o.name.clone()).collect();
        self.trace_step(Rule::Select, "SELECT (π)", cpos, names);
        Ok((outputs, relations))
    }

    /// Expand a relation's columns for `*`/`t.*` projections. Open
    /// relations expand to their inferred-so-far columns with a warning —
    /// the honest answer when no schema exists (prior tools emit a bogus
    /// `table.*` entry here; see the baseline crate).
    fn expand_relation(&mut self, rel: &Relation) -> Vec<OutputColumn> {
        if rel.open {
            self.diagnostics.push(
                Diagnostic::new(
                    DiagnosticCode::UnresolvedWildcard,
                    format!("cannot fully expand * over schema-less relation {}", rel.name),
                )
                .for_statement(&self.query_id)
                .with_span(rel.span),
            );
            let cols = self.inferred.get(&rel.name).cloned().unwrap_or_default();
            return cols
                .iter()
                .map(|c| OutputColumn::new(c, BTreeSet::from([SourceColumn::new(&rel.name, c)])))
                .collect();
        }
        rel.columns.clone()
    }
}
