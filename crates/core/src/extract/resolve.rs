//! Column and expression resolution with ambiguity handling and
//! usage-based schema inference (the paper's second challenge).
//!
//! In lenient mode ([`crate::ExtractOptions::lenient`]) a reference that
//! strict mode would reject — an unknown qualifier, a column no relation
//! in scope exposes — degrades into a span-tagged
//! [`DiagnosticCode::UnresolvedColumn`] diagnostic: the reference
//! contributes no sources, the query is marked partial, and extraction of
//! everything else continues.

use super::{Extractor, Scope};
use crate::diagnostics::{Diagnostic, DiagnosticCode};
use crate::error::LineageError;
use crate::model::SourceColumn;
use crate::options::AmbiguityPolicy;
use lineagex_sqlparse::ast::visit::{ColumnRef, ExprRefs};
use lineagex_sqlparse::ast::Expr;
use lineagex_sqlparse::Span;
use std::collections::BTreeSet;

impl Extractor<'_> {
    /// Resolve every column reference in an expression to source columns.
    ///
    /// Nested subqueries are extracted recursively with the current scope
    /// as their outer scope; their output sources count as this
    /// expression's sources (a scalar subquery's value flows into the
    /// expression) while their internal predicate references accumulate
    /// into this query's `C_ref` through the shared state.
    pub(crate) fn resolve_expr(
        &mut self,
        expr: &Expr,
        scope: Option<&Scope<'_>>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let refs = ExprRefs::from_expr(expr);
        let mut out = BTreeSet::new();
        for col in &refs.columns {
            out.extend(self.resolve_column(col, scope)?);
        }
        for wildcard in &refs.qualified_wildcards {
            out.extend(self.resolve_relation_wildcard(
                wildcard.base_name(),
                wildcard.span(),
                scope,
            )?);
        }
        for subquery in &refs.subqueries {
            let outputs = self.extract_query(subquery, scope)?;
            for o in outputs {
                out.extend(o.ccon);
            }
        }
        Ok(out)
    }

    /// Expand `t.*` (in a function argument) into the relation's sources.
    pub(crate) fn resolve_relation_wildcard(
        &mut self,
        binding: &str,
        span: Span,
        scope: Option<&Scope<'_>>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let Some(rel) = scope.and_then(|s| s.find_binding(binding)) else {
            return self.unresolved(
                format!("missing FROM-clause entry for \"{binding}\""),
                span,
                || LineageError::UnknownQualifier {
                    query: String::new(),
                    qualifier: binding.to_string(),
                },
            );
        };
        if rel.open {
            let name = rel.name.clone();
            self.diagnostics.push(
                Diagnostic::new(
                    DiagnosticCode::UnresolvedWildcard,
                    format!("cannot fully expand {binding}.* over schema-less relation {name}"),
                )
                .for_statement(&self.query_id)
                .with_span(span),
            );
            let cols = self.inferred.get(&name).cloned().unwrap_or_default();
            return Ok(cols.iter().map(|c| SourceColumn::new(&name, c)).collect());
        }
        let mut out = BTreeSet::new();
        for col in &rel.columns {
            out.extend(col.ccon.iter().cloned());
        }
        Ok(out)
    }

    /// Resolve one column reference through the scope chain, applying the
    /// ambiguity policy and inferring columns of open relations.
    pub(crate) fn resolve_column(
        &mut self,
        col: &ColumnRef<'_>,
        scope: Option<&Scope<'_>>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let column = col.column.value.as_str();
        let span = col.qualifier.iter().fold(col.column.span, |acc, part| acc.union(&part.span));
        match col.table() {
            Some(qualifier) => self.resolve_qualified(qualifier, column, span, scope),
            None => self.resolve_unqualified(column, span, scope),
        }
    }

    fn resolve_qualified(
        &mut self,
        qualifier: &str,
        column: &str,
        span: Span,
        scope: Option<&Scope<'_>>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let Some(rel) = scope.and_then(|s| s.find_binding(qualifier)) else {
            let qualifier = qualifier.to_string();
            return self.unresolved(
                format!("missing FROM-clause entry for \"{qualifier}\""),
                span,
                || LineageError::UnknownQualifier { query: String::new(), qualifier },
            );
        };
        if rel.open {
            let name = rel.name.clone();
            return Ok(self.infer_column(&name, column, Some(span)));
        }
        match rel.sources_of(column) {
            Some(sources) => Ok(sources.clone()),
            None => {
                let (qualifier, column) = (qualifier.to_string(), column.to_string());
                self.unresolved(format!("column {qualifier}.{column} does not exist"), span, || {
                    LineageError::ColumnNotFound {
                        query: String::new(),
                        column,
                        relation: Some(qualifier),
                    }
                })
            }
        }
    }

    fn resolve_unqualified(
        &mut self,
        column: &str,
        span: Span,
        scope: Option<&Scope<'_>>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let mut current = scope;
        while let Some(s) = current {
            // Matches: closed relations exposing the column, plus open
            // relations whose inferred schema already contains it.
            let mut matches: Vec<(String, BTreeSet<SourceColumn>)> = Vec::new();
            let mut open_candidates: Vec<String> = Vec::new();
            for rel in s.relations.iter() {
                if rel.open {
                    let inferred_has = self
                        .inferred
                        .get(&rel.name)
                        .map(|cols| cols.contains(column))
                        .unwrap_or(false);
                    if inferred_has {
                        matches.push((
                            rel.binding.clone(),
                            BTreeSet::from([SourceColumn::new(&rel.name, column)]),
                        ));
                    } else {
                        open_candidates.push(rel.name.clone());
                    }
                } else if rel.has_column(column) {
                    let sources = rel.sources_of(column).expect("checked").clone();
                    matches.push((rel.binding.clone(), sources));
                }
            }
            match matches.len() {
                0 => {
                    // No known owner; attribute to open relations if any,
                    // per the ambiguity policy.
                    match open_candidates.len() {
                        0 => current = s.parent,
                        1 => return Ok(self.infer_column(&open_candidates[0], column, Some(span))),
                        _ => return self.attribute_ambiguous_open(column, span, open_candidates),
                    }
                }
                1 => return Ok(matches.pop().expect("one match").1),
                _ => return self.attribute_ambiguous(column, span, matches),
            }
        }
        let column = column.to_string();
        self.unresolved(format!("column \"{column}\" does not exist"), span, || {
            LineageError::ColumnNotFound { query: String::new(), column, relation: None }
        })
    }

    /// The shared strict/lenient fork for a reference nothing in scope can
    /// own: strict raises `make_error` (with the query id filled in),
    /// lenient records an [`DiagnosticCode::UnresolvedColumn`] diagnostic,
    /// marks the lineage partial, and resolves to no sources.
    pub(crate) fn unresolved(
        &mut self,
        message: String,
        span: Span,
        make_error: impl FnOnce() -> LineageError,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        if !self.options.lenient {
            return Err(fill_query(make_error(), &self.query_id));
        }
        self.diagnostics.push(
            Diagnostic::new(DiagnosticCode::UnresolvedColumn, message)
                .for_statement(&self.query_id)
                .with_span(span),
        );
        self.partial = true;
        Ok(BTreeSet::new())
    }

    fn attribute_ambiguous(
        &mut self,
        column: &str,
        span: Span,
        matches: Vec<(String, BTreeSet<SourceColumn>)>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let candidates: Vec<String> = matches.iter().map(|(b, _)| b.clone()).collect();
        match self.options.ambiguity {
            AmbiguityPolicy::Error => Err(LineageError::AmbiguousColumn {
                query: self.query_id.clone(),
                column: column.to_string(),
                candidates,
            }),
            AmbiguityPolicy::FirstMatch => {
                self.ambiguity_diagnostic(column, span, &candidates[..1]);
                Ok(matches.into_iter().next().expect("non-empty").1)
            }
            AmbiguityPolicy::AttributeAll => {
                self.ambiguity_diagnostic(column, span, &candidates);
                let mut out = BTreeSet::new();
                for (_, sources) in matches {
                    out.extend(sources);
                }
                Ok(out)
            }
        }
    }

    fn attribute_ambiguous_open(
        &mut self,
        column: &str,
        span: Span,
        open_names: Vec<String>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        match self.options.ambiguity {
            AmbiguityPolicy::Error => Err(LineageError::AmbiguousColumn {
                query: self.query_id.clone(),
                column: column.to_string(),
                candidates: open_names,
            }),
            AmbiguityPolicy::FirstMatch => {
                self.ambiguity_diagnostic(column, span, &open_names[..1]);
                Ok(self.infer_column(&open_names[0], column, Some(span)))
            }
            AmbiguityPolicy::AttributeAll => {
                self.ambiguity_diagnostic(column, span, &open_names);
                let mut out = BTreeSet::new();
                for name in &open_names {
                    out.extend(self.infer_column(name, column, Some(span)));
                }
                Ok(out)
            }
        }
    }

    fn ambiguity_diagnostic(&mut self, column: &str, span: Span, attributed_to: &[String]) {
        self.diagnostics.push(
            Diagnostic::new(
                DiagnosticCode::AmbiguityResolved,
                format!("ambiguous column \"{column}\" attributed to {}", attributed_to.join(", ")),
            )
            .for_statement(&self.query_id)
            .with_span(span),
        );
    }

    /// Record a usage-inferred column on an external relation.
    pub(crate) fn infer_column(
        &mut self,
        relation: &str,
        column: &str,
        span: Option<Span>,
    ) -> BTreeSet<SourceColumn> {
        let set = self.inferred.entry(relation.to_string()).or_default();
        if set.insert(column.to_string()) {
            let mut diagnostic = Diagnostic::new(
                DiagnosticCode::InferredColumn,
                format!("inferred column {relation}.{column} from usage"),
            )
            .for_statement(&self.query_id);
            if let Some(span) = span {
                diagnostic = diagnostic.with_span(span);
            }
            self.diagnostics.push(diagnostic);
        }
        BTreeSet::from([SourceColumn::new(relation, column)])
    }
}

/// Stamp the extractor's query id into an error built without one.
fn fill_query(error: LineageError, id: &str) -> LineageError {
    match error {
        LineageError::ColumnNotFound { column, relation, .. } => {
            LineageError::ColumnNotFound { query: id.to_string(), column, relation }
        }
        LineageError::UnknownQualifier { qualifier, .. } => {
            LineageError::UnknownQualifier { query: id.to_string(), qualifier }
        }
        other => other,
    }
}
