//! Column and expression resolution with ambiguity handling and
//! usage-based schema inference (the paper's second challenge).

use super::{Extractor, Scope};
use crate::error::LineageError;
use crate::model::{SourceColumn, Warning};
use crate::options::AmbiguityPolicy;
use lineagex_sqlparse::ast::visit::{ColumnRef, ExprRefs};
use lineagex_sqlparse::ast::Expr;
use std::collections::BTreeSet;

impl Extractor<'_> {
    /// Resolve every column reference in an expression to source columns.
    ///
    /// Nested subqueries are extracted recursively with the current scope
    /// as their outer scope; their output sources count as this
    /// expression's sources (a scalar subquery's value flows into the
    /// expression) while their internal predicate references accumulate
    /// into this query's `C_ref` through the shared state.
    pub(crate) fn resolve_expr(
        &mut self,
        expr: &Expr,
        scope: Option<&Scope<'_>>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let refs = ExprRefs::from_expr(expr);
        let mut out = BTreeSet::new();
        for col in &refs.columns {
            out.extend(self.resolve_column(col, scope)?);
        }
        for wildcard in &refs.qualified_wildcards {
            out.extend(self.resolve_relation_wildcard(wildcard.base_name(), scope)?);
        }
        for subquery in &refs.subqueries {
            let outputs = self.extract_query(subquery, scope)?;
            for o in outputs {
                out.extend(o.ccon);
            }
        }
        Ok(out)
    }

    /// Expand `t.*` (in a function argument) into the relation's sources.
    pub(crate) fn resolve_relation_wildcard(
        &mut self,
        binding: &str,
        scope: Option<&Scope<'_>>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let Some(rel) = scope.and_then(|s| s.find_binding(binding)) else {
            return Err(LineageError::UnknownQualifier {
                query: self.query_id.clone(),
                qualifier: binding.to_string(),
            });
        };
        if rel.open {
            let name = rel.name.clone();
            self.warnings.push(Warning::UnresolvedWildcard {
                query: self.query_id.clone(),
                relation: name.clone(),
            });
            let cols = self.inferred.get(&name).cloned().unwrap_or_default();
            return Ok(cols.iter().map(|c| SourceColumn::new(&name, c)).collect());
        }
        let mut out = BTreeSet::new();
        for col in &rel.columns {
            out.extend(col.ccon.iter().cloned());
        }
        Ok(out)
    }

    /// Resolve one column reference through the scope chain, applying the
    /// ambiguity policy and inferring columns of open relations.
    pub(crate) fn resolve_column(
        &mut self,
        col: &ColumnRef<'_>,
        scope: Option<&Scope<'_>>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let column = col.column.value.as_str();
        match col.table() {
            Some(qualifier) => self.resolve_qualified(qualifier, column, scope),
            None => self.resolve_unqualified(column, scope),
        }
    }

    fn resolve_qualified(
        &mut self,
        qualifier: &str,
        column: &str,
        scope: Option<&Scope<'_>>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let Some(rel) = scope.and_then(|s| s.find_binding(qualifier)) else {
            return Err(LineageError::UnknownQualifier {
                query: self.query_id.clone(),
                qualifier: qualifier.to_string(),
            });
        };
        if rel.open {
            let name = rel.name.clone();
            return Ok(self.infer_column(&name, column));
        }
        match rel.sources_of(column) {
            Some(sources) => Ok(sources.clone()),
            None => Err(LineageError::ColumnNotFound {
                query: self.query_id.clone(),
                column: column.to_string(),
                relation: Some(qualifier.to_string()),
            }),
        }
    }

    fn resolve_unqualified(
        &mut self,
        column: &str,
        scope: Option<&Scope<'_>>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let mut current = scope;
        while let Some(s) = current {
            // Matches: closed relations exposing the column, plus open
            // relations whose inferred schema already contains it.
            let mut matches: Vec<(String, BTreeSet<SourceColumn>)> = Vec::new();
            let mut open_candidates: Vec<String> = Vec::new();
            for rel in s.relations.iter() {
                if rel.open {
                    let inferred_has = self
                        .inferred
                        .get(&rel.name)
                        .map(|cols| cols.contains(column))
                        .unwrap_or(false);
                    if inferred_has {
                        matches.push((
                            rel.binding.clone(),
                            BTreeSet::from([SourceColumn::new(&rel.name, column)]),
                        ));
                    } else {
                        open_candidates.push(rel.name.clone());
                    }
                } else if rel.has_column(column) {
                    let sources = rel.sources_of(column).expect("checked").clone();
                    matches.push((rel.binding.clone(), sources));
                }
            }
            match matches.len() {
                0 => {
                    // No known owner; attribute to open relations if any,
                    // per the ambiguity policy.
                    match open_candidates.len() {
                        0 => current = s.parent,
                        1 => return Ok(self.infer_column(&open_candidates[0], column)),
                        _ => return self.attribute_ambiguous_open(column, open_candidates),
                    }
                }
                1 => return Ok(matches.pop().expect("one match").1),
                _ => return self.attribute_ambiguous(column, matches),
            }
        }
        Err(LineageError::ColumnNotFound {
            query: self.query_id.clone(),
            column: column.to_string(),
            relation: None,
        })
    }

    fn attribute_ambiguous(
        &mut self,
        column: &str,
        matches: Vec<(String, BTreeSet<SourceColumn>)>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let candidates: Vec<String> = matches.iter().map(|(b, _)| b.clone()).collect();
        match self.options.ambiguity {
            AmbiguityPolicy::Error => Err(LineageError::AmbiguousColumn {
                query: self.query_id.clone(),
                column: column.to_string(),
                candidates,
            }),
            AmbiguityPolicy::FirstMatch => {
                self.warnings.push(Warning::AmbiguityResolved {
                    query: self.query_id.clone(),
                    column: column.to_string(),
                    attributed_to: vec![candidates[0].clone()],
                });
                Ok(matches.into_iter().next().expect("non-empty").1)
            }
            AmbiguityPolicy::AttributeAll => {
                self.warnings.push(Warning::AmbiguityResolved {
                    query: self.query_id.clone(),
                    column: column.to_string(),
                    attributed_to: candidates,
                });
                let mut out = BTreeSet::new();
                for (_, sources) in matches {
                    out.extend(sources);
                }
                Ok(out)
            }
        }
    }

    fn attribute_ambiguous_open(
        &mut self,
        column: &str,
        open_names: Vec<String>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        match self.options.ambiguity {
            AmbiguityPolicy::Error => Err(LineageError::AmbiguousColumn {
                query: self.query_id.clone(),
                column: column.to_string(),
                candidates: open_names,
            }),
            AmbiguityPolicy::FirstMatch => {
                self.warnings.push(Warning::AmbiguityResolved {
                    query: self.query_id.clone(),
                    column: column.to_string(),
                    attributed_to: vec![open_names[0].clone()],
                });
                Ok(self.infer_column(&open_names[0], column))
            }
            AmbiguityPolicy::AttributeAll => {
                self.warnings.push(Warning::AmbiguityResolved {
                    query: self.query_id.clone(),
                    column: column.to_string(),
                    attributed_to: open_names.clone(),
                });
                let mut out = BTreeSet::new();
                for name in open_names {
                    out.extend(self.infer_column(&name, column));
                }
                Ok(out)
            }
        }
    }

    /// Record a usage-inferred column on an external relation.
    pub(crate) fn infer_column(&mut self, relation: &str, column: &str) -> BTreeSet<SourceColumn> {
        let set = self.inferred.entry(relation.to_string()).or_default();
        if set.insert(column.to_string()) {
            self.warnings.push(Warning::InferredColumn {
                relation: relation.to_string(),
                column: column.to_string(),
            });
        }
        BTreeSet::from([SourceColumn::new(relation, column)])
    }
}
