//! The FROM rules of Table I: scanning tables, views, CTEs, derived
//! subqueries, and join constraints.

use super::{rename_outputs, Extractor, Relation, Scope};
use crate::diagnostics::{Diagnostic, DiagnosticCode};
use crate::error::LineageError;
use crate::model::{OutputColumn, SourceColumn};
use crate::trace::Rule;
use lineagex_sqlparse::ast::{JoinConstraint, TableFactor, TableWithJoins};
use lineagex_sqlparse::Span;
use std::collections::BTreeSet;

impl Extractor<'_> {
    /// Bind the whole `FROM` clause into scope relations, resolving each
    /// join constraint against its operands (plus outer scopes).
    pub(crate) fn build_from(
        &mut self,
        from: &[TableWithJoins],
        outer: Option<&Scope<'_>>,
    ) -> Result<Vec<Relation>, LineageError> {
        let mut relations = Vec::new();
        for twj in from {
            self.process_table_with_joins(twj, outer, &mut relations)?;
        }
        for (i, rel) in relations.iter().enumerate() {
            if relations[..i].iter().any(|r| r.binding == rel.binding) {
                return Err(LineageError::DuplicateBinding {
                    query: self.query_id.clone(),
                    binding: rel.binding.clone(),
                });
            }
        }
        Ok(relations)
    }

    /// Process one FROM item (a factor plus its chained joins), appending
    /// the bound relations to `acc`. Relations already in `acc` are
    /// visible to `LATERAL` subqueries in later factors.
    fn process_table_with_joins(
        &mut self,
        twj: &TableWithJoins,
        outer: Option<&Scope<'_>>,
        acc: &mut Vec<Relation>,
    ) -> Result<(), LineageError> {
        let chain_start = acc.len();
        let visible = acc.clone();
        let rels = self.resolve_table_factor(&twj.relation, outer, &visible)?;
        acc.extend(rels);
        for join in &twj.joins {
            let split = acc.len();
            let visible = acc.clone();
            let rels = self.resolve_table_factor(&join.relation, outer, &visible)?;
            acc.extend(rels);
            let refs = match join.join_operator.constraint() {
                Some(JoinConstraint::On(expr)) => {
                    let chain = &acc[chain_start..];
                    let scope = Scope { relations: chain, parent: outer };
                    self.resolve_expr(expr, Some(&scope))?
                }
                Some(JoinConstraint::Using(cols)) => {
                    let mut refs = BTreeSet::new();
                    for col in cols {
                        refs.extend(self.resolve_shared_column(
                            &col.value,
                            Some(col.span),
                            &acc[chain_start..],
                            split - chain_start,
                        )?);
                    }
                    refs
                }
                Some(JoinConstraint::Natural) => {
                    let shared = natural_columns(&acc[chain_start..], split - chain_start);
                    let mut refs = BTreeSet::new();
                    for col in shared {
                        refs.extend(self.resolve_shared_column(
                            &col,
                            None,
                            &acc[chain_start..],
                            split - chain_start,
                        )?);
                    }
                    refs
                }
                Some(JoinConstraint::None) | None => BTreeSet::new(),
            };
            // Other Keywords rule: join-predicate columns are referenced.
            self.cref.extend(refs);
            let cpos = Self::cpos_snapshot(&acc[chain_start..]);
            self.trace_step(Rule::OtherKeywords, "JOIN (⨝)", cpos, Vec::new());
        }
        Ok(())
    }

    /// Resolve one table factor into scope relations. `visible` holds the
    /// relations already bound in this `FROM`, which `LATERAL` subqueries
    /// may reference.
    pub(crate) fn resolve_table_factor(
        &mut self,
        factor: &TableFactor,
        outer: Option<&Scope<'_>>,
        visible: &[Relation],
    ) -> Result<Vec<Relation>, LineageError> {
        match factor {
            TableFactor::Table { name, alias } => {
                let base = name.base_name().to_string();
                let binding =
                    alias.as_ref().map(|a| a.name.value.clone()).unwrap_or_else(|| base.clone());
                let alias_cols = alias.as_ref().map(|a| a.columns.as_slice()).unwrap_or(&[]);

                // FROM (CTE/Subquery) rule: find it in M_CTE first.
                if let Some(cte) = self.ctes.iter().rev().find(|c| c.name == base) {
                    let columns = rename_outputs(cte.columns.clone(), alias_cols, &binding)?;
                    let rel = Relation::closed(binding, base, columns);
                    let cpos = Self::cpos_snapshot(std::slice::from_ref(&rel));
                    self.trace_step(
                        Rule::FromCteOrSubquery,
                        format!("scan CTE {}", rel.name),
                        cpos,
                        Vec::new(),
                    );
                    return Ok(vec![rel]);
                }

                // FROM (Table/View) rule — a relation produced by an
                // earlier Query-Dictionary entry.
                if let Some(lineage) = self.processed.get(&base) {
                    let columns: Vec<OutputColumn> = lineage
                        .outputs
                        .iter()
                        .map(|o| {
                            OutputColumn::new(
                                &o.name,
                                BTreeSet::from([SourceColumn::new(&base, &o.name)]),
                            )
                        })
                        .collect();
                    let columns = rename_outputs(columns, alias_cols, &binding)?;
                    self.tables.insert(base.clone());
                    let rel = Relation::closed(binding, base, columns);
                    let cpos = Self::cpos_snapshot(std::slice::from_ref(&rel));
                    self.trace_step(
                        Rule::FromTable,
                        format!("scan view {}", rel.name),
                        cpos,
                        Vec::new(),
                    );
                    return Ok(vec![rel]);
                }

                // FROM (Table/View) rule — a catalog relation.
                if let Some(schema) = self.catalog.get(&base) {
                    let columns: Vec<OutputColumn> = schema
                        .columns
                        .iter()
                        .map(|c| {
                            OutputColumn::new(
                                &c.name,
                                BTreeSet::from([SourceColumn::new(&schema.name, &c.name)]),
                            )
                        })
                        .collect();
                    let columns = rename_outputs(columns, alias_cols, &binding)?;
                    self.tables.insert(schema.name.clone());
                    let rel = Relation::closed(binding, schema.name.clone(), columns);
                    let cpos = Self::cpos_snapshot(std::slice::from_ref(&rel));
                    self.trace_step(
                        Rule::FromTable,
                        format!("scan table {}", rel.name),
                        cpos,
                        Vec::new(),
                    );
                    return Ok(vec![rel]);
                }

                // Table/View Auto-Inference: the relation is defined by a
                // QD entry that has not been processed yet — defer. With
                // the stack disabled (ablation) the relation degrades to
                // an unknown external, like prior tools.
                if self.options.auto_inference
                    && self.qd_ids.contains(&base)
                    && base != self.query_id
                {
                    return Err(LineageError::MissingDependency {
                        query: self.query_id.clone(),
                        dependency: base,
                    });
                }

                // Unknown external table: schema inferred from usage.
                self.tables.insert(base.clone());
                if !self.inferred.contains_key(&base) {
                    self.inferred.insert(base.clone(), BTreeSet::new());
                    self.diagnostics.push(
                        Diagnostic::new(
                            DiagnosticCode::UnknownRelation,
                            format!(
                                "relation {base} is not defined in the log or catalog; \
                                 inferring its schema from usage"
                            ),
                        )
                        .for_statement(&self.query_id)
                        .with_span(name.span()),
                    );
                }
                let rel = Relation::open(binding, base).with_span(name.span());
                self.trace_step(
                    Rule::FromTable,
                    format!("scan external {}", rel.name),
                    Vec::new(),
                    Vec::new(),
                );
                Ok(vec![rel])
            }
            TableFactor::Derived { lateral, subquery, alias } => {
                let alias = alias.as_ref().ok_or_else(|| {
                    LineageError::Unsupported("derived table in FROM requires an alias".into())
                })?;
                // Only LATERAL subqueries may see sibling/outer relations.
                let lateral_scope;
                let sub_outer = if *lateral {
                    lateral_scope = Scope { relations: visible, parent: outer };
                    Some(&lateral_scope)
                } else {
                    None
                };
                let outputs = self.extract_query(subquery, sub_outer)?;
                let binding = alias.name.value.clone();
                let columns = rename_outputs(outputs, &alias.columns, &binding)?;
                let rel = Relation::closed(binding.clone(), binding, columns);
                let cpos = Self::cpos_snapshot(std::slice::from_ref(&rel));
                self.trace_step(
                    Rule::FromCteOrSubquery,
                    format!("derived subquery {}", rel.binding),
                    cpos,
                    Vec::new(),
                );
                Ok(vec![rel])
            }
            TableFactor::NestedJoin(twj) => {
                let mut acc = Vec::new();
                self.process_table_with_joins(twj, outer, &mut acc)?;
                Ok(acc)
            }
        }
    }

    /// Resolve a `USING`/natural-join column on both sides of a join chain.
    /// `split` is the index separating the left relations from the joined
    /// one within `chain`.
    fn resolve_shared_column(
        &mut self,
        column: &str,
        span: Option<Span>,
        chain: &[Relation],
        split: usize,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        let mut out = BTreeSet::new();
        let mut found = false;
        // Owned worklist first: inference needs &mut self.
        let mut inferable: Vec<String> = Vec::new();
        for rel in chain {
            if rel.open {
                inferable.push(rel.name.clone());
            } else if let Some(sources) = rel.sources_of(column) {
                out.extend(sources.iter().cloned());
                found = true;
            }
        }
        if !found && inferable.is_empty() {
            let column = column.to_string();
            return self.unresolved(
                format!("column \"{column}\" does not exist"),
                span.unwrap_or_default(),
                || LineageError::ColumnNotFound { query: String::new(), column, relation: None },
            );
        }
        if !found || split < chain.len() {
            // A USING column must exist on both sides; attribute it to any
            // open relation as an inferred column.
            for name in inferable {
                out.extend(self.infer_column(&name, column, span));
            }
        }
        Ok(out)
    }
}

/// Column names common to the left (before `split`) and right (from
/// `split`) relations — the natural-join key set. Only closed relations
/// participate; open schemas cannot prove commonality.
fn natural_columns(chain: &[Relation], split: usize) -> Vec<String> {
    let (left, right) = chain.split_at(split.min(chain.len()));
    let left_names: BTreeSet<&str> = left
        .iter()
        .filter(|r| !r.open)
        .flat_map(|r| r.columns.iter().map(|c| c.name.as_str()))
        .collect();
    let mut out = Vec::new();
    for rel in right.iter().filter(|r| !r.open) {
        for c in &rel.columns {
            if left_names.contains(c.name.as_str()) && !out.contains(&c.name) {
                out.push(c.name.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed(binding: &str, cols: &[&str]) -> Relation {
        Relation::closed(
            binding,
            binding,
            cols.iter()
                .map(|c| OutputColumn::new(*c, BTreeSet::from([SourceColumn::new(binding, *c)])))
                .collect(),
        )
    }

    #[test]
    fn natural_columns_finds_shared_names() {
        let chain = vec![closed("a", &["id", "x"]), closed("b", &["id", "y"])];
        assert_eq!(natural_columns(&chain, 1), vec!["id".to_string()]);
    }

    #[test]
    fn natural_columns_ignores_open_relations() {
        let chain = vec![closed("a", &["id"]), Relation::open("b", "b")];
        assert!(natural_columns(&chain, 1).is_empty());
    }
}
