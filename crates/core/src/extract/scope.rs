//! Extraction-time scopes: the relations visible to a query block.

use crate::model::{OutputColumn, SourceColumn};
use lineagex_sqlparse::Span;
use std::collections::BTreeSet;

/// One relation visible in a `FROM` scope.
///
/// Closed relations carry their full column list. Open relations (external
/// tables absent from both the catalog and the Query Dictionary) have no
/// known schema; the extractor infers their columns from usage into an
/// engine-level map, so `columns` stays empty here.
#[derive(Debug, Clone)]
pub(crate) struct Relation {
    /// The binding name (alias, or the relation's own name).
    pub binding: String,
    /// The underlying relation name or query id (labels inferred columns).
    pub name: String,
    /// Output columns with composed sources (closed relations only).
    pub columns: Vec<OutputColumn>,
    /// True when the schema is unknown and inferred from usage.
    pub open: bool,
    /// Where the relation was bound in the source (the table factor's
    /// name), so diagnostics about the binding can point at it.
    pub span: Span,
}

impl Relation {
    /// A closed relation with known columns.
    pub fn closed(
        binding: impl Into<String>,
        name: impl Into<String>,
        columns: Vec<OutputColumn>,
    ) -> Self {
        Relation {
            binding: binding.into(),
            name: name.into(),
            columns,
            open: false,
            span: Span::default(),
        }
    }

    /// An open (schema-less) relation.
    pub fn open(binding: impl Into<String>, name: impl Into<String>) -> Self {
        Relation {
            binding: binding.into(),
            name: name.into(),
            columns: Vec::new(),
            open: true,
            span: Span::default(),
        }
    }

    /// Attach the source span the relation was bound from.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Whether this closed relation exposes `column`.
    pub fn has_column(&self, column: &str) -> bool {
        self.columns.iter().any(|c| c.name == column)
    }

    /// The sources of `column`, if exposed.
    pub fn sources_of(&self, column: &str) -> Option<&BTreeSet<SourceColumn>> {
        self.columns.iter().find(|c| c.name == column).map(|c| &c.ccon)
    }
}

/// A chain of `FROM` scopes, innermost first, for correlated resolution.
#[derive(Clone, Copy)]
pub(crate) struct Scope<'s> {
    /// Relations of this scope.
    pub relations: &'s [Relation],
    /// The enclosing query's scope, if any.
    pub parent: Option<&'s Scope<'s>>,
}

impl<'s> Scope<'s> {
    /// Iterate scopes from innermost to outermost.
    pub fn chain(&self) -> impl Iterator<Item = &Scope<'s>> {
        std::iter::successors(Some(self), |s| s.parent)
    }

    /// Find a relation by binding name anywhere in the chain.
    pub fn find_binding(&self, binding: &str) -> Option<&'s Relation> {
        self.chain().find_map(|s| s.relations.iter().find(|r| r.binding == binding))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(binding: &str, cols: &[&str]) -> Relation {
        Relation::closed(
            binding,
            binding,
            cols.iter()
                .map(|c| OutputColumn::new(*c, BTreeSet::from([SourceColumn::new(binding, *c)])))
                .collect(),
        )
    }

    #[test]
    fn column_lookup() {
        let r = rel("web", &["cid", "page"]);
        assert!(r.has_column("page"));
        assert!(!r.has_column("nope"));
        assert!(r.sources_of("cid").unwrap().contains(&SourceColumn::new("web", "cid")));
    }

    #[test]
    fn scope_chain_finds_outer_bindings() {
        let outer_rels = vec![rel("c", &["cid"])];
        let outer = Scope { relations: &outer_rels, parent: None };
        let inner_rels = vec![rel("o", &["oid"])];
        let inner = Scope { relations: &inner_rels, parent: Some(&outer) };
        assert!(inner.find_binding("o").is_some());
        assert!(inner.find_binding("c").is_some());
        assert!(inner.find_binding("zz").is_none());
        assert_eq!(inner.chain().count(), 2);
    }

    #[test]
    fn open_relations_have_no_columns() {
        let r = Relation::open("w", "web");
        assert!(r.open);
        assert!(!r.has_column("page"));
    }
}
