//! The SQL Lineage Information Extraction Module (paper §III, Table I).
//!
//! [`Extractor`] performs the post-order depth-first traversal of one
//! query's AST, applying the keyword rules of the paper's Table I:
//!
//! | Table I rule        | Implementation |
//! |---------------------|----------------|
//! | SELECT              | [`select`] — `process projection → C_con` |
//! | FROM (table/view)   | [`from_clause`] — add to `T`, columns to `C_pos` |
//! | FROM (CTE/subquery) | [`from_clause`] — look up `M_CTE` / recurse |
//! | WITH/Subquery       | [`Extractor::extract_query`] — stash into `M_CTE` |
//! | Set operation       | [`Extractor::extract_set_expr`] — branch projections into `C_ref` |
//! | Other keywords      | [`resolve`] — predicate columns into `C_ref` |
//!
//! The temporary variables of the paper map to fields: `M_CTE` is
//! [`Extractor::ctes`], `C_ref` accumulates in [`Extractor::cref`], `T` in
//! [`Extractor::tables`], and `C_pos` is implicit in the [`scope::Scope`]
//! relations (the trace snapshots materialise it for display).

pub(crate) mod from_clause;
pub(crate) mod resolve;
pub(crate) mod scope;
pub(crate) mod select;

use crate::diagnostics::Diagnostic;
use crate::error::LineageError;
use crate::model::{OutputColumn, QueryLineage, SourceColumn};
use crate::options::ExtractOptions;
use crate::trace::{Rule, TraceLog};
use lineagex_catalog::Catalog;
use lineagex_sqlparse::ast::{Expr, Ident, Literal, Query, SetExpr};
use std::collections::{BTreeMap, BTreeSet};

pub(crate) use scope::{Relation, Scope};

/// One entry of `M_CTE`: a named intermediate result.
#[derive(Debug, Clone)]
pub(crate) struct CteInfo {
    pub name: String,
    pub columns: Vec<OutputColumn>,
}

/// Extraction state for a single Query-Dictionary entry.
pub(crate) struct Extractor<'e> {
    /// The id of the query being extracted (for error messages).
    pub query_id: String,
    /// All Query-Dictionary identifiers (to detect missing dependencies).
    pub qd_ids: &'e BTreeSet<String>,
    /// Lineage of already-processed QD entries.
    pub processed: &'e BTreeMap<String, QueryLineage>,
    /// The effective catalog (user catalog merged with log DDL).
    pub catalog: &'e Catalog,
    /// Extraction options.
    pub options: &'e ExtractOptions,
    /// Engine-level usage-inferred schemas of external tables.
    pub inferred: &'e mut BTreeMap<String, BTreeSet<String>>,
    /// `C_ref` accumulator for this query.
    pub cref: BTreeSet<SourceColumn>,
    /// Table lineage `T` accumulator.
    pub tables: BTreeSet<String>,
    /// `M_CTE`: the CTE stack.
    pub ctes: Vec<CteInfo>,
    /// Non-fatal findings, span-tagged where the source location is known.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether lenient mode degraded part of this query's lineage.
    pub partial: bool,
    /// Optional traversal trace (Fig. 4).
    pub trace: Option<TraceLog>,
}

impl<'e> Extractor<'e> {
    /// Create an extractor for one query.
    pub fn new(
        query_id: impl Into<String>,
        qd_ids: &'e BTreeSet<String>,
        processed: &'e BTreeMap<String, QueryLineage>,
        catalog: &'e Catalog,
        options: &'e ExtractOptions,
        inferred: &'e mut BTreeMap<String, BTreeSet<String>>,
    ) -> Self {
        let trace = options.trace.then(TraceLog::default);
        Extractor {
            query_id: query_id.into(),
            qd_ids,
            processed,
            catalog,
            options,
            inferred,
            cref: BTreeSet::new(),
            tables: BTreeSet::new(),
            ctes: Vec::new(),
            diagnostics: Vec::new(),
            partial: false,
            trace,
        }
    }

    /// Extract the lineage of a full query, returning its output columns.
    pub fn extract(&mut self, query: &Query) -> Result<Vec<OutputColumn>, LineageError> {
        self.extract_query(query, None)
    }

    /// Recursive entry point: handles `WITH`, the body, and `ORDER BY`.
    pub(crate) fn extract_query(
        &mut self,
        query: &Query,
        outer: Option<&Scope<'_>>,
    ) -> Result<Vec<OutputColumn>, LineageError> {
        let cte_mark = self.ctes.len();
        if let Some(with) = &query.with {
            for cte in &with.ctes {
                let name = cte.alias.name.value.clone();
                let outputs = if with.recursive {
                    self.extract_recursive_cte_body(&name, &cte.query)?
                } else {
                    self.extract_query(&cte.query, None)?
                };
                let outputs = rename_outputs(outputs, &cte.alias.columns, &name)?;
                // WITH/Subquery rule: stash the intermediate lineage into
                // M_CTE for later FROM references.
                self.trace_step(
                    Rule::WithSubquery,
                    format!("register CTE {name}"),
                    Vec::new(),
                    Vec::new(),
                );
                self.ctes.push(CteInfo { name, columns: outputs });
            }
        }

        let (outputs, relations) = self.extract_set_expr(&query.body, outer)?;

        if !query.order_by.is_empty() {
            let scope = Scope { relations: &relations, parent: outer };
            for item in &query.order_by {
                let refs = self.resolve_order_key(&item.expr, &outputs, &scope)?;
                self.cref.extend(refs);
            }
            self.trace_step(Rule::OtherKeywords, "ORDER BY", Vec::new(), Vec::new());
        }

        self.ctes.truncate(cte_mark);
        Ok(outputs)
    }

    /// A recursive CTE's schema comes from its seed branch; register that
    /// first so the self-reference resolves, then extract the full body.
    fn extract_recursive_cte_body(
        &mut self,
        name: &str,
        body: &Query,
    ) -> Result<Vec<OutputColumn>, LineageError> {
        if let SetExpr::SetOperation { left, .. } = &body.body {
            let (seed_outputs, _) = self.extract_set_expr(left, None)?;
            self.ctes.push(CteInfo { name: name.to_string(), columns: seed_outputs });
            let result = self.extract_query(body, None);
            self.ctes.pop();
            result
        } else {
            self.extract_query(body, None)
        }
    }

    /// Dispatch on the query body; returns the output columns plus the
    /// `FROM` relations when the body is a plain `SELECT` (for `ORDER BY`).
    pub(crate) fn extract_set_expr(
        &mut self,
        body: &SetExpr,
        outer: Option<&Scope<'_>>,
    ) -> Result<(Vec<OutputColumn>, Vec<Relation>), LineageError> {
        match body {
            SetExpr::Select(select) => self.extract_select(select, outer),
            SetExpr::Query(query) => Ok((self.extract_query(query, outer)?, Vec::new())),
            SetExpr::SetOperation { op, left, right, .. } => {
                let (louts, _) = self.extract_set_expr(left, outer)?;
                let (routs, _) = self.extract_set_expr(right, outer)?;
                if louts.len() != routs.len() {
                    return Err(LineageError::SetOperationArityMismatch {
                        query: self.query_id.clone(),
                        left: louts.len(),
                        right: routs.len(),
                    });
                }
                // Set Operation rule: every projection column of every
                // branch becomes referenced — a change to any of them
                // changes row membership of the whole result.
                for col in louts.iter().chain(routs.iter()) {
                    self.cref.extend(col.ccon.iter().cloned());
                }
                let merged: Vec<OutputColumn> = louts
                    .into_iter()
                    .zip(routs)
                    .map(|(l, r)| {
                        let mut ccon = l.ccon;
                        ccon.extend(r.ccon);
                        OutputColumn { name: l.name, ccon }
                    })
                    .collect();
                let names: Vec<String> = merged.iter().map(|c| c.name.clone()).collect();
                self.trace_step(
                    Rule::SetOperation,
                    format!("{op:?} over {} columns", merged.len()),
                    Vec::new(),
                    names,
                );
                Ok((merged, Vec::new()))
            }
            SetExpr::Values(values) => {
                let width = values.0.first().map(|r| r.len()).unwrap_or(0);
                let outputs = (0..width)
                    .map(|i| OutputColumn::new(format!("column{}", i + 1), BTreeSet::new()))
                    .collect();
                Ok((outputs, Vec::new()))
            }
        }
    }

    /// Resolve one `ORDER BY` key: positional number, output alias, or an
    /// expression over the select scope.
    fn resolve_order_key(
        &mut self,
        expr: &Expr,
        outputs: &[OutputColumn],
        scope: &Scope<'_>,
    ) -> Result<BTreeSet<SourceColumn>, LineageError> {
        match expr {
            Expr::Literal(Literal::Number(n)) => {
                if let Ok(idx) = n.parse::<usize>() {
                    if idx >= 1 && idx <= outputs.len() {
                        return Ok(outputs[idx - 1].ccon.clone());
                    }
                }
                Ok(BTreeSet::new())
            }
            Expr::Identifier(ident) => {
                if let Some(col) = outputs.iter().find(|c| c.name == ident.value) {
                    return Ok(col.ccon.clone());
                }
                self.resolve_expr(expr, Some(scope))
            }
            other => self.resolve_expr(other, Some(scope)),
        }
    }

    /// Record a trace step when tracing is enabled.
    pub(crate) fn trace_step(
        &mut self,
        rule: Rule,
        node: impl Into<String>,
        cpos: Vec<String>,
        projection: Vec<String>,
    ) {
        if let Some(trace) = &mut self.trace {
            trace.record(rule, node, &self.tables, cpos, &self.cref, projection);
        }
    }

    /// Materialise `C_pos` (all in-scope candidate columns) for a trace
    /// snapshot.
    pub(crate) fn cpos_snapshot(relations: &[Relation]) -> Vec<String> {
        relations
            .iter()
            .flat_map(|r| r.columns.iter().map(move |c| format!("{}.{}", r.binding, c.name)))
            .collect()
    }
}

/// Apply an explicit column-name list positionally (CTE/view/table alias).
pub(crate) fn rename_outputs(
    outputs: Vec<OutputColumn>,
    new_names: &[Ident],
    owner: &str,
) -> Result<Vec<OutputColumn>, LineageError> {
    if new_names.is_empty() {
        return Ok(outputs);
    }
    if new_names.len() != outputs.len() {
        return Err(LineageError::ColumnCountMismatch {
            owner: owner.to_string(),
            declared: new_names.len(),
            actual: outputs.len(),
        });
    }
    Ok(outputs
        .into_iter()
        .zip(new_names)
        .map(|(o, n)| OutputColumn { name: n.value.clone(), ccon: o.ccon })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_sqlparse::ast::Ident;

    #[test]
    fn rename_outputs_positional() {
        let outs =
            vec![OutputColumn::new("a", BTreeSet::new()), OutputColumn::new("b", BTreeSet::new())];
        let renamed = rename_outputs(outs, &[Ident::new("x"), Ident::new("y")], "v").unwrap();
        assert_eq!(renamed[0].name, "x");
        assert_eq!(renamed[1].name, "y");
    }

    #[test]
    fn rename_outputs_arity_mismatch() {
        let outs = vec![OutputColumn::new("a", BTreeSet::new())];
        let err = rename_outputs(outs, &[Ident::new("x"), Ident::new("y")], "v").unwrap_err();
        assert!(matches!(err, LineageError::ColumnCountMismatch { declared: 2, actual: 1, .. }));
    }

    #[test]
    fn rename_outputs_empty_keeps_names() {
        let outs = vec![OutputColumn::new("a", BTreeSet::new())];
        let renamed = rename_outputs(outs, &[], "v").unwrap();
        assert_eq!(renamed[0].name, "a");
    }
}
