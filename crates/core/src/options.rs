//! Extraction configuration.

use lineagex_sqlparse::DialectKind;

/// How to handle an unqualified column that matches several relations in
/// the same scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AmbiguityPolicy {
    /// Attribute the reference to *every* matching relation — the paper's
    /// conservative semantics ("any change may affect the output"), and the
    /// default.
    #[default]
    AttributeAll,
    /// Attribute to the first matching relation in FROM order.
    FirstMatch,
    /// Raise [`crate::LineageError::AmbiguousColumn`], like PostgreSQL.
    Error,
}

/// Options controlling lineage extraction.
///
/// Deliberately `Copy`: the pipeline passes options through every layer
/// (façade → inference engine → extractor), and keeping them plain data
/// means repeated [`crate::LineageX::run`] calls never pay an allocation
/// for configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractOptions {
    /// Ambiguity handling for unqualified columns.
    pub ambiguity: AmbiguityPolicy,
    /// Record a traversal trace (Fig. 4) for every query. Off by default;
    /// costs a little memory per AST node visited.
    pub trace: bool,
    /// Table/View Auto-Inference (the paper's deferral stack). On by
    /// default; turning it off makes unprocessed dictionary relations
    /// behave like unknown externals — the ablation showing what the
    /// stack mechanism buys (see the `ablation_stack` harness).
    pub auto_inference: bool,
    /// Lenient mode: conditions that abort a strict run degrade into
    /// span-tagged [`crate::Diagnostic`]s instead. Unparsable statements
    /// are skipped (parsing resumes at the next `;`), duplicate query
    /// ids resolve last-definition-wins, unresolvable columns and
    /// dependency cycles mark the affected query's lineage *partial*
    /// rather than failing the whole batch. Off by default: a clean log
    /// should keep failing loudly when it breaks.
    pub lenient: bool,
    /// The SQL dialect the pipeline lexes and parses under. Defaults to
    /// the permissive ANSI core; selecting a named dialect enables its
    /// grammar extensions (`QUALIFY`, `TOP n`, `MERGE`, dialect comment
    /// and quoting forms) and tightens quoting to what that engine
    /// actually accepts.
    pub dialect: DialectKind,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            ambiguity: AmbiguityPolicy::default(),
            trace: false,
            auto_inference: true,
            lenient: false,
            dialect: DialectKind::Ansi,
        }
    }
}

impl ExtractOptions {
    /// Default options.
    pub fn new() -> Self {
        ExtractOptions::default()
    }

    /// Set the ambiguity policy.
    pub fn with_ambiguity(mut self, policy: AmbiguityPolicy) -> Self {
        self.ambiguity = policy;
        self
    }

    /// Enable traversal tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Disable the auto-inference stack (ablation).
    pub fn without_auto_inference(mut self) -> Self {
        self.auto_inference = false;
        self
    }

    /// Enable lenient (error-recovering) extraction.
    pub fn with_lenient(mut self) -> Self {
        self.lenient = true;
        self
    }

    /// Select the SQL dialect to lex and parse under.
    pub fn with_dialect(mut self, dialect: DialectKind) -> Self {
        self.dialect = dialect;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_semantics() {
        let opts = ExtractOptions::new();
        assert_eq!(opts.ambiguity, AmbiguityPolicy::AttributeAll);
        assert!(!opts.trace);
        assert!(opts.auto_inference);
        assert!(!opts.lenient);
        assert_eq!(opts.dialect, DialectKind::Ansi);
    }

    #[test]
    fn builder_chains() {
        let opts = ExtractOptions::new()
            .with_ambiguity(AmbiguityPolicy::Error)
            .with_trace()
            .without_auto_inference()
            .with_lenient()
            .with_dialect(DialectKind::Snowflake);
        assert_eq!(opts.ambiguity, AmbiguityPolicy::Error);
        assert!(opts.trace);
        assert!(!opts.auto_inference);
        assert!(opts.lenient);
        assert_eq!(opts.dialect, DialectKind::Snowflake);
    }
}
