//! The JSON lineage document (the paper's `output.json`).
//!
//! The Python LineageX emits one JSON object per query with its table
//! lineage and the `C_con`/`C_ref`/`C_both` column sets. [`JsonReport`]
//! mirrors that shape and serialises with `serde_json`.

use crate::model::{LineageGraph, SourceColumn};
use serde::Serialize;
use std::collections::BTreeMap;

/// The serialisable lineage document for a whole run.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct JsonReport {
    /// Per-query lineage records keyed by query id.
    pub queries: BTreeMap<String, QueryRecord>,
    /// All relation nodes with their columns.
    pub tables: BTreeMap<String, TableRecord>,
    /// The processing order chosen by the auto-inference stack.
    pub processing_order: Vec<String>,
}

/// One query's lineage record.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct QueryRecord {
    /// Source relations (table lineage `T`).
    pub tables: Vec<String>,
    /// Per-output-column contributing sources (`C_con`).
    pub columns: BTreeMap<String, Vec<String>>,
    /// Query-level referenced columns (`C_ref`).
    pub referenced: Vec<String>,
    /// Columns both contributed and referenced (`C_both`).
    pub both: Vec<String>,
}

/// One relation node.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct TableRecord {
    /// Node kind (`base_table`, `view`, ...).
    pub kind: String,
    /// Column names in order.
    pub columns: Vec<String>,
}

impl JsonReport {
    /// Build the document from a lineage graph.
    pub fn from_graph(graph: &LineageGraph) -> Self {
        let mut queries = BTreeMap::new();
        for (id, q) in &graph.queries {
            let mut columns = BTreeMap::new();
            for out in &q.outputs {
                columns.insert(
                    out.name.clone(),
                    out.ccon.iter().map(SourceColumn::to_string).collect(),
                );
            }
            queries.insert(
                id.clone(),
                QueryRecord {
                    tables: q.tables.iter().cloned().collect(),
                    columns,
                    referenced: q.cref.iter().map(SourceColumn::to_string).collect(),
                    both: q.cboth().iter().map(SourceColumn::to_string).collect(),
                },
            );
        }
        let mut tables = BTreeMap::new();
        for (name, node) in &graph.nodes {
            let kind = match node.kind {
                crate::model::NodeKind::BaseTable => "base_table",
                crate::model::NodeKind::View => "view",
                crate::model::NodeKind::Table => "table",
                crate::model::NodeKind::QueryResult => "query",
                crate::model::NodeKind::External => "external",
            };
            tables.insert(
                name.clone(),
                TableRecord { kind: kind.to_string(), columns: node.columns.clone() },
            );
        }
        JsonReport { queries, tables, processing_order: graph.order.clone() }
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::InferenceEngine;
    use crate::options::ExtractOptions;
    use crate::preprocess::QueryDict;
    use lineagex_catalog::Catalog;

    fn graph() -> LineageGraph {
        let qd = QueryDict::from_sql(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t WHERE b > 0;",
        )
        .unwrap();
        InferenceEngine::new(qd, Catalog::new(), ExtractOptions::default()).run().unwrap().graph
    }

    #[test]
    fn report_structure() {
        let report = JsonReport::from_graph(&graph());
        let v = &report.queries["v"];
        assert_eq!(v.tables, vec!["t"]);
        assert_eq!(v.columns["a"], vec!["t.a"]);
        assert_eq!(v.referenced, vec!["t.b"]);
        assert!(v.both.is_empty());
        assert_eq!(report.tables["t"].kind, "base_table");
        assert_eq!(report.tables["v"].kind, "view");
        assert_eq!(report.processing_order, vec!["v"]);
    }

    #[test]
    fn serialises_to_json() {
        let report = JsonReport::from_graph(&graph());
        let json = report.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["queries"]["v"]["tables"][0], "t");
        assert_eq!(parsed["queries"]["v"]["columns"]["a"][0], "t.a");
    }

    #[test]
    fn both_set_appears() {
        let qd = QueryDict::from_sql(
            "CREATE TABLE t (a int);
             CREATE VIEW v AS SELECT a FROM t WHERE a > 0;",
        )
        .unwrap();
        let graph = InferenceEngine::new(qd, Catalog::new(), ExtractOptions::default())
            .run()
            .unwrap()
            .graph;
        let report = JsonReport::from_graph(&graph);
        assert_eq!(report.queries["v"].both, vec!["t.a"]);
    }
}
