//! The JSON lineage documents.
//!
//! Two wire formats live here:
//!
//! * [`JsonReport`] — **v1**, the paper's `output.json`: one object per
//!   query with its table lineage and the `C_con`/`C_ref`/`C_both`
//!   column sets. Kept byte-stable for existing consumers (the CLI's
//!   `--format json-v1`, the golden test).
//! * [`ReportV2`] — **v2** (`schema_version: 2`), the versioned document
//!   every front door serialises through: graph (relations + edges),
//!   per-query lineage *including diagnostics and partial flags*, run
//!   diagnostics, and stats, in one deterministic document. Because it
//!   carries no processing order and every collection is sorted, equal
//!   graphs produce byte-identical documents regardless of backend
//!   (batch or incremental) or parallelism.
//!
//! [`QueryReport`] is the schema-version-2 envelope for one
//! [`QueryAnswer`] (the `lineagex query`
//! subcommand's `--format json`).

use crate::diagnostics::Diagnostic;
use crate::model::{EdgeKind, LineageGraph, NodeKind, QueryKind, SourceColumn};
use crate::query::QueryAnswer;
use serde::Serialize;
use std::collections::BTreeMap;

/// The wire schema version emitted by [`ReportV2`] and [`QueryReport`].
pub const SCHEMA_VERSION: u32 = 2;

/// The serialisable lineage document for a whole run (v1).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct JsonReport {
    /// Per-query lineage records keyed by query id.
    pub queries: BTreeMap<String, QueryRecord>,
    /// All relation nodes with their columns.
    pub tables: BTreeMap<String, TableRecord>,
    /// The processing order chosen by the auto-inference stack.
    pub processing_order: Vec<String>,
}

/// One query's lineage record (v1).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct QueryRecord {
    /// Source relations (table lineage `T`).
    pub tables: Vec<String>,
    /// Per-output-column contributing sources (`C_con`).
    pub columns: BTreeMap<String, Vec<String>>,
    /// Query-level referenced columns (`C_ref`).
    pub referenced: Vec<String>,
    /// Columns both contributed and referenced (`C_both`).
    pub both: Vec<String>,
}

/// One relation node.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct TableRecord {
    /// Node kind (`base_table`, `view`, ...).
    pub kind: String,
    /// Column names in order.
    pub columns: Vec<String>,
}

/// The kebab label of a node kind on the wire.
pub(crate) fn node_kind_label(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::BaseTable => "base_table",
        NodeKind::View => "view",
        NodeKind::Table => "table",
        NodeKind::QueryResult => "query",
        NodeKind::External => "external",
    }
}

/// The kebab label of an edge kind on the wire.
pub(crate) fn edge_kind_label(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::Contribute => "contribute",
        EdgeKind::Reference => "reference",
        EdgeKind::Both => "both",
    }
}

/// The label of a query kind on the wire (v2).
fn query_kind_label(kind: &QueryKind) -> &'static str {
    match kind {
        QueryKind::View { materialized: false } => "view",
        QueryKind::View { materialized: true } => "materialized_view",
        QueryKind::TableAs => "table_as",
        QueryKind::Insert => "insert",
        QueryKind::Update => "update",
        QueryKind::Select => "select",
    }
}

impl JsonReport {
    /// Build the v1 document from a lineage graph.
    pub fn from_graph(graph: &LineageGraph) -> Self {
        let mut queries = BTreeMap::new();
        for (id, q) in &graph.queries {
            let mut columns = BTreeMap::new();
            for out in &q.outputs {
                columns.insert(
                    out.name.clone(),
                    out.ccon.iter().map(SourceColumn::to_string).collect(),
                );
            }
            queries.insert(
                id.clone(),
                QueryRecord {
                    tables: q.tables.iter().cloned().collect(),
                    columns,
                    referenced: q.cref.iter().map(SourceColumn::to_string).collect(),
                    both: q.cboth().iter().map(SourceColumn::to_string).collect(),
                },
            );
        }
        let mut tables = BTreeMap::new();
        for (name, node) in &graph.nodes {
            tables.insert(
                name.clone(),
                TableRecord {
                    kind: node_kind_label(node.kind).to_string(),
                    columns: node.columns.clone(),
                },
            );
        }
        JsonReport { queries, tables, processing_order: graph.order.clone() }
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }
}

/// The versioned lineage document (v2): the one wire format `core`,
/// `engine`, `cli`, and `viz` all serialise through.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ReportV2 {
    /// Always [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// All relation nodes with their kinds and columns.
    pub relations: BTreeMap<String, TableRecord>,
    /// Per-query lineage keyed by query id.
    pub queries: BTreeMap<String, QueryRecordV2>,
    /// Every column-level edge (paper semantics), sorted by
    /// `(from, to)`.
    pub edges: Vec<EdgeRecord>,
    /// Run-/session-level diagnostics (per-query ones are embedded in
    /// their query record).
    pub diagnostics: Vec<Diagnostic>,
    /// Summary statistics of the graph.
    pub stats: crate::model::GraphStats,
}

/// One query's lineage record (v2). Unlike v1, outputs keep projection
/// order and the record embeds its diagnostics and partial flag.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct QueryRecordV2 {
    /// Statement kind (`view`, `materialized_view`, `table_as`,
    /// `insert`, `update`, `select`).
    pub kind: String,
    /// Source relations (table lineage `T`).
    pub tables: Vec<String>,
    /// Output columns in projection order with their `C_con` sources.
    pub outputs: Vec<OutputRecord>,
    /// Query-level referenced columns (`C_ref`).
    pub referenced: Vec<String>,
    /// Columns both contributed and referenced (`C_both`).
    pub both: Vec<String>,
    /// Whether lenient mode degraded part of this lineage.
    pub partial: bool,
    /// The query's extraction diagnostics.
    pub diagnostics: Vec<Diagnostic>,
}

/// One output column with its contributing sources (v2).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct OutputRecord {
    /// The output column name.
    pub name: String,
    /// `C_con` as `table.column` strings, sorted.
    pub sources: Vec<String>,
}

/// One column-level edge on the wire.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct EdgeRecord {
    /// `table.column` source.
    pub from: String,
    /// `table.column` target.
    pub to: String,
    /// `contribute` / `reference` / `both`.
    pub kind: String,
}

impl ReportV2 {
    /// Build the v2 document from a settled graph and run diagnostics.
    pub fn from_graph(graph: &LineageGraph, run_diagnostics: &[Diagnostic]) -> Self {
        let mut relations = BTreeMap::new();
        for (name, node) in &graph.nodes {
            relations.insert(
                name.clone(),
                TableRecord {
                    kind: node_kind_label(node.kind).to_string(),
                    columns: node.columns.clone(),
                },
            );
        }
        let mut queries = BTreeMap::new();
        for (id, q) in &graph.queries {
            queries.insert(
                id.clone(),
                QueryRecordV2 {
                    kind: query_kind_label(&q.kind).to_string(),
                    tables: q.tables.iter().cloned().collect(),
                    outputs: q
                        .outputs
                        .iter()
                        .map(|out| OutputRecord {
                            name: out.name.clone(),
                            sources: out.ccon.iter().map(SourceColumn::to_string).collect(),
                        })
                        .collect(),
                    referenced: q.cref.iter().map(SourceColumn::to_string).collect(),
                    both: q.cboth().iter().map(SourceColumn::to_string).collect(),
                    partial: q.partial,
                    diagnostics: q.diagnostics.clone(),
                },
            );
        }
        let edges = graph
            .all_edges()
            .into_iter()
            .map(|e| EdgeRecord {
                from: e.from.to_string(),
                to: e.to.to_string(),
                kind: edge_kind_label(e.kind).to_string(),
            })
            .collect();
        ReportV2 {
            schema_version: SCHEMA_VERSION,
            relations,
            queries,
            edges,
            diagnostics: run_diagnostics.to_vec(),
            stats: graph.stats(),
        }
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }
}

/// The schema-version-2 envelope for one graph-query answer — what
/// `lineagex query … --format json` emits.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct QueryReport {
    /// Always [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The direction that was walked (`downstream` / `upstream`).
    pub direction: String,
    /// Resolved origins as `table.column` strings (bare relation names
    /// at table granularity).
    pub origins: Vec<String>,
    /// Columns reached, sorted by `(distance, column)`.
    pub columns: Vec<QueryColumnRecord>,
    /// Relations reached (origins at distance 0), sorted by
    /// `(distance, name)`.
    pub relations: Vec<QueryRelationRecord>,
    /// The shortest path to the requested target, when one was set and
    /// reachable.
    pub path: Option<Vec<QueryPathRecord>>,
    /// Touched relations whose lineage is *partial* (lenient mode
    /// degraded part of it) — the answer should not be read as
    /// authoritative for these. Populated by
    /// [`QueryReport::with_context`].
    pub partial_relations: Vec<String>,
    /// Run-level diagnostics of the extraction the query ran over.
    /// Populated by [`QueryReport::with_context`].
    pub diagnostics: Vec<Diagnostic>,
    /// The renderable traversal cone.
    pub subgraph: SubgraphRecord,
}

/// One reached column on the wire.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct QueryColumnRecord {
    /// `table.column`.
    pub column: String,
    /// Merged edge kind into it.
    pub kind: String,
    /// Hops from the nearest origin.
    pub distance: usize,
}

/// One reached relation on the wire.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct QueryRelationRecord {
    /// Relation name.
    pub name: String,
    /// Hops from the nearest origin.
    pub distance: usize,
}

/// One path hop on the wire.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct QueryPathRecord {
    /// `table.column` stepped onto.
    pub column: String,
    /// Kind of the edge into it.
    pub kind: String,
}

/// The traversal cone on the wire.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct SubgraphRecord {
    /// Touched relations (column lists restricted to touched columns).
    pub relations: BTreeMap<String, TableRecord>,
    /// Edges between touched columns.
    pub edges: Vec<EdgeRecord>,
}

impl QueryReport {
    /// Build the wire envelope from a typed answer.
    pub fn from_answer(answer: &QueryAnswer) -> Self {
        let origins = answer
            .origins
            .iter()
            .map(|o| if o.column.is_empty() { o.table.clone() } else { o.to_string() })
            .collect();
        let columns = answer
            .columns
            .iter()
            .map(|m| QueryColumnRecord {
                column: m.column.to_string(),
                kind: edge_kind_label(m.kind).to_string(),
                distance: m.distance,
            })
            .collect();
        let relations = answer
            .relations
            .iter()
            .map(|r| QueryRelationRecord { name: r.name.clone(), distance: r.distance })
            .collect();
        let path = answer.path.as_ref().map(|steps| {
            steps
                .iter()
                .map(|s| QueryPathRecord {
                    column: s.column.to_string(),
                    kind: edge_kind_label(s.kind).to_string(),
                })
                .collect()
        });
        let subgraph = SubgraphRecord {
            relations: answer
                .subgraph
                .nodes
                .iter()
                .map(|(name, node)| {
                    (
                        name.clone(),
                        TableRecord {
                            kind: node_kind_label(node.kind).to_string(),
                            columns: node.columns.clone(),
                        },
                    )
                })
                .collect(),
            edges: answer
                .subgraph
                .edges
                .iter()
                .map(|e| EdgeRecord {
                    from: e.from.to_string(),
                    to: e.to.to_string(),
                    kind: edge_kind_label(e.kind).to_string(),
                })
                .collect(),
        };
        QueryReport {
            schema_version: SCHEMA_VERSION,
            direction: answer.direction.as_str().to_string(),
            origins,
            columns,
            relations,
            path,
            partial_relations: Vec::new(),
            diagnostics: Vec::new(),
            subgraph,
        }
    }

    /// Attach the extraction context: run-level diagnostics and the
    /// partial flags of the touched relations, so a lenient run's
    /// degraded lineage is never silently presented as authoritative.
    pub fn with_context(mut self, graph: &LineageGraph, run_diagnostics: &[Diagnostic]) -> Self {
        self.partial_relations = self
            .relations
            .iter()
            .filter(|r| graph.queries.get(&r.name).is_some_and(|q| q.partial))
            .map(|r| r.name.clone())
            .collect();
        self.diagnostics = run_diagnostics.to_vec();
        self
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::InferenceEngine;
    use crate::options::ExtractOptions;
    use crate::preprocess::QueryDict;
    use crate::query::QuerySpec;
    use lineagex_catalog::Catalog;

    fn graph() -> LineageGraph {
        let qd = QueryDict::from_sql(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t WHERE b > 0;",
        )
        .unwrap();
        InferenceEngine::new(qd, Catalog::new(), ExtractOptions::default()).run().unwrap().graph
    }

    #[test]
    fn report_structure() {
        let report = JsonReport::from_graph(&graph());
        let v = &report.queries["v"];
        assert_eq!(v.tables, vec!["t"]);
        assert_eq!(v.columns["a"], vec!["t.a"]);
        assert_eq!(v.referenced, vec!["t.b"]);
        assert!(v.both.is_empty());
        assert_eq!(report.tables["t"].kind, "base_table");
        assert_eq!(report.tables["v"].kind, "view");
        assert_eq!(report.processing_order, vec!["v"]);
    }

    #[test]
    fn serialises_to_json() {
        let report = JsonReport::from_graph(&graph());
        let json = report.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["queries"]["v"]["tables"][0], "t");
        assert_eq!(parsed["queries"]["v"]["columns"]["a"][0], "t.a");
    }

    #[test]
    fn both_set_appears() {
        let qd = QueryDict::from_sql(
            "CREATE TABLE t (a int);
             CREATE VIEW v AS SELECT a FROM t WHERE a > 0;",
        )
        .unwrap();
        let graph = InferenceEngine::new(qd, Catalog::new(), ExtractOptions::default())
            .run()
            .unwrap()
            .graph;
        let report = JsonReport::from_graph(&graph);
        assert_eq!(report.queries["v"].both, vec!["t.a"]);
    }

    #[test]
    fn report_v2_structure() {
        let report = ReportV2::from_graph(&graph(), &[]);
        assert_eq!(report.schema_version, 2);
        assert_eq!(report.relations["t"].kind, "base_table");
        let v = &report.queries["v"];
        assert_eq!(v.kind, "view");
        assert_eq!(v.outputs[0].name, "a");
        assert_eq!(v.outputs[0].sources, vec!["t.a"]);
        assert_eq!(v.referenced, vec!["t.b"]);
        assert!(!v.partial);
        assert_eq!(report.edges.len(), 2);
        assert_eq!(report.stats.queries, 1);
        let json = report.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["schema_version"], 2);
        assert_eq!(parsed["queries"]["v"]["outputs"][0]["name"], "a");
        assert_eq!(parsed["stats"]["relations"], 2);
    }

    #[test]
    fn report_v2_is_deterministic_and_orderless() {
        // Same graph value, different processing order: identical bytes.
        let mut g1 = graph();
        let mut g2 = graph();
        g1.order = vec!["v".into()];
        g2.order = vec!["v".into(), "v".into()];
        assert_eq!(
            ReportV2::from_graph(&g1, &[]).to_json(),
            ReportV2::from_graph(&g2, &[]).to_json()
        );
    }

    #[test]
    fn query_report_envelope() {
        let g = graph();
        let answer = QuerySpec::new().from("t.a").downstream().run_on(&g);
        let report = QueryReport::from_answer(&answer);
        assert_eq!(report.schema_version, 2);
        assert_eq!(report.direction, "downstream");
        assert_eq!(report.origins, vec!["t.a"]);
        assert_eq!(report.columns[0].column, "v.a");
        assert_eq!(report.columns[0].kind, "contribute");
        assert_eq!(report.relations[0].name, "t");
        assert!(report.path.is_none());
        assert_eq!(report.subgraph.relations["t"].columns, vec!["a"]);
        let parsed: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(parsed["schema_version"], 2);
        assert_eq!(parsed["columns"][0]["distance"], 1);
    }
}
