//! EXPLAIN-based extraction — "when the database connection is available"
//! (paper §III).
//!
//! Instead of traversing the raw AST, this path asks the (simulated)
//! database to bind each query, obtaining a plan whose column references
//! are resolved against real metadata. Missing views raise
//! `UndefinedTable` exactly like Postgres; the same LIFO stack defers the
//! current query, **creates the dependency's view first**, and resumes —
//! the paper's "additional step to create the views".
//!
//! The resulting lineage is convertible 1:1 with the static path's on
//! catalog-complete workloads, which the integration tests assert.

use crate::error::LineageError;
use crate::infer::LineageResult;
use crate::model::{LineageGraph, Node, NodeKind, OutputColumn, QueryKind, QueryLineage};
use crate::preprocess::{QueryDict, QueryEntry};
use lineagex_catalog::{DbError, PlanNode, SimulatedDatabase, SourceColumn};
use lineagex_sqlparse::ast::{Ident, Statement};
use std::collections::{BTreeMap, BTreeSet};

/// Extract lineage through a simulated database connection.
pub struct ExplainPathExtractor {
    db: SimulatedDatabase,
    qd: QueryDict,
    processed: BTreeMap<String, QueryLineage>,
    order: Vec<String>,
    deferrals: Vec<(String, String)>,
}

impl ExplainPathExtractor {
    /// Create an extractor over a dictionary and a database whose catalog
    /// holds the base tables. DDL in the log is loaded into the database.
    pub fn new(qd: QueryDict, mut db: SimulatedDatabase) -> Self {
        for schema in qd.ddl_catalog.relations() {
            let mut catalog = db.catalog().clone();
            catalog.add_or_replace(schema.clone());
            db = SimulatedDatabase::with_catalog(catalog);
        }
        ExplainPathExtractor {
            db,
            qd,
            processed: BTreeMap::new(),
            order: Vec::new(),
            deferrals: Vec::new(),
        }
    }

    /// Run extraction over every entry.
    pub fn run(mut self) -> Result<LineageResult, LineageError> {
        let ids: Vec<String> = self.qd.ids().map(String::from).collect();
        for id in &ids {
            self.process(id)?;
        }

        let mut graph = LineageGraph::default();
        for schema in self.db.catalog().relations() {
            // Every relation the connection knows becomes a node; views
            // created from QD entries are replaced below with richer kinds.
            let kind = if schema.is_view() { NodeKind::View } else { NodeKind::BaseTable };
            graph.nodes.insert(
                schema.name.clone(),
                Node {
                    name: schema.name.clone(),
                    kind,
                    columns: schema.column_names().map(String::from).collect(),
                },
            );
        }
        for (id, lineage) in &self.processed {
            let kind = match lineage.kind {
                QueryKind::View { .. } => NodeKind::View,
                QueryKind::TableAs | QueryKind::Insert | QueryKind::Update => NodeKind::Table,
                QueryKind::Select => NodeKind::QueryResult,
            };
            graph.nodes.insert(
                id.clone(),
                Node {
                    name: id.clone(),
                    kind,
                    columns: lineage.outputs.iter().map(|o| o.name.clone()).collect(),
                },
            );
        }
        graph.queries = self.processed;
        graph.order = self.order;
        Ok(LineageResult {
            graph,
            traces: BTreeMap::new(),
            deferrals: self.deferrals,
            inferred: BTreeMap::new(),
            diagnostics: self.qd.diagnostics,
            index: Default::default(),
        })
    }

    /// Iterative LIFO deferral stack, mirroring
    /// [`crate::infer::InferenceEngine`]: on `UndefinedTable`, the current
    /// query stays deferred while the dependency's view is created first.
    fn process(&mut self, root: &str) -> Result<(), LineageError> {
        let mut stack: Vec<String> = vec![root.to_string()];
        while let Some(id) = stack.last().cloned() {
            if self.processed.contains_key(&id) {
                stack.pop();
                continue;
            }
            let entry = self.qd.get(&id).expect("id from dictionary").clone();
            match self.try_bind(&entry) {
                Ok(lineage) => {
                    // Create the view so downstream EXPLAINs can see it —
                    // the paper's create-first step.
                    self.create_if_needed(&entry)?;
                    self.processed.insert(id.clone(), lineage);
                    self.order.push(id.clone());
                    stack.pop();
                }
                Err(DbError::UndefinedTable(dep))
                    if self.qd.contains(&dep)
                        && dep != id
                        && !self.processed.contains_key(&dep) =>
                {
                    if let Some(pos) = stack.iter().position(|x| x == &dep) {
                        let mut path: Vec<String> = stack[pos..].to_vec();
                        path.push(dep);
                        return Err(LineageError::DependencyCycle(path));
                    }
                    self.deferrals.push((id, dep.clone()));
                    stack.push(dep);
                }
                Err(other) => return Err(LineageError::Database(other.to_string())),
            }
        }
        Ok(())
    }

    fn try_bind(&self, entry: &QueryEntry) -> Result<QueryLineage, DbError> {
        // Bind the entry's defining query (the synthesised SELECT for
        // UPDATE) — equivalent to EXPLAINing it on the connection.
        let bound = lineagex_catalog::Binder::new(self.db.catalog()).bind(entry.query())?;

        let mut outputs: Vec<OutputColumn> =
            bound.output.iter().map(|c| OutputColumn::new(&c.name, c.sources.clone())).collect();
        if !entry.declared_columns.is_empty() {
            let idents: Vec<Ident> = entry.declared_columns.iter().map(Ident::new).collect();
            outputs = crate::extract::rename_outputs(outputs, &idents, &entry.id)
                .map_err(|e| DbError::Unsupported(e.to_string()))?;
        } else if matches!(entry.kind, QueryKind::Insert) {
            let target = entry.id.split('#').next().unwrap_or(&entry.id);
            if let Some(schema) = self.db.catalog().get(target) {
                if schema.columns.len() == outputs.len() {
                    outputs = outputs
                        .into_iter()
                        .zip(schema.columns.iter())
                        .map(|(o, c)| OutputColumn::new(&c.name, o.ccon))
                        .collect();
                }
            }
        }

        // LineageX semantics on top of database semantics: set-operation
        // branch projections are referenced columns (Table I).
        let mut cref = bound.referenced.clone();
        collect_setop_refs(&bound.plan, &mut cref);

        Ok(QueryLineage {
            id: entry.id.clone(),
            kind: entry.kind.clone(),
            outputs,
            cref,
            tables: bound.tables,
            diagnostics: Vec::new(),
            partial: false,
        })
    }

    fn create_if_needed(&mut self, entry: &QueryEntry) -> Result<(), LineageError> {
        match &entry.statement {
            Statement::CreateView { .. } | Statement::CreateTable { .. } => {
                self.db
                    .execute_statement(&entry.statement)
                    .map_err(|e| LineageError::Database(e.to_string()))?;
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// Walk a plan and add every set-operation branch's projected sources to
/// `cref` (the paper's Set Operation rule).
fn collect_setop_refs(plan: &PlanNode, cref: &mut BTreeSet<SourceColumn>) {
    match plan {
        PlanNode::SetOp { left, right, .. } => {
            for col in left.output().iter().chain(right.output()) {
                cref.extend(col.sources.iter().cloned());
            }
            collect_setop_refs(left, cref);
            collect_setop_refs(right, cref);
        }
        PlanNode::SubqueryScan { input, .. }
        | PlanNode::Filter { input, .. }
        | PlanNode::Aggregate { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Limit { input } => collect_setop_refs(input, cref),
        PlanNode::Join { left, right, .. } => {
            collect_setop_refs(left, cref);
            collect_setop_refs(right, cref);
        }
        PlanNode::Project { input, .. } => {
            if let Some(input) = input {
                collect_setop_refs(input, cref);
            }
        }
        PlanNode::Scan { .. } | PlanNode::Values { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_catalog::Catalog;

    const DDL: &str = "
        CREATE TABLE customers (cid int, name text, age int);
        CREATE TABLE web (cid int, date date, page text, reg boolean);
    ";

    fn run(sql: &str) -> Result<LineageResult, LineageError> {
        let qd = QueryDict::from_sql(sql).unwrap();
        let db = SimulatedDatabase::with_catalog(Catalog::from_ddl(DDL).unwrap());
        ExplainPathExtractor::new(qd, db).run()
    }

    #[test]
    fn binds_and_creates_views_in_dependency_order() {
        let result = run("CREATE VIEW second AS SELECT wcid FROM first;
             CREATE VIEW first AS SELECT cid AS wcid FROM web;")
        .unwrap();
        assert_eq!(result.graph.order, vec!["first", "second"]);
        assert_eq!(result.deferrals, vec![("second".into(), "first".into())]);
        let second = &result.graph.queries["second"];
        assert_eq!(second.outputs[0].ccon, BTreeSet::from([SourceColumn::new("first", "wcid")]));
    }

    #[test]
    fn missing_base_table_is_hard_error() {
        // Connected mode has full metadata; unknown relations are errors,
        // not inference targets.
        let err = run("CREATE VIEW v AS SELECT x FROM nope").unwrap_err();
        assert!(matches!(err, LineageError::Database(msg) if msg.contains("nope")));
    }

    #[test]
    fn setop_branches_are_referenced() {
        let result =
            run("CREATE VIEW u AS SELECT cid FROM customers INTERSECT SELECT cid FROM web")
                .unwrap();
        let u = &result.graph.queries["u"];
        assert!(u.cref.contains(&SourceColumn::new("customers", "cid")));
        assert!(u.cref.contains(&SourceColumn::new("web", "cid")));
    }

    #[test]
    fn cycle_detected() {
        let err =
            run("CREATE VIEW a AS SELECT * FROM b; CREATE VIEW b AS SELECT * FROM a;").unwrap_err();
        assert!(matches!(err, LineageError::DependencyCycle(_)));
    }
}
