//! The lineage data model: per-query lineage, graph nodes, and edges.
//!
//! Terminology follows the paper (§II–III):
//!
//! * `C_con(c_out)` — input columns that *contribute* to an output column's
//!   value ([`OutputColumn::ccon`]);
//! * `C_ref(Q)` — query-level *referenced* columns: join predicates,
//!   `WHERE`, `GROUP BY`, `HAVING`, `ORDER BY`, and every projection column
//!   of set-operation branches ([`QueryLineage::cref`]);
//! * `C_both` — columns in both sets ([`QueryLineage::cboth`]);
//! * table lineage `T` — the relations a query scans
//!   ([`QueryLineage::tables`]).

use crate::diagnostics::Diagnostic;
pub use lineagex_catalog::SourceColumn;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// How an input column participates in an output column's lineage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum EdgeKind {
    /// The input directly contributes to the output's value (`C_con`).
    Contribute,
    /// The input is referenced by the defining query (`C_ref`), so changes
    /// may alter which rows/values appear.
    Reference,
    /// Both contribute and reference (`C_both`, orange in the paper's UI).
    Both,
}

/// One output column of a query with its contributing sources.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct OutputColumn {
    /// The output column name.
    pub name: String,
    /// `C_con`: contributing input columns.
    pub ccon: BTreeSet<SourceColumn>,
}

impl OutputColumn {
    /// Build an output column.
    pub fn new(name: impl Into<String>, ccon: BTreeSet<SourceColumn>) -> Self {
        OutputColumn { name: name.into(), ccon }
    }
}

/// What kind of statement produced a query's lineage entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum QueryKind {
    /// `CREATE [MATERIALIZED] VIEW`.
    View {
        /// Materialised flag.
        materialized: bool,
    },
    /// `CREATE TABLE ... AS`.
    TableAs,
    /// `INSERT INTO target ...`.
    Insert,
    /// `UPDATE target SET ...` (lineage of the updated columns).
    Update,
    /// A bare `SELECT` (anonymous query log entry).
    Select,
}

/// The lineage extracted from a single query.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QueryLineage {
    /// The query identifier (created relation name or generated id).
    pub id: String,
    /// Statement kind.
    pub kind: QueryKind,
    /// Output columns in projection order, with `C_con` sources.
    pub outputs: Vec<OutputColumn>,
    /// `C_ref`: query-level referenced columns.
    pub cref: BTreeSet<SourceColumn>,
    /// Table lineage `T`: the relations this query scans directly.
    pub tables: BTreeSet<String>,
    /// Non-fatal findings, each with a span when the source location is
    /// known.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether lenient mode had to degrade part of this query's lineage
    /// (unresolvable columns dropped, extraction stubbed, ...). A partial
    /// record is still safe to navigate — it just promises less.
    pub partial: bool,
}

impl QueryLineage {
    /// `C_both`: sources that both contribute to some output and are
    /// referenced.
    pub fn cboth(&self) -> BTreeSet<SourceColumn> {
        let mut all_con: BTreeSet<&SourceColumn> = BTreeSet::new();
        for out in &self.outputs {
            all_con.extend(out.ccon.iter());
        }
        self.cref.iter().filter(|c| all_con.contains(c)).cloned().collect()
    }

    /// The full lineage of one output column per the paper's semantics:
    /// `C(c_out) = C_con(c_out) ∪ C_ref(Q)`. When the projection writes
    /// the same output name twice (`SELECT a AS x, b AS x`), the
    /// duplicates denote one graph column, so their `C_con` sets merge —
    /// consistent with [`LineageGraph::all_edges`].
    pub fn lineage_of(&self, output: &str) -> Option<BTreeSet<SourceColumn>> {
        let mut matched = false;
        let mut all = BTreeSet::new();
        for col in self.outputs.iter().filter(|o| o.name == output) {
            matched = true;
            all.extend(col.ccon.iter().cloned());
        }
        if !matched {
            return None;
        }
        all.extend(self.cref.iter().cloned());
        Some(all)
    }

    /// Output column names in order.
    pub fn output_names(&self) -> Vec<&str> {
        self.outputs.iter().map(|o| o.name.as_str()).collect()
    }
}

/// What a graph node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NodeKind {
    /// A catalog base table.
    BaseTable,
    /// A view defined by a Query-Dictionary entry.
    View,
    /// A table created by CTAS or written by INSERT.
    Table,
    /// An anonymous query-log result.
    QueryResult,
    /// An external relation whose schema was inferred from usage.
    External,
}

impl NodeKind {
    /// The node kind a query-lineage entry of `kind` produces.
    pub fn for_query(kind: &QueryKind) -> NodeKind {
        match kind {
            QueryKind::View { .. } => NodeKind::View,
            QueryKind::TableAs | QueryKind::Insert | QueryKind::Update => NodeKind::Table,
            QueryKind::Select => NodeKind::QueryResult,
        }
    }
}

/// One node of the lineage graph: a relation and its columns.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Node {
    /// The relation name (or query id).
    pub name: String,
    /// The node kind.
    pub kind: NodeKind,
    /// Column names in order.
    pub columns: Vec<String>,
}

/// A column-to-column lineage edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct Edge {
    /// The upstream (source) column.
    pub from: SourceColumn,
    /// The downstream (derived) column.
    pub to: SourceColumn,
    /// Contribute / Reference / Both.
    pub kind: EdgeKind,
}

/// The combined table- and column-level lineage graph over a set of
/// queries, as visualised by the paper's UI (Fig. 2/5).
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct LineageGraph {
    /// Every relation node (base tables, views, query results, externals).
    pub nodes: BTreeMap<String, Node>,
    /// Per-query lineage keyed by query id.
    pub queries: BTreeMap<String, QueryLineage>,
    /// The order queries were successfully processed in (the output of the
    /// table/view auto-inference stack).
    pub order: Vec<String>,
}

impl LineageGraph {
    /// Merge one query's lineage into the graph: upsert its lineage record
    /// and relation node, and append it to the processing order if new.
    ///
    /// The node carries the query's direct output columns; the
    /// INSERT/UPDATE full-schema merge and catalog/external shadowing
    /// rules live in [`crate::infer::assemble_nodes`], which incremental
    /// callers run once per batch of merges to settle the node map.
    pub fn merge_query(&mut self, lineage: QueryLineage) {
        let kind = NodeKind::for_query(&lineage.kind);
        let columns = lineage.outputs.iter().map(|o| o.name.clone()).collect();
        self.nodes.insert(lineage.id.clone(), Node { name: lineage.id.clone(), kind, columns });
        if !self.order.iter().any(|id| id == &lineage.id) {
            self.order.push(lineage.id.clone());
        }
        self.queries.insert(lineage.id.clone(), lineage);
    }

    /// Retract one query from the graph: remove its lineage record, its
    /// relation node, and its slot in the processing order. Returns the
    /// removed lineage, or `None` when `id` was not a query.
    pub fn retract_query(&mut self, id: &str) -> Option<QueryLineage> {
        let removed = self.queries.remove(id)?;
        self.nodes.remove(id);
        self.order.retain(|o| o != id);
        Some(removed)
    }

    /// Contribute-only edges (`C_con`), one per (source, output) pair.
    pub fn contribute_edges(&self) -> Vec<Edge> {
        let mut edges = Vec::new();
        for q in self.queries.values() {
            for out in &q.outputs {
                let to = SourceColumn::new(&q.id, &out.name);
                for src in &out.ccon {
                    edges.push(Edge {
                        from: src.clone(),
                        to: to.clone(),
                        kind: EdgeKind::Contribute,
                    });
                }
            }
        }
        edges.sort();
        edges
    }

    /// All edges with paper semantics: every referenced source points at
    /// every output column of the referencing query; sources that also
    /// contribute are marked [`EdgeKind::Both`].
    pub fn all_edges(&self) -> Vec<Edge> {
        let mut edges: BTreeMap<(SourceColumn, SourceColumn), EdgeKind> = BTreeMap::new();
        for q in self.queries.values() {
            for out in &q.outputs {
                let to = SourceColumn::new(&q.id, &out.name);
                for src in &out.ccon {
                    edges.insert((src.clone(), to.clone()), EdgeKind::Contribute);
                }
            }
            for src in &q.cref {
                for out in &q.outputs {
                    let to = SourceColumn::new(&q.id, &out.name);
                    let key = (src.clone(), to);
                    edges
                        .entry(key)
                        .and_modify(|k| {
                            if *k == EdgeKind::Contribute {
                                *k = EdgeKind::Both;
                            }
                        })
                        .or_insert(EdgeKind::Reference);
                }
            }
        }
        edges.into_iter().map(|((from, to), kind)| Edge { from, to, kind }).collect()
    }

    /// Table-level edges: `(source relation, derived relation)` pairs,
    /// sorted and **deduplicated** — a relation scanned several ways by
    /// one query (self-joins, CTE re-use, set-operation branches)
    /// produces exactly one pair. Consumers (viz renderers, the
    /// table-level traversal, [`GraphStats::max_pipeline_depth`]) rely
    /// on the set semantics; the unit tests pin it.
    pub fn table_edges(&self) -> Vec<(String, String)> {
        let mut out = BTreeSet::new();
        for q in self.queries.values() {
            for t in &q.tables {
                out.insert((t.clone(), q.id.clone()));
            }
        }
        out.into_iter().collect()
    }

    /// Direct downstream columns of `column`, with edge kinds — what the
    /// paper's UI highlights on hover (Fig. 5, step 3). One entry per
    /// distinct downstream column: same-named outputs of one query merge
    /// (contribution through either occurrence counts), matching
    /// [`LineageGraph::all_edges`].
    pub fn direct_downstream(&self, column: &SourceColumn) -> Vec<(SourceColumn, EdgeKind)> {
        let mut out = Vec::new();
        for q in self.queries.values() {
            let referenced = q.cref.contains(column);
            let mut contributes_by_name: BTreeMap<&str, bool> = BTreeMap::new();
            for o in &q.outputs {
                *contributes_by_name.entry(o.name.as_str()).or_insert(false) |=
                    o.ccon.contains(column);
            }
            for (name, contributes) in contributes_by_name {
                let kind = match (contributes, referenced) {
                    (true, true) => EdgeKind::Both,
                    (true, false) => EdgeKind::Contribute,
                    (false, true) => EdgeKind::Reference,
                    (false, false) => continue,
                };
                out.push((SourceColumn::new(&q.id, name), kind));
            }
        }
        out.sort();
        out
    }

    /// Direct upstream columns of `column` (its `C_con ∪ C_ref`).
    pub fn direct_upstream(&self, column: &SourceColumn) -> Vec<SourceColumn> {
        let Some(q) = self.queries.get(&column.table) else { return Vec::new() };
        q.lineage_of(&column.column).map(|s| s.into_iter().collect()).unwrap_or_default()
    }

    /// Direct upstream columns of `column` with the kind of the edge each
    /// one feeds it through — the mirror of [`Self::direct_downstream`],
    /// used by the query layer to filter upstream traversals by edge
    /// kind. Same-named outputs merge their `C_con` sets, like
    /// [`LineageGraph::all_edges`].
    pub fn direct_upstream_with_kinds(
        &self,
        column: &SourceColumn,
    ) -> Vec<(SourceColumn, EdgeKind)> {
        let Some(q) = self.queries.get(&column.table) else { return Vec::new() };
        let mut matched = false;
        let mut ccon: BTreeSet<&SourceColumn> = BTreeSet::new();
        for out in q.outputs.iter().filter(|o| o.name == column.column) {
            matched = true;
            ccon.extend(out.ccon.iter());
        }
        if !matched {
            return Vec::new();
        }
        let mut result = Vec::new();
        for src in ccon.iter().copied().chain(q.cref.iter()).collect::<BTreeSet<_>>() {
            let kind = match (ccon.contains(src), q.cref.contains(src)) {
                (true, true) => EdgeKind::Both,
                (true, false) => EdgeKind::Contribute,
                _ => EdgeKind::Reference,
            };
            result.push((src.clone(), kind));
        }
        result
    }

    /// Relations directly downstream of `table` (one `explore` click in the
    /// paper's UI).
    pub fn downstream_tables(&self, table: &str) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .queries
            .values()
            .filter(|q| q.tables.contains(table))
            .map(|q| q.id.as_str())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Relations directly upstream of `table`.
    pub fn upstream_tables(&self, table: &str) -> Vec<&str> {
        match self.queries.get(table) {
            Some(q) => q.tables.iter().map(|s| s.as_str()).collect(),
            None => Vec::new(),
        }
    }

    /// Whether `column` exists as a node column in the graph.
    pub fn has_column(&self, column: &SourceColumn) -> bool {
        self.nodes
            .get(&column.table)
            .map(|n| n.columns.iter().any(|c| c == &column.column))
            .unwrap_or(false)
    }

    /// Total number of column-level nodes.
    pub fn column_count(&self) -> usize {
        self.nodes.values().map(|n| n.columns.len()).sum()
    }

    /// A cheap O(nodes + lineage entries) estimate of this graph's heap
    /// footprint in bytes — string payloads plus per-allocation overhead,
    /// ignoring the `BTreeMap` internals. Feeds the
    /// `engine.peak_graph_bytes` gauge; it is a capacity-planning signal,
    /// not an allocator-accurate measurement.
    pub fn approx_bytes(&self) -> usize {
        fn str_bytes(s: &str) -> usize {
            s.len() + 24
        }
        fn source_bytes(sc: &SourceColumn) -> usize {
            str_bytes(&sc.table) + str_bytes(&sc.column)
        }
        let mut total = 0usize;
        for (key, node) in &self.nodes {
            total += str_bytes(key) + str_bytes(&node.name);
            total += node.columns.iter().map(|c| str_bytes(c)).sum::<usize>();
        }
        for (key, q) in &self.queries {
            total += str_bytes(key) + str_bytes(&q.id);
            for out in &q.outputs {
                total += str_bytes(&out.name);
                total += out.ccon.iter().map(source_bytes).sum::<usize>();
            }
            total += q.cref.iter().map(source_bytes).sum::<usize>();
            total += q.tables.iter().map(|t| str_bytes(t)).sum::<usize>();
            for d in &q.diagnostics {
                total += str_bytes(&d.message)
                    + d.statement.as_deref().map_or(0, str_bytes)
                    + d.excerpt.as_deref().map_or(0, str_bytes)
                    + std::mem::size_of::<Diagnostic>();
            }
        }
        total += self.order.iter().map(|id| str_bytes(id)).sum::<usize>();
        total
    }

    /// Summary statistics of the graph (for reports and the CLI).
    pub fn stats(&self) -> GraphStats {
        let mut by_kind = BTreeMap::new();
        for node in self.nodes.values() {
            *by_kind.entry(format!("{:?}", node.kind)).or_insert(0usize) += 1;
        }
        let mut contribute = 0usize;
        let mut reference = 0usize;
        let mut both = 0usize;
        for edge in self.all_edges() {
            match edge.kind {
                EdgeKind::Contribute => contribute += 1,
                EdgeKind::Reference => reference += 1,
                EdgeKind::Both => both += 1,
            }
        }
        // Pipeline depth: longest chain of table-level edges.
        let table_edges = self.table_edges();
        let mut depth: BTreeMap<&str, usize> = BTreeMap::new();
        // Iterate in processing order so upstream depths exist first.
        for id in &self.order {
            let d = table_edges
                .iter()
                .filter(|(_, to)| to == id)
                .map(|(from, _)| depth.get(from.as_str()).copied().unwrap_or(0) + 1)
                .max()
                .unwrap_or(1);
            depth.insert(id, d);
        }
        GraphStats {
            relations: self.nodes.len(),
            nodes_by_kind: by_kind,
            columns: self.column_count(),
            queries: self.queries.len(),
            contribute_edges: contribute,
            reference_edges: reference,
            both_edges: both,
            max_pipeline_depth: depth.values().copied().max().unwrap_or(0),
        }
    }
}

/// Summary statistics of a lineage graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GraphStats {
    /// Total relation nodes.
    pub relations: usize,
    /// Node counts per kind (`BaseTable`, `View`, ...).
    pub nodes_by_kind: BTreeMap<String, usize>,
    /// Total column nodes.
    pub columns: usize,
    /// Queries with lineage records.
    pub queries: usize,
    /// `C_con`-only edges.
    pub contribute_edges: usize,
    /// `C_ref`-only edges.
    pub reference_edges: usize,
    /// `C_both` edges.
    pub both_edges: usize,
    /// Longest derivation chain (base table → ... → final view).
    pub max_pipeline_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> LineageGraph {
        // web(page, cid) -> v(out) with page contributing and cid referenced.
        let mut graph = LineageGraph::default();
        graph.nodes.insert(
            "web".into(),
            Node {
                name: "web".into(),
                kind: NodeKind::BaseTable,
                columns: vec!["page".into(), "cid".into()],
            },
        );
        graph.nodes.insert(
            "v".into(),
            Node { name: "v".into(), kind: NodeKind::View, columns: vec!["out".into()] },
        );
        graph.queries.insert(
            "v".into(),
            QueryLineage {
                id: "v".into(),
                kind: QueryKind::View { materialized: false },
                outputs: vec![OutputColumn::new(
                    "out",
                    BTreeSet::from([SourceColumn::new("web", "page")]),
                )],
                cref: BTreeSet::from([SourceColumn::new("web", "cid")]),
                tables: BTreeSet::from(["web".into()]),
                diagnostics: vec![],
                partial: false,
            },
        );
        graph.order.push("v".into());
        graph
    }

    #[test]
    fn lineage_of_unions_ccon_and_cref() {
        let g = sample_graph();
        let q = &g.queries["v"];
        let lin = q.lineage_of("out").unwrap();
        assert!(lin.contains(&SourceColumn::new("web", "page")));
        assert!(lin.contains(&SourceColumn::new("web", "cid")));
        assert!(q.lineage_of("nope").is_none());
    }

    #[test]
    fn cboth_intersects() {
        let mut g = sample_graph();
        // Make page both contributed and referenced.
        g.queries.get_mut("v").unwrap().cref.insert(SourceColumn::new("web", "page"));
        let q = &g.queries["v"];
        assert_eq!(q.cboth(), BTreeSet::from([SourceColumn::new("web", "page")]));
    }

    #[test]
    fn edges_have_expected_kinds() {
        let g = sample_graph();
        let edges = g.all_edges();
        assert_eq!(edges.len(), 2);
        let page_edge = edges.iter().find(|e| e.from == SourceColumn::new("web", "page")).unwrap();
        assert_eq!(page_edge.kind, EdgeKind::Contribute);
        let cid_edge = edges.iter().find(|e| e.from == SourceColumn::new("web", "cid")).unwrap();
        assert_eq!(cid_edge.kind, EdgeKind::Reference);
    }

    #[test]
    fn both_kind_when_contributed_and_referenced() {
        let mut g = sample_graph();
        g.queries.get_mut("v").unwrap().cref.insert(SourceColumn::new("web", "page"));
        let edges = g.all_edges();
        let page_edge = edges.iter().find(|e| e.from == SourceColumn::new("web", "page")).unwrap();
        assert_eq!(page_edge.kind, EdgeKind::Both);
    }

    #[test]
    fn downstream_and_upstream_navigation() {
        let g = sample_graph();
        let down = g.direct_downstream(&SourceColumn::new("web", "page"));
        assert_eq!(down, vec![(SourceColumn::new("v", "out"), EdgeKind::Contribute)]);
        let up = g.direct_upstream(&SourceColumn::new("v", "out"));
        assert_eq!(up.len(), 2);
        assert_eq!(g.downstream_tables("web"), vec!["v"]);
        assert_eq!(g.upstream_tables("v"), vec!["web"]);
        assert!(g.upstream_tables("web").is_empty());
    }

    #[test]
    fn table_edges_and_counts() {
        let g = sample_graph();
        assert_eq!(g.table_edges(), vec![("web".into(), "v".into())]);
        assert_eq!(g.column_count(), 3);
        assert!(g.has_column(&SourceColumn::new("web", "page")));
        assert!(!g.has_column(&SourceColumn::new("web", "nope")));
    }

    #[test]
    fn table_edges_are_sorted_and_deduplicated() {
        // One view scanning `web` through two aliases (a self-join) plus
        // a second reader: every (source, derived) pair appears exactly
        // once, in sorted order, no matter how many columns or aliases
        // the scan fans out through.
        let mut g = sample_graph();
        g.queries.insert(
            "w2".into(),
            QueryLineage {
                id: "w2".into(),
                kind: QueryKind::View { materialized: false },
                outputs: vec![
                    OutputColumn::new("l", BTreeSet::from([SourceColumn::new("web", "page")])),
                    OutputColumn::new("r", BTreeSet::from([SourceColumn::new("web", "cid")])),
                ],
                cref: BTreeSet::from([
                    SourceColumn::new("web", "page"),
                    SourceColumn::new("web", "cid"),
                ]),
                // `tables` is a set, so the double scan collapses before
                // it ever reaches table_edges — this pins that the edge
                // list stays a set even if that changes.
                tables: BTreeSet::from(["web".into()]),
                diagnostics: vec![],
                partial: false,
            },
        );
        g.order.push("w2".into());
        let edges = g.table_edges();
        assert_eq!(
            edges,
            vec![("web".to_string(), "v".to_string()), ("web".to_string(), "w2".to_string())]
        );
        let unique: BTreeSet<&(String, String)> = edges.iter().collect();
        assert_eq!(unique.len(), edges.len(), "table_edges must never contain duplicates");
        let mut sorted = edges.clone();
        sorted.sort();
        assert_eq!(sorted, edges, "table_edges must come out sorted");
    }

    #[test]
    fn merge_and_retract_round_trip() {
        let mut g = sample_graph();
        let retracted = g.retract_query("v").unwrap();
        assert!(g.queries.is_empty());
        assert!(!g.nodes.contains_key("v"));
        assert!(g.order.is_empty());
        assert!(g.retract_query("v").is_none());
        g.merge_query(retracted);
        assert_eq!(g, sample_graph());
        // Re-merging an existing query must not duplicate its order slot.
        let again = g.queries["v"].clone();
        g.merge_query(again);
        assert_eq!(g.order, vec!["v"]);
    }

    #[test]
    fn node_kind_for_query_maps_all_kinds() {
        assert_eq!(NodeKind::for_query(&QueryKind::View { materialized: true }), NodeKind::View);
        assert_eq!(NodeKind::for_query(&QueryKind::TableAs), NodeKind::Table);
        assert_eq!(NodeKind::for_query(&QueryKind::Insert), NodeKind::Table);
        assert_eq!(NodeKind::for_query(&QueryKind::Update), NodeKind::Table);
        assert_eq!(NodeKind::for_query(&QueryKind::Select), NodeKind::QueryResult);
    }

    #[test]
    fn stats_summarise_the_graph() {
        let g = sample_graph();
        let stats = g.stats();
        assert_eq!(stats.relations, 2);
        assert_eq!(stats.columns, 3);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.contribute_edges, 1);
        assert_eq!(stats.reference_edges, 1);
        assert_eq!(stats.both_edges, 0);
        assert_eq!(stats.max_pipeline_depth, 1);
        assert_eq!(stats.nodes_by_kind["BaseTable"], 1);
        assert_eq!(stats.nodes_by_kind["View"], 1);
    }
}
