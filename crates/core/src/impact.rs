//! Impact analysis over a lineage graph — the paper's demonstration
//! scenario (§IV, steps 2–4): starting from a column about to change, find
//! every downstream column that may be affected, hop by hop or as a full
//! transitive closure.

use crate::model::{EdgeKind, LineageGraph, SourceColumn};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The result of an impact analysis from one starting column.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ImpactReport {
    /// The column whose change is being analysed.
    pub origin: SourceColumn,
    /// Every transitively-impacted column, with the merged kind of all
    /// shortest paths into it and its distance (in queries) from the
    /// origin.
    pub impacted: Vec<ImpactedColumn>,
}

/// One impacted downstream column.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ImpactedColumn {
    /// The impacted column.
    pub column: SourceColumn,
    /// How the impact propagates into it, merged over every shortest
    /// path (contribution + reference ⇒ [`EdgeKind::Both`]).
    pub kind: EdgeKind,
    /// Number of query hops from the origin (1 = direct downstream).
    pub distance: usize,
}

impl ImpactReport {
    /// Impacted columns grouped by table, in name order.
    pub fn by_table(&self) -> BTreeMap<&str, Vec<&ImpactedColumn>> {
        let mut out: BTreeMap<&str, Vec<&ImpactedColumn>> = BTreeMap::new();
        for col in &self.impacted {
            out.entry(col.column.table.as_str()).or_default().push(col);
        }
        out
    }

    /// Names of all impacted tables.
    pub fn impacted_tables(&self) -> Vec<&str> {
        self.by_table().keys().copied().collect()
    }

    /// Whether `column` is impacted.
    pub fn contains(&self, column: &SourceColumn) -> bool {
        self.impacted.iter().any(|c| &c.column == column)
    }
}

/// Compute the downstream transitive closure of `origin` — the paper's
/// impact analysis. A column is impacted if the origin (or an impacted
/// column) contributes to it (`C_con`) or is referenced by its defining
/// query (`C_ref`).
pub fn impact_of(graph: &LineageGraph, origin: &SourceColumn) -> ImpactReport {
    // Pass 1: BFS distances.
    let mut distance: BTreeMap<SourceColumn, usize> = BTreeMap::new();
    distance.insert(origin.clone(), 0);
    let mut queue: VecDeque<(SourceColumn, usize)> = VecDeque::from([(origin.clone(), 0)]);
    while let Some((current, dist)) = queue.pop_front() {
        for (next, _) in graph.direct_downstream(&current) {
            if !distance.contains_key(&next) {
                distance.insert(next.clone(), dist + 1);
                queue.push_back((next, dist + 1));
            }
        }
    }

    // Pass 2: merge the edge kinds of every predecessor on a shortest
    // path, so a column reached at the same distance through both a
    // contribution and a reference reports `Both` (the paper's orange).
    let mut list: Vec<ImpactedColumn> = Vec::new();
    for (column, dist) in &distance {
        if column == origin {
            continue;
        }
        let Some(query) = graph.queries.get(&column.table) else { continue };
        let ccon = query.outputs.iter().find(|o| o.name == column.column).map(|o| &o.ccon);
        let mut contributes = false;
        let mut references = false;
        for (pred, pred_dist) in &distance {
            if pred_dist + 1 != *dist {
                continue;
            }
            if ccon.map(|c| c.contains(pred)).unwrap_or(false) {
                contributes = true;
            }
            if query.cref.contains(pred) {
                references = true;
            }
        }
        let kind = match (contributes, references) {
            (true, true) => EdgeKind::Both,
            (true, false) => EdgeKind::Contribute,
            _ => EdgeKind::Reference,
        };
        list.push(ImpactedColumn { column: column.clone(), kind, distance: *dist });
    }
    list.sort_by(|a, b| (a.distance, &a.column).cmp(&(b.distance, &b.column)));
    ImpactReport { origin: origin.clone(), impacted: list }
}

/// Compute the upstream transitive closure: every source column that the
/// given column ultimately depends on (contribution or reference).
pub fn upstream_of(graph: &LineageGraph, target: &SourceColumn) -> BTreeSet<SourceColumn> {
    let mut out: BTreeSet<SourceColumn> = BTreeSet::new();
    let mut queue: VecDeque<SourceColumn> = VecDeque::from([target.clone()]);
    let mut visited: BTreeSet<SourceColumn> = BTreeSet::from([target.clone()]);
    while let Some(current) = queue.pop_front() {
        for up in graph.direct_upstream(&current) {
            if visited.insert(up.clone()) {
                out.insert(up.clone());
                queue.push_back(up);
            }
        }
    }
    out
}

/// Explain *why* a column is impacted: the shortest lineage path from
/// `origin` to `target`, as a sequence of `(column, kind-of-edge-into-it)`
/// hops. Returns `None` when `target` is not downstream of `origin`.
///
/// This answers the engineer's follow-up question in the paper's scenario:
/// "through which views does `web.page` reach `info.wreg`?"
pub fn path_between(
    graph: &LineageGraph,
    origin: &SourceColumn,
    target: &SourceColumn,
) -> Option<Vec<(SourceColumn, EdgeKind)>> {
    let mut predecessor: BTreeMap<SourceColumn, (SourceColumn, EdgeKind)> = BTreeMap::new();
    let mut queue: VecDeque<SourceColumn> = VecDeque::from([origin.clone()]);
    let mut visited: BTreeSet<SourceColumn> = BTreeSet::from([origin.clone()]);
    while let Some(current) = queue.pop_front() {
        if &current == target {
            let mut path = Vec::new();
            let mut cursor = current;
            while let Some((prev, kind)) = predecessor.get(&cursor) {
                path.push((cursor.clone(), *kind));
                cursor = prev.clone();
            }
            path.reverse();
            return Some(path);
        }
        for (next, kind) in graph.direct_downstream(&current) {
            if visited.insert(next.clone()) {
                predecessor.insert(next.clone(), (current.clone(), kind));
                queue.push_back(next);
            }
        }
    }
    None
}

/// One `explore` click in the paper's UI (Fig. 5, step 3): the tables one
/// hop upstream and downstream of `table`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExploreStep {
    /// The explored table.
    pub table: String,
    /// Tables it reads from.
    pub upstream: Vec<String>,
    /// Tables that read from it.
    pub downstream: Vec<String>,
}

/// Explore one hop around `table`.
pub fn explore(graph: &LineageGraph, table: &str) -> ExploreStep {
    ExploreStep {
        table: table.to_string(),
        upstream: graph.upstream_tables(table).into_iter().map(String::from).collect(),
        downstream: graph.downstream_tables(table).into_iter().map(String::from).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::InferenceEngine;
    use crate::options::ExtractOptions;
    use crate::preprocess::QueryDict;
    use lineagex_catalog::Catalog;

    fn chain_graph() -> LineageGraph {
        // base.a -> mid.b (contribute), base.k referenced by mid;
        // mid.b -> top.c (contribute).
        let sql = "
            CREATE TABLE base (a int, k int);
            CREATE VIEW mid AS SELECT a AS b FROM base WHERE k > 0;
            CREATE VIEW top AS SELECT b AS c FROM mid;
        ";
        let qd = QueryDict::from_sql(sql).unwrap();
        InferenceEngine::new(qd, Catalog::new(), ExtractOptions::default()).run().unwrap().graph
    }

    #[test]
    fn impact_follows_contribution_chain() {
        let graph = chain_graph();
        let report = impact_of(&graph, &SourceColumn::new("base", "a"));
        assert!(report.contains(&SourceColumn::new("mid", "b")));
        assert!(report.contains(&SourceColumn::new("top", "c")));
        let mid = report.impacted.iter().find(|c| c.column.table == "mid").unwrap();
        assert_eq!(mid.distance, 1);
        let top = report.impacted.iter().find(|c| c.column.table == "top").unwrap();
        assert_eq!(top.distance, 2);
    }

    #[test]
    fn impact_follows_references() {
        let graph = chain_graph();
        // base.k only appears in mid's WHERE — still impacts all of mid's
        // outputs, and transitively top's.
        let report = impact_of(&graph, &SourceColumn::new("base", "k"));
        assert!(report.contains(&SourceColumn::new("mid", "b")));
        assert!(report.contains(&SourceColumn::new("top", "c")));
        let mid = report.impacted.iter().find(|c| c.column.table == "mid").unwrap();
        assert_eq!(mid.kind, EdgeKind::Reference);
    }

    #[test]
    fn impact_of_leaf_is_empty() {
        let graph = chain_graph();
        let report = impact_of(&graph, &SourceColumn::new("top", "c"));
        assert!(report.impacted.is_empty());
    }

    #[test]
    fn upstream_closure() {
        let graph = chain_graph();
        let up = upstream_of(&graph, &SourceColumn::new("top", "c"));
        assert!(up.contains(&SourceColumn::new("mid", "b")));
        assert!(up.contains(&SourceColumn::new("base", "a")));
        assert!(up.contains(&SourceColumn::new("base", "k")));
    }

    #[test]
    fn explore_reports_both_directions() {
        let graph = chain_graph();
        let step = explore(&graph, "mid");
        assert_eq!(step.upstream, vec!["base"]);
        assert_eq!(step.downstream, vec!["top"]);
    }

    #[test]
    fn report_grouping() {
        let graph = chain_graph();
        let report = impact_of(&graph, &SourceColumn::new("base", "a"));
        assert_eq!(report.impacted_tables(), vec!["mid", "top"]);
        assert_eq!(report.by_table()["mid"].len(), 1);
    }

    #[test]
    fn path_between_explains_impact() {
        let graph = chain_graph();
        let path =
            path_between(&graph, &SourceColumn::new("base", "a"), &SourceColumn::new("top", "c"))
                .expect("top.c is downstream of base.a");
        assert_eq!(
            path,
            vec![
                (SourceColumn::new("mid", "b"), EdgeKind::Contribute),
                (SourceColumn::new("top", "c"), EdgeKind::Contribute),
            ]
        );
    }

    #[test]
    fn path_between_mixes_edge_kinds() {
        let graph = chain_graph();
        let path =
            path_between(&graph, &SourceColumn::new("base", "k"), &SourceColumn::new("top", "c"))
                .unwrap();
        // First hop is a reference (k only appears in mid's WHERE).
        assert_eq!(path[0], (SourceColumn::new("mid", "b"), EdgeKind::Reference));
    }

    #[test]
    fn path_between_none_when_unreachable() {
        let graph = chain_graph();
        assert!(path_between(
            &graph,
            &SourceColumn::new("top", "c"),
            &SourceColumn::new("base", "a"),
        )
        .is_none());
        // Trivial path to self is empty.
        let path =
            path_between(&graph, &SourceColumn::new("base", "a"), &SourceColumn::new("base", "a"))
                .unwrap();
        assert!(path.is_empty());
    }
}
