//! Impact analysis over a lineage graph — the paper's demonstration
//! scenario (§IV, steps 2–4): starting from a column about to change, find
//! every downstream column that may be affected, hop by hop or as a full
//! transitive closure.
//!
//! Every function here is a thin shortcut over the composable query layer
//! ([`crate::query::QuerySpec`]); the convention (see ROADMAP) is that
//! *new* query capabilities land on [`crate::GraphQuery`], not as new
//! free functions.

use crate::model::{EdgeKind, LineageGraph, SourceColumn};
use crate::query::{QueryAnswer, QuerySpec};
use serde::{Content, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The result of an impact analysis from one starting column.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactReport {
    /// The column whose change is being analysed.
    pub origin: SourceColumn,
    /// Every transitively-impacted column, with the merged kind of all
    /// shortest paths into it and its distance (in queries) from the
    /// origin. Private so it can never drift out of sync with the
    /// membership index; read it through [`ImpactReport::impacted`].
    impacted: Vec<ImpactedColumn>,
    /// Structural membership index over `impacted`: deduplication is a
    /// set property, and [`ImpactReport::contains`] on wide cones is
    /// O(log n) instead of a linear scan.
    index: BTreeSet<SourceColumn>,
}

/// One impacted downstream column.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ImpactedColumn {
    /// The impacted column.
    pub column: SourceColumn,
    /// How the impact propagates into it, merged over every shortest
    /// path (contribution + reference ⇒ [`EdgeKind::Both`]).
    pub kind: EdgeKind,
    /// Number of query hops from the origin (1 = direct downstream).
    pub distance: usize,
}

impl ImpactReport {
    /// Build a report, deriving the membership index.
    pub fn new(origin: SourceColumn, impacted: Vec<ImpactedColumn>) -> Self {
        let index = impacted.iter().map(|c| c.column.clone()).collect();
        ImpactReport { origin, impacted, index }
    }

    /// The impacted columns, sorted by `(distance, column)`.
    pub fn impacted(&self) -> &[ImpactedColumn] {
        &self.impacted
    }

    /// Number of impacted columns.
    pub fn len(&self) -> usize {
        self.impacted.len()
    }

    /// Whether nothing is impacted.
    pub fn is_empty(&self) -> bool {
        self.impacted.is_empty()
    }

    /// Impacted columns grouped by table, in name order.
    pub fn by_table(&self) -> BTreeMap<&str, Vec<&ImpactedColumn>> {
        let mut out: BTreeMap<&str, Vec<&ImpactedColumn>> = BTreeMap::new();
        for col in &self.impacted {
            out.entry(col.column.table.as_str()).or_default().push(col);
        }
        out
    }

    /// Names of all impacted tables.
    pub fn impacted_tables(&self) -> Vec<&str> {
        self.by_table().keys().copied().collect()
    }

    /// Whether `column` is impacted (an O(log n) set lookup).
    pub fn contains(&self, column: &SourceColumn) -> bool {
        self.index.contains(column)
    }

    /// Convert a *downstream* [`QueryAnswer`] into the legacy impact
    /// report shape — how both backends' `impact_of` shortcuts package
    /// an indexed traversal.
    pub fn from_answer(origin: SourceColumn, answer: QueryAnswer) -> ImpactReport {
        let impacted = answer
            .columns
            .into_iter()
            .map(|m| ImpactedColumn { column: m.column, kind: m.kind, distance: m.distance })
            .collect();
        ImpactReport::new(origin, impacted)
    }
}

// Manual impl: the wire shape stays `{origin, impacted}` — the index is
// an internal acceleration structure, not part of the document.
impl Serialize for ImpactReport {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("origin".to_string(), self.origin.to_content()),
            ("impacted".to_string(), self.impacted.to_content()),
        ])
    }
}

/// Compute the downstream transitive closure of `origin` — the paper's
/// impact analysis. A column is impacted if the origin (or an impacted
/// column) contributes to it (`C_con`) or is referenced by its defining
/// query (`C_ref`). Shortcut for a downstream [`QuerySpec`] with no depth
/// limit or filters.
///
/// The free functions here take a bare graph, so no index cache can
/// help them; they run the cone-proportional string walk
/// ([`QuerySpec::run_on_unindexed`]) rather than paying an `O(graph)`
/// [`crate::graph::GraphIndex`] build per call. Backends answering many
/// questions go through [`crate::LineageView`], whose cached index
/// serves the same answers byte-identically.
pub fn impact_of(graph: &LineageGraph, origin: &SourceColumn) -> ImpactReport {
    let answer = QuerySpec::new()
        .from_column(&origin.table, &origin.column)
        .downstream()
        .run_on_unindexed(graph);
    ImpactReport::from_answer(origin.clone(), answer)
}

/// Compute the upstream transitive closure: every source column that the
/// given column ultimately depends on (contribution or reference).
/// Shortcut for an upstream [`QuerySpec`].
pub fn upstream_of(graph: &LineageGraph, target: &SourceColumn) -> BTreeSet<SourceColumn> {
    QuerySpec::new()
        .from_column(&target.table, &target.column)
        .upstream()
        .run_on_unindexed(graph)
        .columns
        .into_iter()
        .map(|m| m.column)
        .collect()
}

/// Explain *why* a column is impacted: the shortest lineage path from
/// `origin` to `target`, as a sequence of `(column, kind-of-edge-into-it)`
/// hops. Returns `None` when `target` is not downstream of `origin`.
/// Shortcut for a downstream [`QuerySpec`] with a target.
///
/// This answers the engineer's follow-up question in the paper's scenario:
/// "through which views does `web.page` reach `info.wreg`?"
pub fn path_between(
    graph: &LineageGraph,
    origin: &SourceColumn,
    target: &SourceColumn,
) -> Option<Vec<(SourceColumn, EdgeKind)>> {
    QuerySpec::new()
        .from_column(&origin.table, &origin.column)
        .downstream()
        .to(&target.table, &target.column)
        .run_on_unindexed(graph)
        .path
        .map(|steps| steps.into_iter().map(|s| (s.column, s.kind)).collect())
}

/// One `explore` click in the paper's UI (Fig. 5, step 3): the tables one
/// hop upstream and downstream of `table`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExploreStep {
    /// The explored table.
    pub table: String,
    /// Tables it reads from.
    pub upstream: Vec<String>,
    /// Tables that read from it.
    pub downstream: Vec<String>,
}

/// Explore one hop around `table`. Shortcut for a pair of depth-1
/// table-granularity [`QuerySpec`]s over the string walk (see
/// [`impact_of`] for why the one-shot shortcuts skip the index).
pub fn explore(graph: &LineageGraph, table: &str) -> ExploreStep {
    // A relation feeding itself (`INSERT INTO t SELECT .. FROM t`) is its
    // own one-hop neighbour in both directions; a BFS distance map can
    // only report it at distance 0, so the self-loop is re-added here.
    let self_loop = graph.queries.get(table).is_some_and(|q| q.tables.contains(table));
    let one_hop = |direction_spec: QuerySpec| -> Vec<String> {
        let mut names: Vec<String> = direction_spec
            .from_table(table)
            .table_level()
            .max_depth(1)
            .run_on_unindexed(graph)
            .relations
            .into_iter()
            .filter(|r| r.distance == 1)
            .map(|r| r.name)
            .collect();
        if self_loop {
            names.push(table.to_string());
            names.sort();
            names.dedup();
        }
        names
    };
    ExploreStep {
        table: table.to_string(),
        upstream: one_hop(QuerySpec::new().upstream()),
        downstream: one_hop(QuerySpec::new().downstream()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::InferenceEngine;
    use crate::options::ExtractOptions;
    use crate::preprocess::QueryDict;
    use lineagex_catalog::Catalog;

    fn chain_graph() -> LineageGraph {
        // base.a -> mid.b (contribute), base.k referenced by mid;
        // mid.b -> top.c (contribute).
        let sql = "
            CREATE TABLE base (a int, k int);
            CREATE VIEW mid AS SELECT a AS b FROM base WHERE k > 0;
            CREATE VIEW top AS SELECT b AS c FROM mid;
        ";
        let qd = QueryDict::from_sql(sql).unwrap();
        InferenceEngine::new(qd, Catalog::new(), ExtractOptions::default()).run().unwrap().graph
    }

    #[test]
    fn impact_follows_contribution_chain() {
        let graph = chain_graph();
        let report = impact_of(&graph, &SourceColumn::new("base", "a"));
        assert!(report.contains(&SourceColumn::new("mid", "b")));
        assert!(report.contains(&SourceColumn::new("top", "c")));
        let mid = report.impacted.iter().find(|c| c.column.table == "mid").unwrap();
        assert_eq!(mid.distance, 1);
        let top = report.impacted.iter().find(|c| c.column.table == "top").unwrap();
        assert_eq!(top.distance, 2);
    }

    #[test]
    fn impact_follows_references() {
        let graph = chain_graph();
        // base.k only appears in mid's WHERE — still impacts all of mid's
        // outputs, and transitively top's.
        let report = impact_of(&graph, &SourceColumn::new("base", "k"));
        assert!(report.contains(&SourceColumn::new("mid", "b")));
        assert!(report.contains(&SourceColumn::new("top", "c")));
        let mid = report.impacted.iter().find(|c| c.column.table == "mid").unwrap();
        assert_eq!(mid.kind, EdgeKind::Reference);
    }

    #[test]
    fn impact_of_leaf_is_empty() {
        let graph = chain_graph();
        let report = impact_of(&graph, &SourceColumn::new("top", "c"));
        assert!(report.impacted.is_empty());
        assert!(!report.contains(&SourceColumn::new("mid", "b")));
    }

    #[test]
    fn upstream_closure() {
        let graph = chain_graph();
        let up = upstream_of(&graph, &SourceColumn::new("top", "c"));
        assert!(up.contains(&SourceColumn::new("mid", "b")));
        assert!(up.contains(&SourceColumn::new("base", "a")));
        assert!(up.contains(&SourceColumn::new("base", "k")));
    }

    #[test]
    fn explore_reports_both_directions() {
        let graph = chain_graph();
        let step = explore(&graph, "mid");
        assert_eq!(step.upstream, vec!["base"]);
        assert_eq!(step.downstream, vec!["top"]);
    }

    #[test]
    fn explore_reports_self_loops() {
        // A relation feeding itself is its own one-hop neighbour — the
        // shortcut must match the graph's direct navigation exactly.
        let sql = "CREATE TABLE t (a int); INSERT INTO t SELECT a + 1 FROM t;";
        let qd = QueryDict::from_sql(sql).unwrap();
        let graph = InferenceEngine::new(qd, Catalog::new(), ExtractOptions::default())
            .run()
            .unwrap()
            .graph;
        let step = explore(&graph, "t");
        assert_eq!(step.downstream, graph.downstream_tables("t"));
        assert_eq!(step.upstream, graph.upstream_tables("t"));
        assert_eq!(step.downstream, vec!["t"]);
        assert_eq!(step.upstream, vec!["t"]);
    }

    #[test]
    fn report_grouping() {
        let graph = chain_graph();
        let report = impact_of(&graph, &SourceColumn::new("base", "a"));
        assert_eq!(report.impacted_tables(), vec!["mid", "top"]);
        assert_eq!(report.by_table()["mid"].len(), 1);
    }

    #[test]
    fn report_serialises_without_the_index() {
        let graph = chain_graph();
        let report = impact_of(&graph, &SourceColumn::new("base", "a"));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"origin\""), "{json}");
        assert!(json.contains("\"impacted\""), "{json}");
        assert!(!json.contains("\"index\""), "{json}");
    }

    #[test]
    fn path_between_explains_impact() {
        let graph = chain_graph();
        let path =
            path_between(&graph, &SourceColumn::new("base", "a"), &SourceColumn::new("top", "c"))
                .expect("top.c is downstream of base.a");
        assert_eq!(
            path,
            vec![
                (SourceColumn::new("mid", "b"), EdgeKind::Contribute),
                (SourceColumn::new("top", "c"), EdgeKind::Contribute),
            ]
        );
    }

    #[test]
    fn path_between_mixes_edge_kinds() {
        let graph = chain_graph();
        let path =
            path_between(&graph, &SourceColumn::new("base", "k"), &SourceColumn::new("top", "c"))
                .unwrap();
        // First hop is a reference (k only appears in mid's WHERE).
        assert_eq!(path[0], (SourceColumn::new("mid", "b"), EdgeKind::Reference));
    }

    #[test]
    fn path_between_none_when_unreachable() {
        let graph = chain_graph();
        assert!(path_between(
            &graph,
            &SourceColumn::new("top", "c"),
            &SourceColumn::new("base", "a"),
        )
        .is_none());
        // Trivial path to self is empty.
        let path =
            path_between(&graph, &SourceColumn::new("base", "a"), &SourceColumn::new("base", "a"))
                .unwrap();
        assert!(path.is_empty());
    }
}
