//! Binary snapshot persistence for a settled lineage session.
//!
//! A 100k-view catalog takes seconds to re-extract but only tens of
//! milliseconds to deserialise, so a long-lived service should cold-start
//! from disk, not from SQL. This module defines the on-disk format:
//! a compact, versioned, little-endian encoding of everything a settled
//! session needs to answer queries immediately —
//!
//! * the [`Catalog`] (base tables and view schemas),
//! * the settled [`LineageGraph`] (nodes, per-query lineage records with
//!   their diagnostics, processing order),
//! * the interned CSR [`GraphIndex`], serialised as its dense arrays so
//!   loading skips the `O(V + E)` rebuild entirely,
//! * session diagnostics, per-query inferred-schema records, and the
//!   engine's entry table (id, SQL text, dependency sets) so later
//!   ingests can re-extract incrementally,
//! * the settled graph revision and the engine's counters.
//!
//! ## Layout
//!
//! ```text
//! [0..4)  magic  "LXSN"
//! [4]     format version (SNAPSHOT_VERSION)
//! [5..]   sections, in order: catalog, graph, index, session
//!         diagnostics, inferred schemas, entries, revision, counters,
//!         dialect (version 2+: the session's SQL dialect name)
//! [-8..]  FNV-1a 64 checksum of every preceding byte, little-endian
//! ```
//!
//! All integers are little-endian; strings are `u32` length-prefixed
//! UTF-8; collections are `u32` count-prefixed and written in their
//! deterministic (sorted) iteration order, so the same session always
//! produces byte-identical snapshots.
//!
//! ## Invalidation
//!
//! A snapshot is a *settled* state: writers must refresh before saving.
//! Readers validate magic, version, and checksum before decoding, and
//! every decode error is a typed [`SnapshotError`] carrying
//! [`DiagnosticCode::SnapshotCorrupt`] — never a panic. A version bump
//! invalidates all older files (there is no migration path; re-extract
//! from the SQL log instead), which is why the version byte sits ahead
//! of everything except the magic.

use crate::diagnostics::{Diagnostic, DiagnosticCode, DiagnosticSpan, Severity};
use crate::error::LineageError;
use crate::graph::GraphIndex;
use crate::model::{
    EdgeKind, LineageGraph, Node, NodeKind, OutputColumn, QueryKind, QueryLineage, SourceColumn,
};
use lineagex_catalog::{Catalog, Column, RelationKind, TableSchema};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

/// The four magic bytes every snapshot starts with.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"LXSN";

/// The current format version. Bumping it invalidates every older file.
/// History: 1 = initial format; 2 = trailing dialect section (the SQL
/// dialect the session was built under, so a service restart cannot
/// silently re-parse the log under different grammar rules).
pub const SNAPSHOT_VERSION: u8 = 2;

/// A snapshot load/store failure, classified under the typed
/// [`DiagnosticCode::SnapshotCorrupt`] diagnostic code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// Always [`DiagnosticCode::SnapshotCorrupt`] today; carried
    /// explicitly so callers surface a typed code, not a string.
    pub code: DiagnosticCode,
    /// What went wrong (bad magic, truncation offset, checksum, I/O).
    pub message: String,
}

impl SnapshotError {
    fn corrupt(message: impl Into<String>) -> SnapshotError {
        SnapshotError { code: DiagnosticCode::SnapshotCorrupt, message: message.into() }
    }

    /// Render as a session diagnostic.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::new(self.code, self.message.clone())
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapshotError> for LineageError {
    fn from(e: SnapshotError) -> Self {
        LineageError::Snapshot(e.message)
    }
}

/// One persisted engine entry: enough to re-extract the query later
/// (the SQL text re-parses on demand) and to re-link the dependency
/// index without parsing anything at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The entry's query id (including `#n` duplicate suffixes).
    pub id: String,
    /// The statement's rendered SQL text.
    pub sql: String,
    /// Relations the statement scans, as written.
    pub deps: Vec<String>,
    /// The same set, name-normalised.
    pub deps_norm: Vec<String>,
}

/// Everything a settled session persists. The engine crate assembles
/// and consumes this; the codec lives here because every serialised
/// type is core- or catalog-owned.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    /// Base-table and view schemas.
    pub catalog: Catalog,
    /// The settled lineage graph.
    pub graph: LineageGraph,
    /// The interned CSR index over `graph`, persisted so cold-start
    /// skips the rebuild.
    pub index: GraphIndex,
    /// Session-level diagnostics (parse failures, skipped statements).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-query inferred external schemas (`query id → table → columns`).
    pub inferred: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
    /// The engine's entry table.
    pub entries: Vec<SnapshotEntry>,
    /// The settled graph revision at save time.
    pub revision: u64,
    /// Named engine counters (stats, id-allocation state).
    pub counters: Vec<(String, u64)>,
    /// The SQL dialect name the session lexed and parsed under
    /// ([`lineagex_sqlparse::DialectKind::name`]). Loaders must refuse a
    /// conflicting explicit dialect rather than mix grammars.
    pub dialect: String,
}

/// Serialise a snapshot to its byte representation.
pub fn write_snapshot(snapshot: &GraphSnapshot) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&SNAPSHOT_MAGIC);
    w.u8(SNAPSHOT_VERSION);
    write_catalog(&mut w, &snapshot.catalog);
    write_graph(&mut w, &snapshot.graph);
    write_index(&mut w, &snapshot.index);
    w.u32(snapshot.diagnostics.len());
    for d in &snapshot.diagnostics {
        write_diagnostic(&mut w, d);
    }
    w.u32(snapshot.inferred.len());
    for (id, tables) in &snapshot.inferred {
        w.str(id);
        w.u32(tables.len());
        for (table, cols) in tables {
            w.str(table);
            w.u32(cols.len());
            for col in cols {
                w.str(col);
            }
        }
    }
    w.u32(snapshot.entries.len());
    for entry in &snapshot.entries {
        w.str(&entry.id);
        w.str(&entry.sql);
        w.u32(entry.deps.len());
        for d in &entry.deps {
            w.str(d);
        }
        w.u32(entry.deps_norm.len());
        for d in &entry.deps_norm {
            w.str(d);
        }
    }
    w.u64(snapshot.revision);
    w.u32(snapshot.counters.len());
    for (name, value) in &snapshot.counters {
        w.str(name);
        w.u64(*value);
    }
    w.str(&snapshot.dialect);
    let checksum = fnv1a(&w.buf);
    w.u64(checksum);
    w.buf
}

/// Decode a snapshot from bytes, validating magic, version, and
/// checksum before touching any section.
pub fn read_snapshot(bytes: &[u8]) -> Result<GraphSnapshot, SnapshotError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 1 + 8 {
        return Err(SnapshotError::corrupt(format!(
            "file too short to be a snapshot ({} bytes)",
            bytes.len()
        )));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::corrupt("bad magic (not a lineagex snapshot)"));
    }
    let version = bytes[4];
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::corrupt(format!(
            "unsupported snapshot version {version} (this build reads version {SNAPSHOT_VERSION})"
        )));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("tail is 8 bytes"));
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(SnapshotError::corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
        )));
    }
    let mut r = Reader { buf: payload, pos: 5 };
    let catalog = read_catalog(&mut r)?;
    let graph = read_graph(&mut r)?;
    let index = read_index(&mut r)?;
    let diag_count = r.count()?;
    let mut diagnostics = Vec::with_capacity(diag_count);
    for _ in 0..diag_count {
        diagnostics.push(read_diagnostic(&mut r)?);
    }
    let mut inferred = BTreeMap::new();
    for _ in 0..r.count()? {
        let id = r.str()?;
        let mut tables = BTreeMap::new();
        for _ in 0..r.count()? {
            let table = r.str()?;
            let mut cols = BTreeSet::new();
            for _ in 0..r.count()? {
                cols.insert(r.str()?);
            }
            tables.insert(table, cols);
        }
        inferred.insert(id, tables);
    }
    let entry_count = r.count()?;
    let mut entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let id = r.str()?;
        let sql = r.str()?;
        let mut deps = Vec::new();
        for _ in 0..r.count()? {
            deps.push(r.str()?);
        }
        let mut deps_norm = Vec::new();
        for _ in 0..r.count()? {
            deps_norm.push(r.str()?);
        }
        entries.push(SnapshotEntry { id, sql, deps, deps_norm });
    }
    let revision = r.u64()?;
    let mut counters = Vec::new();
    for _ in 0..r.count()? {
        let name = r.str()?;
        let value = r.u64()?;
        counters.push((name, value));
    }
    let dialect = r.str()?;
    if r.pos != payload.len() {
        return Err(SnapshotError::corrupt(format!(
            "{} trailing byte(s) after the last section",
            payload.len() - r.pos
        )));
    }
    Ok(GraphSnapshot {
        catalog,
        graph,
        index,
        diagnostics,
        inferred,
        entries,
        revision,
        counters,
        dialect,
    })
}

/// Serialise a snapshot straight to a file.
pub fn write_snapshot_file(path: &Path, snapshot: &GraphSnapshot) -> Result<(), SnapshotError> {
    std::fs::write(path, write_snapshot(snapshot))
        .map_err(|e| SnapshotError::corrupt(format!("cannot write {}: {e}", path.display())))
}

/// Load and decode a snapshot file.
pub fn read_snapshot_file(path: &Path) -> Result<GraphSnapshot, SnapshotError> {
    let bytes = std::fs::read(path)
        .map_err(|e| SnapshotError::corrupt(format!("cannot read {}: {e}", path.display())))?;
    read_snapshot(&bytes)
}

// --- section codecs -----------------------------------------------------

fn write_catalog(w: &mut Writer, catalog: &Catalog) {
    w.u32(catalog.len());
    for schema in catalog.relations() {
        w.str(&schema.name);
        w.u32(schema.columns.len());
        for col in &schema.columns {
            w.str(&col.name);
            w.str(&col.data_type);
        }
        match &schema.kind {
            RelationKind::BaseTable => w.u8(0),
            RelationKind::View { definition, materialized } => {
                w.u8(1);
                w.str(definition);
                w.bool(*materialized);
            }
        }
    }
}

fn read_catalog(r: &mut Reader) -> Result<Catalog, SnapshotError> {
    let mut catalog = Catalog::new();
    for _ in 0..r.count()? {
        let name = r.str()?;
        let mut columns = Vec::new();
        for _ in 0..r.count()? {
            let col_name = r.str()?;
            let data_type = r.str()?;
            columns.push(Column::new(col_name, data_type));
        }
        let kind = match r.u8()? {
            0 => RelationKind::BaseTable,
            1 => {
                let definition = r.str()?;
                let materialized = r.bool()?;
                RelationKind::View { definition, materialized }
            }
            other => return Err(SnapshotError::corrupt(format!("bad relation kind {other}"))),
        };
        catalog.add_or_replace(TableSchema { name, columns, kind });
    }
    Ok(catalog)
}

fn write_graph(w: &mut Writer, graph: &LineageGraph) {
    w.u32(graph.nodes.len());
    for (key, node) in &graph.nodes {
        w.str(key);
        w.str(&node.name);
        w.u8(node_kind_tag(node.kind));
        w.u32(node.columns.len());
        for col in &node.columns {
            w.str(col);
        }
    }
    w.u32(graph.queries.len());
    for (key, query) in &graph.queries {
        w.str(key);
        write_query(w, query);
    }
    w.u32(graph.order.len());
    for id in &graph.order {
        w.str(id);
    }
}

fn read_graph(r: &mut Reader) -> Result<LineageGraph, SnapshotError> {
    // The maps were serialised from `BTreeMap` iteration, so the stream
    // is already sorted: collecting pairs and bulk-building the tree is
    // markedly faster at 10k+ queries than one rebalancing insert each.
    let node_count = r.count()?;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let key = r.str()?;
        let name = r.str()?;
        let kind = node_kind_from(r.u8()?)?;
        let col_count = r.count()?;
        let mut columns = Vec::with_capacity(col_count);
        for _ in 0..col_count {
            columns.push(r.str()?);
        }
        nodes.push((key, Node { name, kind, columns }));
    }
    let query_count = r.count()?;
    let mut queries = Vec::with_capacity(query_count);
    for _ in 0..query_count {
        let key = r.str()?;
        let query = read_query(r)?;
        queries.push((key, query));
    }
    let order_count = r.count()?;
    let mut order = Vec::with_capacity(order_count);
    for _ in 0..order_count {
        order.push(r.str()?);
    }
    Ok(LineageGraph {
        nodes: nodes.into_iter().collect(),
        queries: queries.into_iter().collect(),
        order,
    })
}

fn write_query(w: &mut Writer, query: &QueryLineage) {
    w.str(&query.id);
    match query.kind {
        QueryKind::View { materialized } => {
            w.u8(0);
            w.bool(materialized);
        }
        QueryKind::TableAs => w.u8(1),
        QueryKind::Insert => w.u8(2),
        QueryKind::Update => w.u8(3),
        QueryKind::Select => w.u8(4),
    }
    w.u32(query.outputs.len());
    for out in &query.outputs {
        w.str(&out.name);
        w.u32(out.ccon.len());
        for sc in &out.ccon {
            write_source(w, sc);
        }
    }
    w.u32(query.cref.len());
    for sc in &query.cref {
        write_source(w, sc);
    }
    w.u32(query.tables.len());
    for t in &query.tables {
        w.str(t);
    }
    w.u32(query.diagnostics.len());
    for d in &query.diagnostics {
        write_diagnostic(w, d);
    }
    w.bool(query.partial);
}

fn read_query(r: &mut Reader) -> Result<QueryLineage, SnapshotError> {
    let id = r.str()?;
    let kind = match r.u8()? {
        0 => QueryKind::View { materialized: r.bool()? },
        1 => QueryKind::TableAs,
        2 => QueryKind::Insert,
        3 => QueryKind::Update,
        4 => QueryKind::Select,
        other => return Err(SnapshotError::corrupt(format!("bad query kind {other}"))),
    };
    let output_count = r.count()?;
    let mut outputs = Vec::with_capacity(output_count);
    for _ in 0..output_count {
        let name = r.str()?;
        let ccon_count = r.count()?;
        let mut ccon = Vec::with_capacity(ccon_count);
        for _ in 0..ccon_count {
            ccon.push(read_source(r)?);
        }
        outputs.push(OutputColumn { name, ccon: ccon.into_iter().collect() });
    }
    let cref_count = r.count()?;
    let mut cref = Vec::with_capacity(cref_count);
    for _ in 0..cref_count {
        cref.push(read_source(r)?);
    }
    let cref: BTreeSet<SourceColumn> = cref.into_iter().collect();
    let table_count = r.count()?;
    let mut tables = Vec::with_capacity(table_count);
    for _ in 0..table_count {
        tables.push(r.str()?);
    }
    let tables: BTreeSet<String> = tables.into_iter().collect();
    let diag_count = r.count()?;
    let mut diagnostics = Vec::with_capacity(diag_count);
    for _ in 0..diag_count {
        diagnostics.push(read_diagnostic(r)?);
    }
    let partial = r.bool()?;
    Ok(QueryLineage { id, kind, outputs, cref, tables, diagnostics, partial })
}

fn write_source(w: &mut Writer, sc: &SourceColumn) {
    w.str(&sc.table);
    w.str(&sc.column);
}

fn read_source(r: &mut Reader) -> Result<SourceColumn, SnapshotError> {
    let table = r.str()?;
    let column = r.str()?;
    Ok(SourceColumn { table, column })
}

fn write_diagnostic(w: &mut Writer, d: &Diagnostic) {
    w.str(d.code.as_str());
    w.u8(severity_tag(d.severity));
    w.str(&d.message);
    w.opt_str(d.statement.as_deref());
    match &d.span {
        None => w.u8(0),
        Some(span) => {
            w.u8(1);
            w.u64(span.start as u64);
            w.u64(span.end as u64);
            w.u32(span.line as usize);
            w.u32(span.column as usize);
        }
    }
    w.opt_str(d.excerpt.as_deref());
}

fn read_diagnostic(r: &mut Reader) -> Result<Diagnostic, SnapshotError> {
    let code = diagnostic_code_from(&r.str()?)?;
    let severity = severity_from(r.u8()?)?;
    let message = r.str()?;
    let statement = r.opt_str()?;
    let span = match r.u8()? {
        0 => None,
        1 => {
            let start = r.u64()? as usize;
            let end = r.u64()? as usize;
            let line = r.u32()?;
            let column = r.u32()?;
            Some(DiagnosticSpan { start, end, line, column })
        }
        other => return Err(SnapshotError::corrupt(format!("bad span tag {other}"))),
    };
    let excerpt = r.opt_str()?;
    Ok(Diagnostic { code, severity, message, statement, span, excerpt })
}

fn write_index(w: &mut Writer, index: &GraphIndex) {
    let raw = index.to_raw();
    w.u32(raw.names.len());
    for name in &raw.names {
        w.str(name);
    }
    w.u32(raw.relations.len());
    for rel in &raw.relations {
        match rel.kind {
            None => w.u8(0),
            Some(kind) => w.u8(1 + node_kind_tag(kind)),
        }
        w.u32(rel.declared.len());
        for &c in &rel.declared {
            w.u32(c as usize);
        }
        w.u32(rel.col_start as usize);
        w.u32(rel.col_end as usize);
    }
    w.u32(raw.columns.len());
    for &(rel, sym) in &raw.columns {
        w.u32(rel as usize);
        w.u32(sym as usize);
    }
    for (offsets, edges) in [&raw.fwd, &raw.rev, &raw.tbl_fwd, &raw.tbl_rev] {
        w.u32(offsets.len());
        for &o in offsets {
            w.u32(o as usize);
        }
        w.u32(edges.len());
        for &(to, kind) in edges {
            w.u32(to as usize);
            w.u8(edge_kind_tag(kind));
        }
    }
}

fn read_index(r: &mut Reader) -> Result<GraphIndex, SnapshotError> {
    use crate::graph::{RawGraphIndex, RawRelation};
    let name_count = r.count()?;
    let mut names = Vec::with_capacity(name_count);
    for _ in 0..name_count {
        names.push(r.str()?);
    }
    let rel_count = r.count()?;
    let mut relations = Vec::with_capacity(rel_count);
    for _ in 0..rel_count {
        let kind = match r.u8()? {
            0 => None,
            tag => Some(node_kind_from(tag - 1)?),
        };
        let declared_count = r.count()?;
        let mut declared = Vec::with_capacity(declared_count);
        for _ in 0..declared_count {
            declared.push(r.u32()?);
        }
        let col_start = r.u32()?;
        let col_end = r.u32()?;
        relations.push(RawRelation { kind, declared, col_start, col_end });
    }
    let col_count = r.count()?;
    let mut columns = Vec::with_capacity(col_count);
    for _ in 0..col_count {
        let rel = r.u32()?;
        let sym = r.u32()?;
        columns.push((rel, sym));
    }
    let mut csrs = Vec::with_capacity(4);
    for _ in 0..4 {
        let offset_count = r.count()?;
        let mut offsets = Vec::with_capacity(offset_count);
        for _ in 0..offset_count {
            offsets.push(r.u32()?);
        }
        let edge_count = r.count()?;
        let mut edges = Vec::with_capacity(edge_count);
        for _ in 0..edge_count {
            let to = r.u32()?;
            let kind = edge_kind_from(r.u8()?)?;
            edges.push((to, kind));
        }
        csrs.push((offsets, edges));
    }
    let tbl_rev = csrs.pop().expect("four CSRs were read");
    let tbl_fwd = csrs.pop().expect("four CSRs were read");
    let rev = csrs.pop().expect("four CSRs were read");
    let fwd = csrs.pop().expect("four CSRs were read");
    Ok(GraphIndex::from_raw(RawGraphIndex {
        names,
        relations,
        columns,
        fwd,
        rev,
        tbl_fwd,
        tbl_rev,
    }))
}

// --- enum tags ----------------------------------------------------------

fn node_kind_tag(kind: NodeKind) -> u8 {
    match kind {
        NodeKind::BaseTable => 0,
        NodeKind::View => 1,
        NodeKind::Table => 2,
        NodeKind::QueryResult => 3,
        NodeKind::External => 4,
    }
}

fn node_kind_from(tag: u8) -> Result<NodeKind, SnapshotError> {
    Ok(match tag {
        0 => NodeKind::BaseTable,
        1 => NodeKind::View,
        2 => NodeKind::Table,
        3 => NodeKind::QueryResult,
        4 => NodeKind::External,
        other => return Err(SnapshotError::corrupt(format!("bad node kind {other}"))),
    })
}

fn edge_kind_tag(kind: EdgeKind) -> u8 {
    match kind {
        EdgeKind::Contribute => 0,
        EdgeKind::Reference => 1,
        EdgeKind::Both => 2,
    }
}

fn edge_kind_from(tag: u8) -> Result<EdgeKind, SnapshotError> {
    Ok(match tag {
        0 => EdgeKind::Contribute,
        1 => EdgeKind::Reference,
        2 => EdgeKind::Both,
        other => return Err(SnapshotError::corrupt(format!("bad edge kind {other}"))),
    })
}

fn severity_tag(severity: Severity) -> u8 {
    match severity {
        Severity::Info => 0,
        Severity::Warning => 1,
        Severity::Error => 2,
    }
}

fn severity_from(tag: u8) -> Result<Severity, SnapshotError> {
    Ok(match tag {
        0 => Severity::Info,
        1 => Severity::Warning,
        2 => Severity::Error,
        other => return Err(SnapshotError::corrupt(format!("bad severity {other}"))),
    })
}

fn diagnostic_code_from(s: &str) -> Result<DiagnosticCode, SnapshotError> {
    Ok(match s {
        "parse-error" => DiagnosticCode::ParseError,
        "duplicate-query-id" => DiagnosticCode::DuplicateQueryId,
        "unknown-relation" => DiagnosticCode::UnknownRelation,
        "unresolved-column" => DiagnosticCode::UnresolvedColumn,
        "unresolved-wildcard" => DiagnosticCode::UnresolvedWildcard,
        "ambiguity-resolved" => DiagnosticCode::AmbiguityResolved,
        "inferred-column" => DiagnosticCode::InferredColumn,
        "skipped-statement" => DiagnosticCode::SkippedStatement,
        "noise-statement" => DiagnosticCode::NoiseStatement,
        "dialect-fallback" => DiagnosticCode::DialectFallback,
        "dependency-cycle" => DiagnosticCode::DependencyCycle,
        "extraction-failed" => DiagnosticCode::ExtractionFailed,
        "invalid-request" => DiagnosticCode::InvalidRequest,
        "unsupported-schema-version" => DiagnosticCode::UnsupportedSchemaVersion,
        "snapshot-corrupt" => DiagnosticCode::SnapshotCorrupt,
        other => return Err(SnapshotError::corrupt(format!("unknown diagnostic code {other:?}"))),
    })
}

// --- byte plumbing ------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::with_capacity(4096) }
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    fn u32(&mut self, v: usize) {
        let v = u32::try_from(v).expect("snapshot section holds < 2^32 items");
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::corrupt(format!(
                "truncated snapshot: need {n} byte(s) at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::corrupt(format!("bad bool byte {other}"))),
        }
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take returned 4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take returned 8 bytes")))
    }

    /// A `u32` collection count, bounded by the remaining payload so a
    /// corrupt length can never trigger a huge allocation.
    fn count(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(SnapshotError::corrupt(format!(
                "implausible count {n} at offset {} ({} byte(s) remain)",
                self.pos - 4,
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.count()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::corrupt("string is not valid UTF-8"))
    }

    fn opt_str(&mut self) -> Result<Option<String>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            other => Err(SnapshotError::corrupt(format!("bad option tag {other}"))),
        }
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and plenty to catch the random
/// corruption and truncation this format defends against (it is an
/// integrity check, not an authenticity one).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::lineagex;

    fn sample() -> GraphSnapshot {
        let result = lineagex(
            "CREATE TABLE base (a int, k int);
             CREATE VIEW mid AS SELECT a AS b FROM base WHERE k > 0;
             CREATE VIEW top AS SELECT b AS c FROM mid;",
        )
        .unwrap();
        let index = GraphIndex::build(&result.graph);
        let mut catalog = Catalog::new();
        catalog.add_or_replace(TableSchema::base_table(
            "base",
            vec![Column::new("a", "int"), Column::new("k", "int")],
        ));
        let mut inferred = BTreeMap::new();
        let mut tables = BTreeMap::new();
        tables.insert("ext".to_string(), BTreeSet::from(["x".to_string()]));
        tables.insert("empty".to_string(), BTreeSet::new());
        inferred.insert("mid".to_string(), tables);
        GraphSnapshot {
            catalog,
            graph: result.graph,
            index,
            diagnostics: vec![{
                let mut d = Diagnostic::new(DiagnosticCode::ParseError, "boom");
                d.span = Some(DiagnosticSpan { start: 3, end: 9, line: 1, column: 4 });
                d
            }],
            inferred,
            entries: vec![SnapshotEntry {
                id: "mid".into(),
                sql: "CREATE VIEW mid AS SELECT a AS b FROM base WHERE k > 0".into(),
                deps: vec!["base".into()],
                deps_norm: vec!["base".into()],
            }],
            revision: 7,
            counters: vec![("engine.statements".into(), 3)],
            dialect: "snowflake".into(),
        }
    }

    #[test]
    fn round_trip_is_lossless() {
        let snapshot = sample();
        let bytes = write_snapshot(&snapshot);
        let loaded = read_snapshot(&bytes).unwrap();
        assert_eq!(loaded.catalog, snapshot.catalog);
        assert_eq!(loaded.graph, snapshot.graph);
        assert_eq!(loaded.diagnostics, snapshot.diagnostics);
        assert_eq!(loaded.inferred, snapshot.inferred);
        assert_eq!(loaded.entries, snapshot.entries);
        assert_eq!(loaded.revision, 7);
        assert_eq!(loaded.counters, snapshot.counters);
        assert_eq!(loaded.dialect, "snowflake");
        assert_eq!(loaded.index.column_count(), snapshot.index.column_count());
        assert_eq!(loaded.index.edge_count(), snapshot.index.edge_count());
        // Re-serialising the loaded snapshot is byte-identical.
        assert_eq!(write_snapshot(&loaded), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = write_snapshot(&sample());
        for len in 0..bytes.len() {
            let err = read_snapshot(&bytes[..len]).expect_err("truncated file must not decode");
            assert_eq!(err.code, DiagnosticCode::SnapshotCorrupt, "at length {len}");
        }
    }

    #[test]
    fn corruption_is_caught_by_the_checksum() {
        let bytes = write_snapshot(&sample());
        for pos in [5, bytes.len() / 2, bytes.len() - 9] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xff;
            let err = read_snapshot(&corrupt).expect_err("corrupt file must not decode");
            assert_eq!(err.code, DiagnosticCode::SnapshotCorrupt, "flip at {pos}");
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut bytes = write_snapshot(&sample());
        let err = read_snapshot(b"not a snapshot file").unwrap_err();
        assert!(err.message.contains("magic"), "{err}");
        bytes[4] = SNAPSHOT_VERSION + 1;
        let err = read_snapshot(&bytes).unwrap_err();
        assert!(err.message.contains("version"), "{err}");
        assert_eq!(LineageError::from(err.clone()), LineageError::Snapshot(err.message));
    }
}
