//! Structured, span-carrying diagnostics.
//!
//! Every non-fatal finding anywhere in the pipeline — preprocessing,
//! extraction, the session engine — is a [`Diagnostic`]: a typed code, a
//! severity, a human-readable message, and (when the source location is
//! known) a [`DiagnosticSpan`] resolving to `line:col` in the original
//! SQL text. The CLI renders diagnostics caret-style against the source
//! (`file:line:col` plus the offending line); `--diagnostics-json` dumps
//! them as structured JSON.
//!
//! In **lenient mode** ([`crate::ExtractOptions::lenient`]) conditions
//! that would abort a strict run — unparsable statements, duplicate query
//! ids, unresolvable columns — degrade into diagnostics, and the affected
//! query's lineage is marked *partial* instead of poisoning the batch.

use lineagex_sqlparse::Span;
use serde::{Content, Serialize};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: extraction was complete, this is worth knowing.
    Info,
    /// Something degraded: lineage may be partial or inferred.
    Warning,
    /// A statement or region could not be processed at all.
    Error,
}

impl Severity {
    /// The lower-case name used in rendered output and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl Serialize for Severity {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The typed classification of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticCode {
    /// A statement (or region) failed to lex/parse; it was skipped and
    /// parsing resumed at the next `;`.
    ParseError,
    /// Two Query-Dictionary entries claimed the same identifier; the last
    /// definition won.
    DuplicateQueryId,
    /// A scanned relation is neither in the catalog nor the dictionary;
    /// its schema is inferred from usage.
    UnknownRelation,
    /// A column reference could not be attributed to any relation in
    /// scope (lenient mode only; strict mode errors).
    UnresolvedColumn,
    /// `*`/`t.*` over a schema-less relation cannot be fully expanded.
    UnresolvedWildcard,
    /// An ambiguous unqualified column was attributed under a lenient
    /// ambiguity policy.
    AmbiguityResolved,
    /// A column of a schema-less relation was inferred from usage.
    InferredColumn,
    /// A statement carrying no lineage was skipped (e.g. `DROP`,
    /// `DELETE`).
    SkippedStatement,
    /// Recognised query-log noise (`EXPLAIN`, `SET`, transaction
    /// control, `ANALYZE`) was skipped.
    NoiseStatement,
    /// View definitions form a dependency cycle; the cycle was broken
    /// with an empty stub (lenient mode only).
    DependencyCycle,
    /// Extraction of one query failed outright; its lineage record is a
    /// partial stub (lenient mode only).
    ExtractionFailed,
    /// A service request was malformed (bad JSON shape, missing or
    /// mistyped fields, unknown operation). The request was rejected;
    /// the connection and every other client are unaffected.
    InvalidRequest,
    /// A service request declared a protocol `schema_version` this
    /// server does not speak.
    UnsupportedSchemaVersion,
    /// A binary snapshot file could not be loaded: wrong magic, an
    /// unsupported format version, a truncated payload, or a checksum
    /// mismatch. The session starts empty instead.
    SnapshotCorrupt,
    /// A dialect-specific construct was recognised but not modelled
    /// (e.g. `MERGE`); the statement was skipped with its span so the
    /// rest of the log extracts normally.
    DialectFallback,
}

impl DiagnosticCode {
    /// The kebab-case code used in rendered output and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagnosticCode::ParseError => "parse-error",
            DiagnosticCode::DuplicateQueryId => "duplicate-query-id",
            DiagnosticCode::UnknownRelation => "unknown-relation",
            DiagnosticCode::UnresolvedColumn => "unresolved-column",
            DiagnosticCode::UnresolvedWildcard => "unresolved-wildcard",
            DiagnosticCode::AmbiguityResolved => "ambiguity-resolved",
            DiagnosticCode::InferredColumn => "inferred-column",
            DiagnosticCode::SkippedStatement => "skipped-statement",
            DiagnosticCode::NoiseStatement => "noise-statement",
            DiagnosticCode::DependencyCycle => "dependency-cycle",
            DiagnosticCode::ExtractionFailed => "extraction-failed",
            DiagnosticCode::InvalidRequest => "invalid-request",
            DiagnosticCode::UnsupportedSchemaVersion => "unsupported-schema-version",
            DiagnosticCode::SnapshotCorrupt => "snapshot-corrupt",
            DiagnosticCode::DialectFallback => "dialect-fallback",
        }
    }

    /// The default severity for this code.
    pub fn default_severity(&self) -> Severity {
        match self {
            DiagnosticCode::ParseError
            | DiagnosticCode::InvalidRequest
            | DiagnosticCode::UnsupportedSchemaVersion
            | DiagnosticCode::SnapshotCorrupt => Severity::Error,
            DiagnosticCode::DuplicateQueryId
            | DiagnosticCode::UnresolvedColumn
            | DiagnosticCode::UnresolvedWildcard
            | DiagnosticCode::UnknownRelation
            | DiagnosticCode::DependencyCycle
            | DiagnosticCode::ExtractionFailed
            | DiagnosticCode::DialectFallback => Severity::Warning,
            DiagnosticCode::AmbiguityResolved
            | DiagnosticCode::InferredColumn
            | DiagnosticCode::SkippedStatement
            | DiagnosticCode::NoiseStatement => Severity::Info,
        }
    }
}

impl Serialize for DiagnosticCode {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A serializable source range: byte offsets plus the 1-based line/column
/// of the start (mirrors [`lineagex_sqlparse::Span`] without dragging the
/// parser crate into serialized output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct DiagnosticSpan {
    /// Byte offset of the first spanned byte.
    pub start: usize,
    /// Byte offset one past the last spanned byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub column: u32,
}

impl From<Span> for DiagnosticSpan {
    fn from(span: Span) -> Self {
        DiagnosticSpan {
            start: span.start,
            end: span.end,
            line: span.location.line,
            column: span.location.column,
        }
    }
}

impl fmt::Display for DiagnosticSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// One structured finding, produced anywhere in the pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// The typed classification.
    pub code: DiagnosticCode,
    /// How serious it is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// The query id the diagnostic belongs to, when one exists (a parse
    /// error has no query id; an unresolved column does).
    pub statement: Option<String>,
    /// Where in the source the diagnostic points, when known.
    pub span: Option<DiagnosticSpan>,
    /// The source line the span starts on, when it was available at
    /// construction time (lets reports render excerpts without re-reading
    /// the input).
    pub excerpt: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity.
    pub fn new(code: DiagnosticCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            statement: None,
            span: None,
            excerpt: None,
        }
    }

    /// Override the severity.
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Attach a source span. A default (empty) parser span means "no
    /// location" and is ignored, so synthetic statements never render a
    /// bogus `1:1`.
    pub fn with_span(mut self, span: Span) -> Self {
        if span != Span::default() {
            self.span = Some(span.into());
        }
        self
    }

    /// Attribute the diagnostic to a query id.
    pub fn for_statement(mut self, id: impl Into<String>) -> Self {
        self.statement = Some(id.into());
        self
    }

    /// Capture the source line the span starts on as the stored excerpt.
    pub fn with_excerpt_from(mut self, source: &str) -> Self {
        if let Some(span) = &self.span {
            let line_idx = span.line.saturating_sub(1) as usize;
            if let Some(line) = source.lines().nth(line_idx) {
                self.excerpt = Some(line.to_string());
            }
        }
        self
    }

    /// Render the diagnostic caret-style against the original source:
    ///
    /// ```text
    /// queries.sql:2:8: warning[unresolved-column]: in v: column "ghost" does not exist
    ///   SELECT ghost FROM t
    ///          ^~~~~
    /// ```
    ///
    /// Falls back to the stored excerpt when `source` no longer holds the
    /// spanned line (e.g. a session buffer that has moved on), and to a
    /// one-line rendering when no span is known.
    pub fn render(&self, file: &str, source: &str) -> String {
        let mut head = String::new();
        head.push_str(file);
        if let Some(span) = &self.span {
            head.push_str(&format!(":{span}"));
        }
        head.push_str(&format!(": {}[{}]: {}", self.severity, self.code, self.message));
        let Some(span) = &self.span else { return head };
        let line_idx = span.line.saturating_sub(1) as usize;
        let line = source
            .lines()
            .nth(line_idx)
            .map(str::to_string)
            .or_else(|| self.excerpt.clone())
            .unwrap_or_default();
        if line.is_empty() {
            return head;
        }
        let col_idx = span.column.saturating_sub(1) as usize;
        let width = span.end.saturating_sub(span.start).max(1);
        // The caret marks the first column; tildes extend over the rest
        // of the span (clamped to the line).
        let avail = line.chars().count().saturating_sub(col_idx).max(1);
        let tildes = "~".repeat(width.min(avail).saturating_sub(1));
        format!("{head}\n  {line}\n  {}^{tildes}", " ".repeat(col_idx))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.statement, &self.span) {
            (Some(id), Some(span)) => {
                write!(f, "{}[{}] at {span} in {id}: {}", self.severity, self.code, self.message)
            }
            (Some(id), None) => {
                write!(f, "{}[{}] in {id}: {}", self.severity, self.code, self.message)
            }
            (None, Some(span)) => {
                write!(f, "{}[{}] at {span}: {}", self.severity, self.code, self.message)
            }
            (None, None) => write!(f, "{}[{}]: {}", self.severity, self.code, self.message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_sqlparse::Location;

    fn span(start: usize, end: usize, line: u32, col: u32) -> Span {
        Span::new(start, end, Location::new(line, col))
    }

    #[test]
    fn codes_render_kebab_case() {
        assert_eq!(DiagnosticCode::ParseError.as_str(), "parse-error");
        assert_eq!(DiagnosticCode::DuplicateQueryId.as_str(), "duplicate-query-id");
        assert_eq!(DiagnosticCode::NoiseStatement.to_string(), "noise-statement");
    }

    #[test]
    fn default_severities() {
        assert_eq!(DiagnosticCode::ParseError.default_severity(), Severity::Error);
        assert_eq!(DiagnosticCode::UnresolvedColumn.default_severity(), Severity::Warning);
        assert_eq!(DiagnosticCode::NoiseStatement.default_severity(), Severity::Info);
    }

    #[test]
    fn render_points_caret_at_span() {
        let source = "SELECT ghost FROM t";
        let d = Diagnostic::new(DiagnosticCode::UnresolvedColumn, "column \"ghost\" not found")
            .for_statement("v")
            .with_span(span(7, 12, 1, 8));
        let rendered = d.render("q.sql", source);
        assert!(rendered.starts_with("q.sql:1:8: warning[unresolved-column]:"), "{rendered}");
        assert!(rendered.contains("SELECT ghost FROM t"), "{rendered}");
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(caret_line, &format!("  {}^~~~~", " ".repeat(7)));
    }

    #[test]
    fn render_without_span_is_one_line() {
        let d = Diagnostic::new(DiagnosticCode::SkippedStatement, "DROP old_v");
        assert_eq!(d.render("q.sql", ""), "q.sql: info[skipped-statement]: DROP old_v");
    }

    #[test]
    fn render_falls_back_to_stored_excerpt() {
        let source = "SELECT ghost FROM t";
        let d = Diagnostic::new(DiagnosticCode::UnresolvedColumn, "ghost")
            .with_span(span(7, 12, 1, 8))
            .with_excerpt_from(source);
        // Rendering against a *different* (shorter) source still shows
        // the captured line.
        let rendered = d.render("session", "");
        assert!(rendered.contains("SELECT ghost FROM t"), "{rendered}");
    }

    #[test]
    fn default_span_means_no_location() {
        let d = Diagnostic::new(DiagnosticCode::SkippedStatement, "x").with_span(Span::default());
        assert!(d.span.is_none());
    }

    #[test]
    fn serializes_with_kebab_code_and_span() {
        let d = Diagnostic::new(DiagnosticCode::ParseError, "expected expression")
            .with_span(span(7, 11, 2, 3));
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"code\":\"parse-error\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("\"line\":2"), "{json}");
    }

    #[test]
    fn display_mentions_statement_and_location() {
        let d = Diagnostic::new(DiagnosticCode::UnknownRelation, "relation web is external")
            .for_statement("v")
            .with_span(span(0, 3, 4, 9));
        assert_eq!(
            d.to_string(),
            "warning[unknown-relation] at 4:9 in v: relation web is external"
        );
    }
}
