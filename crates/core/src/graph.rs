//! The interned, index-backed representation of a settled lineage graph.
//!
//! Every traversal the query layer runs used to re-walk
//! `BTreeMap<String, …>` structures keyed by owned strings: each BFS hop
//! scanned every query's lineage record and compared full `table.column`
//! strings. That is the exact anti-pattern SMOKE ("Fine-grained Lineage
//! at Interactive Speed") warns about — lineage answers should be index
//! lookups, not repeated string-keyed scans.
//!
//! This module provides the index:
//!
//! * [`Interner`] — maps every relation and column *name* to a dense
//!   `u32` [`Symbol`], so identity checks are integer compares and every
//!   string is stored once;
//! * [`GraphIndex`] — a frozen snapshot of a [`LineageGraph`]'s topology:
//!   all columns as dense [`ColumnId`]s sorted by `(table, column)`, all
//!   relations as dense [`RelationId`]s sorted by name, and CSR-style
//!   (compressed sparse row) forward *and* reverse adjacency for both
//!   the merged column-level edge set and the relation-level edge set;
//! * [`GraphIndexCache`] — the build-once/reuse wrapper both backends
//!   hang on to ([`crate::infer::LineageResult`] behind a cheap
//!   fingerprint, the session engine invalidating explicitly alongside
//!   its dirty-cone state).
//!
//! Identity is a [`Symbol`] *inside* the index; the wire formats and
//! every public answer keep speaking strings. [`GraphIndex`] translates
//! at the boundary ([`GraphIndex::source_column`]), which is why
//! `ReportV2` and `QueryAnswer` documents are byte-identical to the
//! legacy string-walk implementation (asserted by the workspace's
//! equivalence property tests).
//!
//! The index is *derived* state: build it with [`GraphIndex::build`]
//! after the graph settles, drop it when the graph changes. The CSR edge
//! lists are sorted by neighbour id, and because ids are assigned in
//! lexicographic name order, iterating an adjacency row visits
//! neighbours in exactly the order the legacy string walk did — BFS tie
//! breaks, and therefore shortest-path answers, are preserved bit for
//! bit.

use crate::model::{EdgeKind, LineageGraph, NodeKind, SourceColumn};
use lineagex_obs::Histogram;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

/// Wall time per [`GraphIndex::build`], in µs (its `count` is the number
/// of index builds this process has run).
fn index_build_us() -> &'static Histogram {
    static METRIC: OnceLock<Histogram> = OnceLock::new();
    METRIC.get_or_init(|| lineagex_obs::registry().histogram("query.index_build_us"))
}

/// Idempotently register this module's metric names; see
/// [`crate::query::register_metrics`].
pub(crate) fn register_metrics() {
    let _ = index_build_us();
}

/// A dense interned-string id. Two names are equal iff their symbols are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The symbol's dense index (usable as a `Vec` slot).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense id for one column of the indexed graph. Ids are assigned in
/// `(table, column)` lexicographic order, so `ColumnId` order *is*
/// [`SourceColumn`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnId(u32);

impl ColumnId {
    /// The column's dense index (usable as a `Vec` slot).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The column id at a dense index (the inverse of
    /// [`ColumnId::index`]; out-of-range ids fail on first use).
    pub fn from_index(index: usize) -> ColumnId {
        ColumnId(index as u32)
    }
}

/// A dense id for one relation of the indexed graph. Ids are assigned in
/// name order, so `RelationId` order *is* relation-name order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(u32);

impl RelationId {
    /// The relation's dense index (usable as a `Vec` slot).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The relation id at a dense index (the inverse of
    /// [`RelationId::index`]; out-of-range ids fail on first use).
    pub fn from_index(index: usize) -> RelationId {
        RelationId(index as u32)
    }
}

/// A string interner: each distinct name is stored once and addressed by
/// a dense [`Symbol`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    lookup: HashMap<String, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `name`, returning its (new or existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.lookup.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(self.names.len()).expect("interner holds < 2^32 names");
        self.names.push(name.to_string());
        self.lookup.insert(name.to_string(), id);
        Symbol(id)
    }

    /// The symbol of an already-interned name, if any.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.lookup.get(name).copied().map(Symbol)
    }

    /// The name behind a symbol.
    pub fn resolve(&self, symbol: Symbol) -> &str {
        &self.names[symbol.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuild an interner from its dense name table (symbol `i` is
    /// `names[i]`): the decode half of the snapshot codec.
    pub(crate) fn from_names(names: Vec<String>) -> Interner {
        let lookup = names.iter().enumerate().map(|(i, name)| (name.clone(), i as u32)).collect();
        Interner { names, lookup }
    }

    /// The dense name table (symbol `i` is `names[i]`): the encode half
    /// of the snapshot codec.
    pub(crate) fn names(&self) -> &[String] {
        &self.names
    }
}

/// Per-relation index record.
#[derive(Debug, Clone)]
struct RelationInfo {
    /// The relation's interned name.
    name: Symbol,
    /// The graph node's kind, or `None` when the relation only appears
    /// inside lineage records (no node — treated like the legacy walk
    /// treated a missing `nodes` entry).
    kind: Option<NodeKind>,
    /// The node's columns in *declared* order (empty without a node).
    declared: Vec<ColumnId>,
    /// The relation's contiguous column range `[start, end)` in the
    /// sorted column table.
    col_start: u32,
    col_end: u32,
}

/// One CSR adjacency: `offsets[i]..offsets[i + 1]` indexes the edge rows
/// of node `i`, each row carrying the neighbour id and the merged edge
/// kind. Rows are sorted by neighbour id.
#[derive(Debug, Clone, Default)]
struct Csr {
    offsets: Vec<u32>,
    edges: Vec<(u32, EdgeKind)>,
}

impl Csr {
    /// Build from `(node, neighbour, kind)` triples sorted by
    /// `(node, neighbour)`.
    fn from_sorted(nodes: usize, triples: &[(u32, u32, EdgeKind)]) -> Csr {
        let mut offsets = vec![0u32; nodes + 1];
        for &(node, _, _) in triples {
            offsets[node as usize + 1] += 1;
        }
        for i in 0..nodes {
            offsets[i + 1] += offsets[i];
        }
        let edges = triples.iter().map(|&(_, neighbour, kind)| (neighbour, kind)).collect();
        Csr { offsets, edges }
    }

    fn row(&self, node: u32) -> &[(u32, EdgeKind)] {
        &self.edges[self.offsets[node as usize] as usize..self.offsets[node as usize + 1] as usize]
    }
}

/// The interned, CSR-backed index over one settled [`LineageGraph`].
///
/// Self-contained: building it snapshots everything the traversal layer
/// needs (names, node kinds, declared column orders, both edge sets), so
/// [`crate::QuerySpec::run_with`] runs without touching the source graph
/// at all.
#[derive(Debug, Clone)]
pub struct GraphIndex {
    interner: Interner,
    relations: Vec<RelationInfo>,
    columns: Vec<(RelationId, Symbol)>,
    /// Merged column-level edges (`C_con`/`C_ref` with `Both` upgrades,
    /// exactly [`LineageGraph::all_edges`] semantics), forward = source
    /// column → derived column.
    fwd: Csr,
    rev: Csr,
    /// Relation-level edges (deduplicated `table_edges`), forward =
    /// scanned relation → derived relation.
    tbl_fwd: Csr,
    tbl_rev: Csr,
}

impl GraphIndex {
    /// Build the index from a settled graph. Cost is `O(V + E)` with the
    /// sorting's log factor; run it once per settled revision and reuse
    /// (see [`GraphIndexCache`]).
    pub fn build(graph: &LineageGraph) -> GraphIndex {
        let _timer = index_build_us().time();
        // 1. Collect every relation and its column-name set, borrowed
        //    from the graph: node schemas, query outputs, every C_con /
        //    C_ref endpoint, and scanned relations (for the table level).
        let mut columns_by_rel: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for node in graph.nodes.values() {
            let set = columns_by_rel.entry(node.name.as_str()).or_default();
            set.extend(node.columns.iter().map(String::as_str));
        }
        for query in graph.queries.values() {
            {
                let set = columns_by_rel.entry(query.id.as_str()).or_default();
                set.extend(query.outputs.iter().map(|o| o.name.as_str()));
            }
            for source in query.outputs.iter().flat_map(|o| o.ccon.iter()).chain(&query.cref) {
                columns_by_rel
                    .entry(source.table.as_str())
                    .or_default()
                    .insert(source.column.as_str());
            }
            for table in &query.tables {
                columns_by_rel.entry(table.as_str()).or_default();
            }
        }

        // 2. Intern relation names first, in sorted order: a relation's
        //    `RelationId` equals its name's `Symbol`, and both follow
        //    name order.
        let mut interner = Interner::new();
        let mut relations: Vec<RelationInfo> = Vec::with_capacity(columns_by_rel.len());
        let mut columns: Vec<(RelationId, Symbol)> = Vec::new();
        for name in columns_by_rel.keys() {
            let symbol = interner.intern(name);
            debug_assert_eq!(symbol.index(), relations.len());
            relations.push(RelationInfo {
                name: symbol,
                kind: None,
                declared: Vec::new(),
                col_start: 0,
                col_end: 0,
            });
        }

        // 3. Lay out columns contiguously per relation, sorted by name
        //    within each: global `ColumnId` order is `(table, column)`
        //    lexicographic order — `SourceColumn` order.
        for (rel_index, (_, names)) in columns_by_rel.iter().enumerate() {
            let start = u32::try_from(columns.len()).expect("graph holds < 2^32 columns");
            for name in names {
                let symbol = interner.intern(name);
                columns.push((RelationId(rel_index as u32), symbol));
            }
            relations[rel_index].col_start = start;
            relations[rel_index].col_end = columns.len() as u32;
        }

        let mut index = GraphIndex {
            interner,
            relations,
            columns,
            fwd: Csr::default(),
            rev: Csr::default(),
            tbl_fwd: Csr::default(),
            tbl_rev: Csr::default(),
        };

        // 4. Node metadata: kind + declared column order.
        for node in graph.nodes.values() {
            let rel = index.lookup_relation(&node.name).expect("node relation was collected");
            let declared = node
                .columns
                .iter()
                .map(|c| index.lookup_column(&node.name, c).expect("node column was collected"))
                .collect();
            let info = &mut index.relations[rel.index()];
            info.kind = Some(node.kind);
            info.declared = declared;
        }

        // 5. Column-level edges, merged per query exactly like
        //    `LineageGraph::all_edges`: contribute entries first, then
        //    every referenced source fans out to every output, upgrading
        //    shared pairs to `Both`. Derived-column ids are unique per
        //    query, so per-query merges compose into the global edge set
        //    without cross-query collisions.
        let mut triples: Vec<(u32, u32, EdgeKind)> = Vec::new();
        for query in graph.queries.values() {
            let mut merged: BTreeMap<(u32, u32), EdgeKind> = BTreeMap::new();
            let to_ids: Vec<u32> = query
                .outputs
                .iter()
                .map(|out| {
                    index.lookup_column(&query.id, &out.name).expect("output was collected").0
                })
                .collect();
            for (out, &to) in query.outputs.iter().zip(&to_ids) {
                for source in &out.ccon {
                    let from = index
                        .lookup_column(&source.table, &source.column)
                        .expect("contribute source was collected")
                        .0;
                    merged.insert((from, to), EdgeKind::Contribute);
                }
            }
            for source in &query.cref {
                let from = index
                    .lookup_column(&source.table, &source.column)
                    .expect("reference source was collected")
                    .0;
                for &to in &to_ids {
                    merged
                        .entry((from, to))
                        .and_modify(|kind| {
                            if *kind == EdgeKind::Contribute {
                                *kind = EdgeKind::Both;
                            }
                        })
                        .or_insert(EdgeKind::Reference);
                }
            }
            triples.extend(merged.into_iter().map(|((from, to), kind)| (from, to, kind)));
        }
        triples.sort_unstable_by_key(|&(from, to, _)| (from, to));
        index.fwd = Csr::from_sorted(index.columns.len(), &triples);
        triples.sort_unstable_by_key(|&(from, to, _)| (to, from));
        let reversed: Vec<(u32, u32, EdgeKind)> =
            triples.iter().map(|&(from, to, kind)| (to, from, kind)).collect();
        index.rev = Csr::from_sorted(index.columns.len(), &reversed);

        // 6. Relation-level edges (deduplicated `table_edges`).
        let mut tbl: BTreeSet<(u32, u32)> = BTreeSet::new();
        for query in graph.queries.values() {
            let to = index.lookup_relation(&query.id).expect("query relation was collected").0;
            for table in &query.tables {
                let from = index.lookup_relation(table).expect("scanned relation was collected").0;
                tbl.insert((from, to));
            }
        }
        let tbl_triples: Vec<(u32, u32, EdgeKind)> =
            tbl.iter().map(|&(from, to)| (from, to, EdgeKind::Contribute)).collect();
        index.tbl_fwd = Csr::from_sorted(index.relations.len(), &tbl_triples);
        let mut tbl_reversed: Vec<(u32, u32, EdgeKind)> =
            tbl.iter().map(|&(from, to)| (to, from, EdgeKind::Contribute)).collect();
        tbl_reversed.sort_unstable_by_key(|&(from, to, _)| (from, to));
        index.tbl_rev = Csr::from_sorted(index.relations.len(), &tbl_reversed);

        index
    }

    /// Number of indexed columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Number of indexed relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Number of merged column-level edges.
    pub fn edge_count(&self) -> usize {
        self.fwd.edges.len()
    }

    /// The interner backing the index.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The relation id of `name`, if indexed.
    pub fn lookup_relation(&self, name: &str) -> Option<RelationId> {
        let symbol = self.interner.get(name)?;
        // Relation names were interned first, in relation-id order.
        (symbol.index() < self.relations.len()).then_some(RelationId(symbol.0))
    }

    /// The column id of `table.column`, if indexed. A binary search over
    /// the relation's sorted column range — no string allocation.
    pub fn lookup_column(&self, table: &str, column: &str) -> Option<ColumnId> {
        let rel = self.lookup_relation(table)?;
        let info = &self.relations[rel.index()];
        let range = &self.columns[info.col_start as usize..info.col_end as usize];
        let offset = range
            .binary_search_by(|(_, symbol)| self.interner.resolve(*symbol).cmp(column))
            .ok()?;
        Some(ColumnId(info.col_start + offset as u32))
    }

    /// The relation a column belongs to.
    pub fn column_relation(&self, column: ColumnId) -> RelationId {
        self.columns[column.index()].0
    }

    /// A column's name.
    pub fn column_name(&self, column: ColumnId) -> &str {
        self.interner.resolve(self.columns[column.index()].1)
    }

    /// A relation's name.
    pub fn relation_name(&self, relation: RelationId) -> &str {
        self.interner.resolve(self.relations[relation.index()].name)
    }

    /// A relation's node kind, or `None` when the graph has no node for
    /// it (externals referenced only inside lineage records).
    pub fn relation_kind(&self, relation: RelationId) -> Option<NodeKind> {
        self.relations[relation.index()].kind
    }

    /// A relation's columns in the node's *declared* order (empty when
    /// the relation has no node).
    pub fn declared_columns(&self, relation: RelationId) -> &[ColumnId] {
        &self.relations[relation.index()].declared
    }

    /// Translate a column id back to the string world.
    pub fn source_column(&self, column: ColumnId) -> SourceColumn {
        SourceColumn::new(
            self.relation_name(self.column_relation(column)),
            self.column_name(column),
        )
    }

    /// Downstream column neighbours (merged edge kinds), sorted by id —
    /// i.e. by `(table, column)`, the legacy walk's visit order.
    pub fn out_edges(&self, column: ColumnId) -> &[(u32, EdgeKind)] {
        self.fwd.row(column.0)
    }

    /// Upstream column neighbours (merged edge kinds), sorted by id.
    pub fn in_edges(&self, column: ColumnId) -> &[(u32, EdgeKind)] {
        self.rev.row(column.0)
    }

    /// Relations directly derived from `relation`, sorted by id.
    pub fn table_out(&self, relation: RelationId) -> &[(u32, EdgeKind)] {
        self.tbl_fwd.row(relation.0)
    }

    /// Relations `relation` directly scans, sorted by id.
    pub fn table_in(&self, relation: RelationId) -> &[(u32, EdgeKind)] {
        self.tbl_rev.row(relation.0)
    }

    /// Approximate resident size of the index in bytes: the dense arrays
    /// plus interned string payloads. An estimate for the
    /// `engine.peak_graph_bytes` gauge, not an allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        let strings: usize = self.interner.names().iter().map(|n| n.len() + 24).sum();
        let relations = self.relations.len() * std::mem::size_of::<RelationInfo>()
            + self.relations.iter().map(|r| r.declared.len() * 4).sum::<usize>();
        let columns = self.columns.len() * 8;
        let csr = |c: &Csr| c.offsets.len() * 4 + c.edges.len() * 8;
        strings
            + relations
            + columns
            + csr(&self.fwd)
            + csr(&self.rev)
            + csr(&self.tbl_fwd)
            + csr(&self.tbl_rev)
    }

    /// Decompose into the dense arrays the binary snapshot serialises.
    /// [`GraphIndex::from_raw`] is the exact inverse; round-tripping
    /// preserves every id assignment and adjacency row bit for bit.
    pub(crate) fn to_raw(&self) -> RawGraphIndex {
        RawGraphIndex {
            names: self.interner.names().to_vec(),
            relations: self
                .relations
                .iter()
                .map(|r| RawRelation {
                    kind: r.kind,
                    declared: r.declared.iter().map(|c| c.0).collect(),
                    col_start: r.col_start,
                    col_end: r.col_end,
                })
                .collect(),
            columns: self.columns.iter().map(|&(rel, sym)| (rel.0, sym.0)).collect(),
            fwd: (self.fwd.offsets.clone(), self.fwd.edges.clone()),
            rev: (self.rev.offsets.clone(), self.rev.edges.clone()),
            tbl_fwd: (self.tbl_fwd.offsets.clone(), self.tbl_fwd.edges.clone()),
            tbl_rev: (self.tbl_rev.offsets.clone(), self.tbl_rev.edges.clone()),
        }
    }

    /// Reassemble an index from snapshot arrays without re-running
    /// [`GraphIndex::build`] — deserialisation is array moves plus one
    /// interner lookup-table rebuild, which is what makes snapshot
    /// cold-start sub-linear in extraction cost.
    pub(crate) fn from_raw(raw: RawGraphIndex) -> GraphIndex {
        let csr = |(offsets, edges): RawCsr| Csr { offsets, edges };
        GraphIndex {
            interner: Interner::from_names(raw.names),
            relations: raw
                .relations
                .into_iter()
                .enumerate()
                .map(|(i, r)| RelationInfo {
                    name: Symbol(i as u32),
                    kind: r.kind,
                    declared: r.declared.into_iter().map(ColumnId).collect(),
                    col_start: r.col_start,
                    col_end: r.col_end,
                })
                .collect(),
            columns: raw
                .columns
                .into_iter()
                .map(|(rel, sym)| (RelationId(rel), Symbol(sym)))
                .collect(),
            fwd: csr(raw.fwd),
            rev: csr(raw.rev),
            tbl_fwd: csr(raw.tbl_fwd),
            tbl_rev: csr(raw.tbl_rev),
        }
    }
}

/// One CSR as plain arrays: `(offsets, edges)`.
pub(crate) type RawCsr = (Vec<u32>, Vec<(u32, EdgeKind)>);

/// One relation record of a [`RawGraphIndex`]; the relation's name
/// symbol is its position in the list.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RawRelation {
    pub kind: Option<NodeKind>,
    pub declared: Vec<u32>,
    pub col_start: u32,
    pub col_end: u32,
}

/// The dense arrays behind a [`GraphIndex`], exposed to the binary
/// snapshot codec (`crate::snapshot`) so a persisted index can be
/// reloaded without paying a full rebuild.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RawGraphIndex {
    /// The interner's name table (symbol `i` is `names[i]`; the first
    /// `relations.len()` entries are the relation names, in id order).
    pub names: Vec<String>,
    pub relations: Vec<RawRelation>,
    /// Per column: `(relation id, name symbol)`.
    pub columns: Vec<(u32, u32)>,
    pub fwd: RawCsr,
    pub rev: RawCsr,
    pub tbl_fwd: RawCsr,
    pub tbl_rev: RawCsr,
}

/// A cheap structural fingerprint of a graph, used by
/// [`GraphIndexCache`] to decide whether a cached index still matches.
///
/// Counts plus name-byte totals, all computed from `len()` calls (never
/// reading string contents), so it costs `O(entries)`, not `O(bytes)`.
/// It changes whenever lineage is added, retracted, or reshaped, and
/// whenever an in-place edit swaps in a name of a different length; a
/// swap between *equal-length* names can still slip past it. Backends
/// that mutate their graph in place must therefore call
/// [`GraphIndexCache::invalidate`] explicitly (the session engine does,
/// alongside its dirty-cone bookkeeping); the fingerprint is the safety
/// net for the immutable-after-construction batch result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GraphFingerprint {
    relations: usize,
    node_columns: usize,
    queries: usize,
    order: usize,
    outputs: usize,
    ccon: usize,
    cref: usize,
    tables: usize,
    /// Total bytes of every name in every lineage record and node,
    /// weighted by position (source vs output vs node) so moves between
    /// sets change the sum too.
    name_bytes: usize,
}

impl GraphFingerprint {
    fn of(graph: &LineageGraph) -> GraphFingerprint {
        let mut outputs = 0;
        let mut ccon = 0;
        let mut cref = 0;
        let mut tables = 0;
        let mut name_bytes = 0;
        let source_bytes = |s: &SourceColumn| s.table.len() + 3 * s.column.len();
        for query in graph.queries.values() {
            outputs += query.outputs.len();
            cref += query.cref.len();
            tables += query.tables.len();
            name_bytes += query.id.len();
            for out in &query.outputs {
                ccon += out.ccon.len();
                name_bytes += 5 * out.name.len();
                name_bytes += out.ccon.iter().map(source_bytes).sum::<usize>();
            }
            name_bytes += 7 * query.cref.iter().map(source_bytes).sum::<usize>();
            name_bytes += 11 * query.tables.iter().map(String::len).sum::<usize>();
        }
        for node in graph.nodes.values() {
            name_bytes += 13 * node.name.len();
            name_bytes += 17 * node.columns.iter().map(String::len).sum::<usize>();
        }
        GraphFingerprint {
            relations: graph.nodes.len(),
            node_columns: graph.nodes.values().map(|n| n.columns.len()).sum(),
            queries: graph.queries.len(),
            order: graph.order.len(),
            outputs,
            ccon,
            cref,
            tables,
            name_bytes,
        }
    }
}

/// How a cached index is validated against the current graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheKey {
    /// Content-derived (counts + name-byte sums): the batch backend's
    /// safety net, `O(entries)` to recheck.
    Fingerprint(GraphFingerprint),
    /// Caller-managed revision: `O(1)` hits for backends that bump the
    /// revision on every graph mutation (the session engine does,
    /// alongside its dirty-cone bookkeeping).
    Revision(u64),
}

/// Build-once storage for a [`GraphIndex`]: the first
/// [`GraphIndexCache::get_or_build`] (or
/// [`GraphIndexCache::get_or_build_at`]) after a (re)settle pays the
/// build, every further query is a clone of the shared [`Arc`].
#[derive(Debug, Clone, Default)]
pub struct GraphIndexCache {
    slot: Option<(CacheKey, Arc<GraphIndex>)>,
}

impl GraphIndexCache {
    /// An empty cache.
    pub fn new() -> Self {
        GraphIndexCache::default()
    }

    /// The cached index for `graph`, building (and storing) it when the
    /// cache is empty or the graph's fingerprint changed. Rechecking the
    /// fingerprint walks the graph's entry counts on every call; a
    /// backend that tracks its own mutations should prefer
    /// [`GraphIndexCache::get_or_build_at`].
    pub fn get_or_build(&mut self, graph: &LineageGraph) -> Arc<GraphIndex> {
        self.lookup(CacheKey::Fingerprint(GraphFingerprint::of(graph)), graph)
    }

    /// The cached index for `graph` at a caller-managed `revision`: a
    /// hit is one integer compare, no graph walk. The caller owns
    /// correctness — it must bump `revision` (or
    /// [`GraphIndexCache::invalidate`]) whenever the graph mutates.
    pub fn get_or_build_at(&mut self, revision: u64, graph: &LineageGraph) -> Arc<GraphIndex> {
        self.lookup(CacheKey::Revision(revision), graph)
    }

    fn lookup(&mut self, key: CacheKey, graph: &LineageGraph) -> Arc<GraphIndex> {
        if let Some((cached, index)) = &self.slot {
            if *cached == key {
                return Arc::clone(index);
            }
        }
        let index = Arc::new(GraphIndex::build(graph));
        self.slot = Some((key, Arc::clone(&index)));
        index
    }

    /// Drop the cached index (the graph changed, or is about to).
    pub fn invalidate(&mut self) {
        self.slot = None;
    }

    /// Seed the cache with a pre-built index at a caller-managed
    /// revision, e.g. one deserialised from a snapshot: the next
    /// [`GraphIndexCache::get_or_build_at`] at that revision is a hit
    /// instead of a rebuild.
    pub fn prime_at(&mut self, revision: u64, index: Arc<GraphIndex>) {
        self.slot = Some((CacheKey::Revision(revision), index));
    }

    /// Whether an index is currently cached.
    pub fn is_cached(&self) -> bool {
        self.slot.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::lineagex;
    use crate::model::Edge;

    fn graph() -> LineageGraph {
        lineagex(
            "CREATE TABLE base (a int, k int);
             CREATE VIEW mid AS SELECT a AS b FROM base WHERE k > 0;
             CREATE VIEW top AS SELECT b AS c FROM mid;",
        )
        .unwrap()
        .graph
    }

    #[test]
    fn interner_dedups_and_resolves() {
        let mut interner = Interner::new();
        assert!(interner.is_empty());
        let a = interner.intern("web");
        let b = interner.intern("page");
        assert_ne!(a, b);
        assert_eq!(interner.intern("web"), a);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), "web");
        assert_eq!(interner.get("page"), Some(b));
        assert_eq!(interner.get("ghost"), None);
    }

    #[test]
    fn ids_follow_lexicographic_order() {
        let index = GraphIndex::build(&graph());
        // Relations sorted by name; columns sorted by (table, column).
        let names: Vec<&str> = (0..index.relation_count())
            .map(|i| index.relation_name(RelationId(i as u32)))
            .collect();
        assert_eq!(names, vec!["base", "mid", "top"]);
        let cols: Vec<String> = (0..index.column_count())
            .map(|i| index.source_column(ColumnId(i as u32)).to_string())
            .collect();
        assert_eq!(cols, vec!["base.a", "base.k", "mid.b", "top.c"]);
    }

    #[test]
    fn lookups_round_trip() {
        let index = GraphIndex::build(&graph());
        let mid = index.lookup_relation("mid").unwrap();
        assert_eq!(index.relation_name(mid), "mid");
        assert_eq!(index.relation_kind(mid), Some(NodeKind::View));
        let col = index.lookup_column("mid", "b").unwrap();
        assert_eq!(index.column_relation(col), mid);
        assert_eq!(index.column_name(col), "b");
        assert_eq!(index.source_column(col), SourceColumn::new("mid", "b"));
        assert!(index.lookup_column("mid", "ghost").is_none());
        assert!(index.lookup_column("ghost", "b").is_none());
        assert!(index.lookup_relation("ghost").is_none());
        // A column name that never names a relation is not a relation.
        assert!(index.lookup_relation("b").is_none());
    }

    #[test]
    fn adjacency_matches_the_merged_edge_set() {
        let g = graph();
        let index = GraphIndex::build(&g);
        // Rebuild the edge list from the forward CSR and compare with
        // the string-world enumeration.
        let mut from_index: Vec<Edge> = Vec::new();
        for i in 0..index.column_count() {
            let from = ColumnId(i as u32);
            for &(to, kind) in index.out_edges(from) {
                from_index.push(Edge {
                    from: index.source_column(from),
                    to: index.source_column(ColumnId(to)),
                    kind,
                });
            }
        }
        assert_eq!(from_index, g.all_edges());
        assert_eq!(index.edge_count(), g.all_edges().len());
        // The reverse CSR carries the same edges, keyed by target.
        let mut from_rev: Vec<Edge> = Vec::new();
        for i in 0..index.column_count() {
            let to = ColumnId(i as u32);
            for &(from, kind) in index.in_edges(to) {
                from_rev.push(Edge {
                    from: index.source_column(ColumnId(from)),
                    to: index.source_column(to),
                    kind,
                });
            }
        }
        from_rev.sort();
        assert_eq!(from_rev, g.all_edges());
    }

    #[test]
    fn table_adjacency_matches_table_edges() {
        let g = graph();
        let index = GraphIndex::build(&g);
        let mut pairs: Vec<(String, String)> = Vec::new();
        for i in 0..index.relation_count() {
            let from = RelationId(i as u32);
            for &(to, _) in index.table_out(from) {
                pairs.push((
                    index.relation_name(from).to_string(),
                    index.relation_name(RelationId(to)).to_string(),
                ));
            }
        }
        pairs.sort();
        assert_eq!(pairs, g.table_edges());
        // Reverse rows mirror the forward rows.
        let mid = index.lookup_relation("mid").unwrap();
        let upstream: Vec<&str> =
            index.table_in(mid).iter().map(|&(r, _)| index.relation_name(RelationId(r))).collect();
        assert_eq!(upstream, vec!["base"]);
    }

    #[test]
    fn declared_order_is_preserved() {
        // Node order (a, k) survives even though nothing else does —
        // subgraph slices render columns in declared order.
        let index = GraphIndex::build(&graph());
        let base = index.lookup_relation("base").unwrap();
        let declared: Vec<&str> =
            index.declared_columns(base).iter().map(|&c| index.column_name(c)).collect();
        assert_eq!(declared, vec!["a", "k"]);
    }

    #[test]
    fn cache_reuses_until_the_graph_changes() {
        let mut g = graph();
        let mut cache = GraphIndexCache::new();
        assert!(!cache.is_cached());
        let first = cache.get_or_build(&g);
        let second = cache.get_or_build(&g);
        assert!(Arc::ptr_eq(&first, &second), "unchanged graph must reuse the index");
        // A structural change (retract one query) rebuilds.
        g.retract_query("top").unwrap();
        let third = cache.get_or_build(&g);
        assert!(!Arc::ptr_eq(&first, &third), "changed graph must rebuild");
        assert_eq!(third.lookup_relation("top"), None);
        // Explicit invalidation always rebuilds.
        cache.invalidate();
        assert!(!cache.is_cached());
        let fourth = cache.get_or_build(&g);
        assert!(!Arc::ptr_eq(&third, &fourth));
    }

    #[test]
    fn revision_keyed_cache_hits_without_walking_the_graph() {
        let mut g = graph();
        let mut cache = GraphIndexCache::new();
        let first = cache.get_or_build_at(7, &g);
        let second = cache.get_or_build_at(7, &g);
        assert!(Arc::ptr_eq(&first, &second), "same revision must reuse");
        // A bumped revision rebuilds even though the graph is unchanged:
        // the caller's revision is authoritative, not the content.
        let third = cache.get_or_build_at(8, &g);
        assert!(!Arc::ptr_eq(&first, &third));
        // And the revision key really is trusted: an in-place edit with
        // an unchanged revision keeps serving the cached index (why
        // revision-bumping callers must cover every mutation).
        g.retract_query("top").unwrap();
        let stale = cache.get_or_build_at(8, &g);
        assert!(Arc::ptr_eq(&third, &stale));
        // Mixing validation modes never false-hits: a fingerprint query
        // against a revision-keyed slot rebuilds.
        let fresh = cache.get_or_build(&g);
        assert!(!Arc::ptr_eq(&third, &fresh));
        assert!(fresh.lookup_relation("top").is_none());
    }

    #[test]
    fn cache_detects_in_place_source_swaps() {
        // Counts alone would miss this edit: one contribute source is
        // swapped for another (same cardinality everywhere). The
        // name-byte component of the fingerprint catches any swap that
        // changes a name's length; equal-length swaps remain the
        // documented reason in-place mutators must invalidate manually.
        let mut g = graph();
        let mut cache = GraphIndexCache::new();
        let first = cache.get_or_build(&g);
        let out = &mut g.queries.get_mut("mid").unwrap().outputs[0];
        out.ccon.clear();
        out.ccon.insert(SourceColumn::new("base", "a_renamed"));
        let second = cache.get_or_build(&g);
        assert!(!Arc::ptr_eq(&first, &second), "a length-changing swap must rebuild");
        assert!(second.lookup_column("base", "a_renamed").is_some());
    }

    #[test]
    fn raw_round_trip_preserves_the_index() {
        let g = graph();
        let index = GraphIndex::build(&g);
        let rebuilt = GraphIndex::from_raw(index.to_raw());
        assert_eq!(rebuilt.column_count(), index.column_count());
        assert_eq!(rebuilt.relation_count(), index.relation_count());
        assert_eq!(rebuilt.edge_count(), index.edge_count());
        for i in 0..index.column_count() {
            let col = ColumnId(i as u32);
            assert_eq!(rebuilt.source_column(col), index.source_column(col));
            assert_eq!(rebuilt.out_edges(col), index.out_edges(col));
            assert_eq!(rebuilt.in_edges(col), index.in_edges(col));
        }
        for i in 0..index.relation_count() {
            let rel = RelationId(i as u32);
            assert_eq!(rebuilt.relation_name(rel), index.relation_name(rel));
            assert_eq!(rebuilt.relation_kind(rel), index.relation_kind(rel));
            assert_eq!(rebuilt.declared_columns(rel), index.declared_columns(rel));
            assert_eq!(rebuilt.table_out(rel), index.table_out(rel));
            assert_eq!(rebuilt.table_in(rel), index.table_in(rel));
        }
        // Lookups go through the rebuilt interner's hash table.
        assert_eq!(rebuilt.lookup_relation("mid"), index.lookup_relation("mid"));
        assert_eq!(rebuilt.lookup_column("mid", "b"), index.lookup_column("mid", "b"));
        assert!(rebuilt.approx_bytes() > 0);
    }

    #[test]
    fn primed_cache_serves_the_seeded_index() {
        let g = graph();
        let index = Arc::new(GraphIndex::build(&g));
        let mut cache = GraphIndexCache::new();
        cache.prime_at(42, Arc::clone(&index));
        assert!(cache.is_cached());
        let served = cache.get_or_build_at(42, &g);
        assert!(Arc::ptr_eq(&served, &index), "a primed revision must hit");
        let rebuilt = cache.get_or_build_at(43, &g);
        assert!(!Arc::ptr_eq(&rebuilt, &index), "a later revision rebuilds");
    }

    #[test]
    fn empty_graph_indexes_cleanly() {
        let index = GraphIndex::build(&LineageGraph::default());
        assert_eq!(index.column_count(), 0);
        assert_eq!(index.relation_count(), 0);
        assert_eq!(index.edge_count(), 0);
        assert!(index.lookup_relation("anything").is_none());
    }
}
