//! Ground-truth lineage records and scoring helpers.

use lineagex_core::{LineageGraph, SourceColumn};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// The expected lineage of one workload, in the same vocabulary as
/// [`lineagex_core::QueryLineage`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct GroundTruth {
    /// Per query id: output column → expected `C_con` sources.
    pub ccon: BTreeMap<String, BTreeMap<String, BTreeSet<SourceColumn>>>,
    /// Per query id: expected `C_ref`.
    pub cref: BTreeMap<String, BTreeSet<SourceColumn>>,
    /// Per query id: expected table lineage `T`.
    pub tables: BTreeMap<String, BTreeSet<String>>,
}

impl GroundTruth {
    /// Add one expected output column.
    pub fn expect_ccon(&mut self, query: &str, output: &str, sources: &[(&str, &str)]) {
        self.ccon.entry(query.to_string()).or_default().insert(
            output.to_string(),
            sources.iter().map(|(t, c)| SourceColumn::new(*t, *c)).collect(),
        );
    }

    /// Add expected referenced columns for a query.
    pub fn expect_cref(&mut self, query: &str, sources: &[(&str, &str)]) {
        self.cref
            .entry(query.to_string())
            .or_default()
            .extend(sources.iter().map(|(t, c)| SourceColumn::new(*t, *c)));
    }

    /// Add expected table lineage for a query.
    pub fn expect_tables(&mut self, query: &str, tables: &[&str]) {
        self.tables
            .entry(query.to_string())
            .or_default()
            .extend(tables.iter().map(|t| t.to_string()));
    }

    /// The expected contribute-edge set, for edge-level scoring.
    pub fn contribute_edges(&self) -> BTreeSet<(SourceColumn, SourceColumn)> {
        let mut out = BTreeSet::new();
        for (query, cols) in &self.ccon {
            for (output, sources) in cols {
                for src in sources {
                    out.insert((src.clone(), SourceColumn::new(query, output)));
                }
            }
        }
        out
    }

    /// Compare a graph against this ground truth, returning per-aspect
    /// exact-match failures (empty = perfect).
    pub fn diff(&self, graph: &LineageGraph) -> Vec<String> {
        let mut failures = Vec::new();
        for (query, expected_cols) in &self.ccon {
            let Some(actual) = graph.queries.get(query) else {
                failures.push(format!("missing query {query}"));
                continue;
            };
            let actual_cols: BTreeMap<&str, &BTreeSet<SourceColumn>> =
                actual.outputs.iter().map(|o| (o.name.as_str(), &o.ccon)).collect();
            if actual.outputs.len() != expected_cols.len() {
                failures.push(format!(
                    "{query}: expected {} outputs, found {} ({:?})",
                    expected_cols.len(),
                    actual.outputs.len(),
                    actual.output_names(),
                ));
            }
            for (output, expected) in expected_cols {
                match actual_cols.get(output.as_str()) {
                    None => failures.push(format!("{query}.{output}: output missing")),
                    Some(actual) if *actual != expected => failures.push(format!(
                        "{query}.{output}: C_con mismatch\n  expected {expected:?}\n  actual   {actual:?}"
                    )),
                    _ => {}
                }
            }
        }
        for (query, expected) in &self.cref {
            if let Some(actual) = graph.queries.get(query) {
                if &actual.cref != expected {
                    failures.push(format!(
                        "{query}: C_ref mismatch\n  expected {expected:?}\n  actual   {:?}",
                        actual.cref
                    ));
                }
            }
        }
        for (query, expected) in &self.tables {
            if let Some(actual) = graph.queries.get(query) {
                if &actual.tables != expected {
                    failures.push(format!(
                        "{query}: table lineage mismatch\n  expected {expected:?}\n  actual   {:?}",
                        actual.tables
                    ));
                }
            }
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::lineagex;

    #[test]
    fn diff_reports_perfect_match_as_empty() {
        let result = lineagex(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t WHERE b = 1;",
        )
        .unwrap();
        let mut gt = GroundTruth::default();
        gt.expect_ccon("v", "a", &[("t", "a")]);
        gt.expect_cref("v", &[("t", "b")]);
        gt.expect_tables("v", &["t"]);
        assert!(gt.diff(&result.graph).is_empty());
    }

    #[test]
    fn diff_detects_mismatches() {
        let result = lineagex(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t;",
        )
        .unwrap();
        let mut gt = GroundTruth::default();
        gt.expect_ccon("v", "a", &[("t", "b")]); // wrong on purpose
        let failures = gt.diff(&result.graph);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("C_con mismatch"));
    }

    #[test]
    fn contribute_edges_enumerate() {
        let mut gt = GroundTruth::default();
        gt.expect_ccon("v", "x", &[("t", "a"), ("t", "b")]);
        assert_eq!(gt.contribute_edges().len(), 2);
    }
}
