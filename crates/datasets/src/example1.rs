//! The paper's running example (Example 1): an online shop with a
//! three-view pipeline over `customers`, `orders`, and `web`.
//!
//! The query log lists Q1 (`info`) *before* its dependencies Q2
//! (`webact`) and Q3 (`webinfo`), exactly as printed in the paper, so
//! extracting it exercises the table/view auto-inference stack; and Q1's
//! `w.*` over a set-operation view is the case Fig. 2 shows prior tools
//! getting wrong.

use crate::groundtruth::GroundTruth;

/// Base-table DDL for the online shop.
pub const DDL: &str = "
CREATE TABLE customers (cid int, name text, age int);
CREATE TABLE orders (oid int, cid int, odate date, amount numeric(10, 2));
CREATE TABLE web (cid int, date date, page text, reg boolean);
";

/// Q1–Q3 exactly as in the paper (Example 1).
pub const QUERIES: &str = "
CREATE VIEW info AS
SELECT c.name, c.age, o.oid, w.*
FROM customers c JOIN orders o ON c.cid = o.cid
JOIN webact w ON c.cid = w.wcid;

CREATE VIEW webact AS
SELECT w.wcid, w.wdate, w.wpage, w.wreg
FROM webinfo w
INTERSECT
SELECT w1.cid, w1.date, w1.page, w1.reg
FROM web w1;

CREATE VIEW webinfo AS
SELECT c.cid AS wcid, w.date AS wdate,
       w.page AS wpage, w.reg AS wreg
FROM customers c JOIN web w ON c.cid = w.cid
WHERE EXTRACT(YEAR FROM w.date) = 2022;
";

/// The full log: DDL then queries, as a data-warehouse query log would
/// contain.
pub fn full_log() -> String {
    format!("{DDL}\n{QUERIES}")
}

/// The ground-truth lineage — the "yellow" correct edges of Fig. 2.
pub fn ground_truth() -> GroundTruth {
    let mut gt = GroundTruth::default();

    // Q3: webinfo.
    gt.expect_ccon("webinfo", "wcid", &[("customers", "cid")]);
    gt.expect_ccon("webinfo", "wdate", &[("web", "date")]);
    gt.expect_ccon("webinfo", "wpage", &[("web", "page")]);
    gt.expect_ccon("webinfo", "wreg", &[("web", "reg")]);
    gt.expect_cref("webinfo", &[("customers", "cid"), ("web", "cid"), ("web", "date")]);
    gt.expect_tables("webinfo", &["customers", "web"]);

    // Q2: webact = webinfo INTERSECT web (positional merge).
    gt.expect_ccon("webact", "wcid", &[("webinfo", "wcid"), ("web", "cid")]);
    gt.expect_ccon("webact", "wdate", &[("webinfo", "wdate"), ("web", "date")]);
    gt.expect_ccon("webact", "wpage", &[("webinfo", "wpage"), ("web", "page")]);
    gt.expect_ccon("webact", "wreg", &[("webinfo", "wreg"), ("web", "reg")]);
    // Set-operation rule: every branch projection column is referenced.
    gt.expect_cref(
        "webact",
        &[
            ("webinfo", "wcid"),
            ("webinfo", "wdate"),
            ("webinfo", "wpage"),
            ("webinfo", "wreg"),
            ("web", "cid"),
            ("web", "date"),
            ("web", "page"),
            ("web", "reg"),
        ],
    );
    gt.expect_tables("webact", &["webinfo", "web"]);

    // Q1: info — w.* must expand to webact's four columns (the case prior
    // tools miss).
    gt.expect_ccon("info", "name", &[("customers", "name")]);
    gt.expect_ccon("info", "age", &[("customers", "age")]);
    gt.expect_ccon("info", "oid", &[("orders", "oid")]);
    gt.expect_ccon("info", "wcid", &[("webact", "wcid")]);
    gt.expect_ccon("info", "wdate", &[("webact", "wdate")]);
    gt.expect_ccon("info", "wpage", &[("webact", "wpage")]);
    gt.expect_ccon("info", "wreg", &[("webact", "wreg")]);
    gt.expect_cref("info", &[("customers", "cid"), ("orders", "cid"), ("webact", "wcid")]);
    gt.expect_tables("info", &["customers", "orders", "webact"]);

    gt
}

/// The expected impact of editing `web.page` (paper §IV, step 4):
/// `webinfo.wpage` plus **all** columns of `webact` and `info`.
pub fn expected_page_impact() -> Vec<(&'static str, &'static str)> {
    vec![
        ("webinfo", "wpage"),
        ("webact", "wcid"),
        ("webact", "wdate"),
        ("webact", "wpage"),
        ("webact", "wreg"),
        ("info", "name"),
        ("info", "age"),
        ("info", "oid"),
        ("info", "wcid"),
        ("info", "wdate"),
        ("info", "wpage"),
        ("info", "wreg"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::{lineagex, SourceColumn};

    #[test]
    fn example1_matches_ground_truth_exactly() {
        let result = lineagex(&full_log()).unwrap();
        let failures = ground_truth().diff(&result.graph);
        assert!(failures.is_empty(), "ground-truth mismatches:\n{}", failures.join("\n"));
    }

    #[test]
    fn auto_inference_stack_fires_in_paper_order() {
        let result = lineagex(&full_log()).unwrap();
        // Q1 deferred on webact, webact deferred on webinfo (LIFO).
        assert_eq!(
            result.deferrals,
            vec![
                ("info".to_string(), "webact".to_string()),
                ("webact".to_string(), "webinfo".to_string()),
            ]
        );
        assert_eq!(result.graph.order, vec!["webinfo", "webact", "info"]);
    }

    #[test]
    fn page_impact_matches_paper_step4() {
        let result = lineagex(&full_log()).unwrap();
        let report = result.impact_of("web", "page");
        let expected: std::collections::BTreeSet<SourceColumn> =
            expected_page_impact().into_iter().map(|(t, c)| SourceColumn::new(t, c)).collect();
        let actual: std::collections::BTreeSet<SourceColumn> =
            report.impacted().iter().map(|c| c.column.clone()).collect();
        assert_eq!(actual, expected, "impact set diverges from the paper's step 4");
    }

    #[test]
    fn wpage_is_contributed_and_others_referenced_in_webact() {
        use lineagex_core::EdgeKind;
        let result = lineagex(&full_log()).unwrap();
        let report = result.impact_of("web", "page");
        let kind_of = |t: &str, c: &str| {
            report.impacted().iter().find(|i| i.column == SourceColumn::new(t, c)).map(|i| i.kind)
        };
        // web.page contributes to webact.wpage AND is referenced → Both.
        assert_eq!(kind_of("webact", "wpage"), Some(EdgeKind::Both));
        // Sibling columns are impacted only through the reference.
        assert_eq!(kind_of("webact", "wcid"), Some(EdgeKind::Reference));
        assert_eq!(kind_of("webinfo", "wpage"), Some(EdgeKind::Contribute));
        // info.wpage is reached at distance 2 both by contribution
        // (webact.wpage) and by reference (webact.wcid in the join) → the
        // merged kind is Both, the paper's orange colouring.
        assert_eq!(kind_of("info", "wpage"), Some(EdgeKind::Both));
        assert_eq!(kind_of("info", "oid"), Some(EdgeKind::Reference));
    }
}
