//! A seeded random view-pipeline generator with exact ground truth.
//!
//! Views are built *from a lineage plan* — the generator first chooses
//! sources, projections, predicates, and set operations, records the
//! expected `C_con`/`C_ref`/`T` for each choice, and only then renders the
//! SQL. Extracted lineage can therefore be scored exactly, for any seed,
//! which powers the accuracy sweeps and the property tests.

use crate::groundtruth::GroundTruth;
use lineagex_core::DialectKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Knobs controlling workload shape. Probabilities are in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
    /// Number of base tables.
    pub base_tables: usize,
    /// Columns per base table (inclusive range).
    pub columns_per_table: (usize, usize),
    /// Number of views to generate.
    pub views: usize,
    /// Maximum relations joined per view (≥ 1).
    pub max_sources: usize,
    /// Probability a single-source view projects `SELECT *`.
    pub star_probability: f64,
    /// Probability a view is a set operation of two branches.
    pub setop_probability: f64,
    /// Probability a view routes through a CTE.
    pub cte_probability: f64,
    /// Probability a column reference drops its table prefix (only applied
    /// when the name is unambiguous in scope).
    pub unqualified_probability: f64,
    /// Probability of a `WHERE` predicate.
    pub where_probability: f64,
    /// Probability a projection is an expression over two columns.
    pub expr_probability: f64,
    /// Probability of a `GROUP BY` + aggregate view.
    pub group_by_probability: f64,
    /// Emit the `CREATE VIEW` statements in reverse dependency order, so
    /// extraction must use the auto-inference stack.
    pub shuffle_statements: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 42,
            base_tables: 5,
            columns_per_table: (3, 6),
            views: 10,
            max_sources: 3,
            star_probability: 0.2,
            setop_probability: 0.15,
            cte_probability: 0.15,
            unqualified_probability: 0.3,
            where_probability: 0.6,
            expr_probability: 0.25,
            group_by_probability: 0.15,
            shuffle_statements: false,
        }
    }
}

impl GeneratorConfig {
    /// A config with the given seed and defaults elsewhere.
    pub fn seeded(seed: u64) -> Self {
        GeneratorConfig { seed, ..Default::default() }
    }
}

/// A generated workload: SQL plus exact expected lineage.
#[derive(Debug, Clone)]
pub struct PipelineWorkload {
    /// Base-table DDL.
    pub ddl: String,
    /// `CREATE VIEW` statements in emission order.
    pub view_statements: Vec<String>,
    /// The exact expected lineage.
    pub ground_truth: GroundTruth,
    /// Names of all generated views in dependency order.
    pub view_names: Vec<String>,
}

impl PipelineWorkload {
    /// The full log (DDL + views) as one script.
    pub fn full_sql(&self) -> String {
        let mut out = self.ddl.clone();
        for stmt in &self.view_statements {
            out.push('\n');
            out.push_str(stmt);
            out.push(';');
        }
        out
    }

    /// Total number of statements (DDL + views).
    pub fn statement_count(&self) -> usize {
        self.ddl.matches(';').count() + self.view_statements.len()
    }

    /// The full log rendered as a native script for a dialect.
    ///
    /// The generator emits only the ANSI core surface, which every
    /// dialect shares, so the statements are reused verbatim; each gets
    /// a banner comment in the dialect's native line-comment style
    /// (`#` for BigQuery, `//` for Snowflake, `--` elsewhere). The log
    /// therefore exercises the dialect's lexer front end while its
    /// ground truth stays exactly [`PipelineWorkload::ground_truth`] —
    /// which is what makes it useful for dialect-equivalence tests.
    pub fn full_sql_for(&self, dialect: DialectKind) -> String {
        let marker = match dialect {
            DialectKind::BigQuery => "#",
            DialectKind::Snowflake => "//",
            _ => "--",
        };
        format!(
            "{marker} generated workload, {} dialect surface\n{}",
            dialect.name(),
            self.full_sql()
        )
    }
}

/// One relation available as a source: a base table or an earlier view.
#[derive(Debug, Clone)]
struct RelInfo {
    name: String,
    columns: Vec<String>,
}

const TABLE_POOL: &[&str] = &[
    "customers",
    "orders",
    "events",
    "sessions",
    "payments",
    "products",
    "clicks",
    "shipments",
    "reviews",
    "inventory",
    "stores",
    "devices",
    "visits",
    "carts",
    "refunds",
    "coupons",
];

/// Generate a workload from a config.
pub fn generate(config: &GeneratorConfig) -> PipelineWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gt = GroundTruth::default();
    let mut pool: Vec<RelInfo> = Vec::new();

    // Base tables: globally-unique column names ("{table}_cN") plus a
    // shared "id" column for joins (always referenced qualified).
    let mut ddl = String::new();
    for i in 0..config.base_tables {
        let base_name = TABLE_POOL[i % TABLE_POOL.len()];
        let name =
            if i < TABLE_POOL.len() { base_name.to_string() } else { format!("{base_name}_{i}") };
        let ncols = rng.gen_range(config.columns_per_table.0..=config.columns_per_table.1);
        let mut columns = vec!["id".to_string()];
        for c in 0..ncols {
            columns.push(format!("{name}_c{c}"));
        }
        ddl.push_str(&format!(
            "CREATE TABLE {name} ({});\n",
            columns.iter().map(|c| format!("{c} int")).collect::<Vec<_>>().join(", ")
        ));
        pool.push(RelInfo { name, columns });
    }

    let mut view_statements = Vec::new();
    let mut view_names = Vec::new();
    for v in 0..config.views {
        let name = format!("view_{v}");
        let (sql, outputs) = if rng.gen_bool(config.setop_probability) && pool.len() >= 2 {
            generate_setop_view(&name, &pool, &mut rng, &mut gt)
        } else if rng.gen_bool(config.cte_probability) {
            generate_cte_view(&name, &pool, &mut rng, &mut gt, config)
        } else {
            generate_plain_view(&name, &pool, &mut rng, &mut gt, config)
        };
        view_statements.push(sql);
        view_names.push(name.clone());
        pool.push(RelInfo { name, columns: outputs });
    }

    if config.shuffle_statements {
        view_statements.reverse();
    }

    PipelineWorkload { ddl, view_statements, ground_truth: gt, view_names }
}

/// Pick `n` distinct sources from the pool.
fn pick_sources<'a>(pool: &'a [RelInfo], n: usize, rng: &mut StdRng) -> Vec<&'a RelInfo> {
    let mut indexes: Vec<usize> = (0..pool.len()).collect();
    indexes.shuffle(rng);
    indexes.truncate(n.min(pool.len()));
    indexes.into_iter().map(|i| &pool[i]).collect()
}

/// Non-`id` columns of a relation (globally unique names).
fn unique_cols(rel: &RelInfo) -> Vec<&str> {
    rel.columns.iter().filter(|c| *c != "id").map(|s| s.as_str()).collect()
}

/// A plain (optionally multi-join, star, aggregate) view.
fn generate_plain_view(
    name: &str,
    pool: &[RelInfo],
    rng: &mut StdRng,
    gt: &mut GroundTruth,
    config: &GeneratorConfig,
) -> (String, Vec<String>) {
    let n_sources = rng.gen_range(1..=config.max_sources.max(1)).min(pool.len());
    let sources = pick_sources(pool, n_sources, rng);
    let aliases: Vec<String> = (0..sources.len()).map(|i| format!("s{i}")).collect();

    let mut sql = format!("CREATE VIEW {name} AS SELECT ");
    let mut outputs: Vec<String> = Vec::new();

    // Star view: single source only (keeps output names collision-free).
    if sources.len() == 1 && rng.gen_bool(config.star_probability) {
        let src = sources[0];
        sql.push_str(&format!("* FROM {} AS s0", src.name));
        for col in &src.columns {
            gt.expect_ccon(name, col, &[(&src.name, col)]);
            outputs.push(col.clone());
        }
        gt.expect_tables(name, &[src.name.as_str()]);
        maybe_where(&mut sql, name, src, &aliases[0], rng, gt, config);
        return (sql, outputs);
    }

    // Aggregate view: single source, one key + count(*).
    if rng.gen_bool(config.group_by_probability) {
        let src = sources[0];
        let cols = unique_cols(src);
        let key = cols[rng.gen_range(0..cols.len())];
        let key_out = format!("{name}_o0");
        let cnt_out = format!("{name}_cnt");
        sql.push_str(&format!(
            "s0.{key} AS {key_out}, count(*) AS {cnt_out} FROM {} AS s0 GROUP BY s0.{key}",
            src.name
        ));
        gt.expect_ccon(name, &key_out, &[(&src.name, key)]);
        gt.expect_ccon(name, &cnt_out, &[]);
        gt.expect_cref(name, &[(&src.name, key)]);
        gt.expect_tables(name, &[src.name.as_str()]);
        return (sql, vec![key_out, cnt_out]);
    }

    let n_proj = rng.gen_range(2..=4usize);
    let mut proj_sql: Vec<String> = Vec::new();
    for j in 0..n_proj {
        let si = rng.gen_range(0..sources.len());
        let src = sources[si];
        let alias = &aliases[si];
        let cols = unique_cols(src);
        if cols.is_empty() {
            continue;
        }
        let out_name = format!("{name}_o{j}");
        if rng.gen_bool(config.expr_probability) && cols.len() >= 2 {
            let c1 = cols[rng.gen_range(0..cols.len())];
            let c2 = cols[rng.gen_range(0..cols.len())];
            proj_sql.push(format!("{alias}.{c1} + {alias}.{c2} AS {out_name}"));
            gt.expect_ccon(name, &out_name, &[(&src.name, c1), (&src.name, c2)]);
        } else {
            let col = cols[rng.gen_range(0..cols.len())];
            let unambiguous =
                sources.iter().filter(|s| s.columns.iter().any(|c| c == col)).count() == 1;
            let reference = if unambiguous && rng.gen_bool(config.unqualified_probability) {
                col.to_string()
            } else {
                format!("{alias}.{col}")
            };
            proj_sql.push(format!("{reference} AS {out_name}"));
            gt.expect_ccon(name, &out_name, &[(&src.name, col)]);
        }
        outputs.push(out_name);
    }

    sql.push_str(&proj_sql.join(", "));
    sql.push_str(&format!(" FROM {} AS {}", sources[0].name, aliases[0]));
    for i in 1..sources.len() {
        let left_i = rng.gen_range(0..i);
        let lcol = sources[left_i].columns[rng.gen_range(0..sources[left_i].columns.len())].clone();
        let rcol = sources[i].columns[rng.gen_range(0..sources[i].columns.len())].clone();
        let join_kind = ["JOIN", "LEFT JOIN", "INNER JOIN"][rng.gen_range(0..3)];
        sql.push_str(&format!(
            " {join_kind} {} AS {} ON {}.{} = {}.{}",
            sources[i].name, aliases[i], aliases[left_i], lcol, aliases[i], rcol
        ));
        gt.expect_cref(name, &[(&sources[left_i].name, &lcol), (&sources[i].name, &rcol)]);
    }
    gt.expect_tables(name, &sources.iter().map(|s| s.name.as_str()).collect::<Vec<_>>());
    let wi = rng.gen_range(0..sources.len());
    maybe_where(&mut sql, name, sources[wi], &aliases[wi], rng, gt, config);
    (sql, outputs)
}

/// Maybe append a WHERE predicate over one source column.
fn maybe_where(
    sql: &mut String,
    view: &str,
    src: &RelInfo,
    alias: &str,
    rng: &mut StdRng,
    gt: &mut GroundTruth,
    config: &GeneratorConfig,
) {
    if !rng.gen_bool(config.where_probability) {
        return;
    }
    let col = &src.columns[rng.gen_range(0..src.columns.len())];
    match rng.gen_range(0..3) {
        0 => sql.push_str(&format!(" WHERE {alias}.{col} > 0")),
        1 => sql.push_str(&format!(" WHERE {alias}.{col} BETWEEN 1 AND 100")),
        _ => sql.push_str(&format!(" WHERE {alias}.{col} IS NOT NULL")),
    }
    gt.expect_cref(view, &[(&src.name, col)]);
}

/// A set-operation view: two single-source branches, positionally merged.
fn generate_setop_view(
    name: &str,
    pool: &[RelInfo],
    rng: &mut StdRng,
    gt: &mut GroundTruth,
) -> (String, Vec<String>) {
    let sources = pick_sources(pool, 2, rng);
    let (a, b) = (sources[0], sources[1]);
    let a_cols = unique_cols(a);
    let b_cols = unique_cols(b);
    let width = a_cols.len().min(b_cols.len()).clamp(1, 3);
    let op = ["UNION", "UNION ALL", "INTERSECT", "EXCEPT"][rng.gen_range(0..4)];

    let mut left_proj = Vec::new();
    let mut right_proj = Vec::new();
    let mut outputs = Vec::new();
    for j in 0..width {
        let out_name = format!("{name}_o{j}");
        let ac = a_cols[j % a_cols.len()];
        let bc = b_cols[j % b_cols.len()];
        left_proj.push(format!("l.{ac} AS {out_name}"));
        right_proj.push(format!("r.{bc}"));
        gt.expect_ccon(name, &out_name, &[(&a.name, ac), (&b.name, bc)]);
        // Set-operation rule: both branch projections are referenced.
        gt.expect_cref(name, &[(&a.name, ac), (&b.name, bc)]);
        outputs.push(out_name);
    }
    gt.expect_tables(name, &[a.name.as_str(), b.name.as_str()]);

    let sql = format!(
        "CREATE VIEW {name} AS SELECT {} FROM {} AS l {op} SELECT {} FROM {} AS r",
        left_proj.join(", "),
        a.name,
        right_proj.join(", "),
        b.name
    );
    (sql, outputs)
}

/// A view routed through a CTE (composed-through intermediate).
fn generate_cte_view(
    name: &str,
    pool: &[RelInfo],
    rng: &mut StdRng,
    gt: &mut GroundTruth,
    config: &GeneratorConfig,
) -> (String, Vec<String>) {
    let src = pick_sources(pool, 1, rng)[0];
    let cols = unique_cols(src);
    let width = cols.len().clamp(1, 3);
    let mut inner_proj = Vec::new();
    let mut cte_cols: Vec<(String, String)> = Vec::new(); // (cte col, src col)
    for j in 0..width {
        let col = cols[j % cols.len()];
        let cte_col = format!("k{j}");
        inner_proj.push(format!("t.{col} AS {cte_col}"));
        cte_cols.push((cte_col, col.to_string()));
    }
    let take = rng.gen_range(1..=cte_cols.len());
    let mut outer_proj = Vec::new();
    let mut outputs = Vec::new();
    for (j, (cte_col, src_col)) in cte_cols.iter().take(take).enumerate() {
        let out_name = format!("{name}_o{j}");
        outer_proj.push(format!("{cte_col} AS {out_name}"));
        gt.expect_ccon(name, &out_name, &[(&src.name, src_col)]);
        outputs.push(out_name);
    }
    gt.expect_tables(name, &[src.name.as_str()]);

    let mut inner = format!("SELECT {} FROM {} AS t", inner_proj.join(", "), src.name);
    if rng.gen_bool(config.where_probability) {
        let wcol = &src.columns[rng.gen_range(0..src.columns.len())];
        inner.push_str(&format!(" WHERE t.{wcol} > 0"));
        gt.expect_cref(name, &[(&src.name, wcol)]);
    }
    let sql = format!(
        "CREATE VIEW {name} AS WITH staged AS ({inner}) SELECT {} FROM staged",
        outer_proj.join(", ")
    );
    (sql, outputs)
}

/// Knobs for the large-catalog tier: deep diamond DAGs plus wide
/// fan-out marts, emitted in dependency order with linear string
/// building, so 10k–100k view logs generate in milliseconds.
///
/// Each *component* is an independent pipeline over its own base table
/// (`t_c{i}`): `depth` diamond steps (two filter branches joined back
/// into a merge view) stacked end to end, topped by `fanout` leaf marts
/// reading the final merge. Components share no relations, which is
/// exactly the shape component-sharded scheduling exploits.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// RNG seed; equal seeds give byte-identical SQL.
    pub seed: u64,
    /// Number of independent pipeline components.
    pub components: usize,
    /// Diamond steps per component (3 views each: two branches + merge).
    pub depth: usize,
    /// Leaf marts reading each component's top merge view.
    pub fanout: usize,
}

impl ScaleConfig {
    /// A config with explicit shape knobs.
    pub fn new(seed: u64, components: usize, depth: usize, fanout: usize) -> Self {
        ScaleConfig { seed, components, depth, fanout }
    }

    /// A config sized to roughly `views` total views, using the default
    /// shape (depth 50, fanout 50 → 200 views per component).
    pub fn with_views(seed: u64, views: usize) -> Self {
        let per_component = 3 * 50 + 50;
        ScaleConfig {
            seed,
            components: views.div_ceil(per_component).max(1),
            depth: 50,
            fanout: 50,
        }
    }

    /// Total views this config generates.
    pub fn views(&self) -> usize {
        self.components * (3 * self.depth + self.fanout)
    }
}

/// A large-catalog workload: SQL in dependency order plus the handles
/// the scale benchmarks need (a deep view and its downstream cone).
#[derive(Debug, Clone)]
pub struct ScaledWorkload {
    /// Base-table DDL (one table per component).
    pub ddl: String,
    /// `CREATE VIEW` statements, no trailing semicolon, dependency order.
    pub view_statements: Vec<String>,
    /// View names in the same order.
    pub view_names: Vec<String>,
    /// A view at the bottom of component 0's diamond stack — redefining
    /// it dirties the deepest possible cone.
    pub deep_view: String,
    /// `deep_view` plus everything downstream of it, in dependency order.
    pub deep_cone: Vec<String>,
}

impl ScaledWorkload {
    /// The full log (DDL + views) as one script, built with a single
    /// pre-sized allocation — no quadratic re-copying at 100k views.
    pub fn full_sql(&self) -> String {
        let total =
            self.ddl.len() + self.view_statements.iter().map(|s| s.len() + 2).sum::<usize>();
        let mut out = String::with_capacity(total);
        out.push_str(&self.ddl);
        for stmt in &self.view_statements {
            out.push('\n');
            out.push_str(stmt);
            out.push(';');
        }
        out
    }

    /// Total number of statements (DDL + views).
    pub fn statement_count(&self) -> usize {
        self.ddl.matches(';').count() + self.view_statements.len()
    }

    /// The `i`-th churn script step: a redefinition of [`Self::deep_view`]
    /// whose predicate constant varies with `i`, so every step really
    /// changes the definition and dirties the full deep cone.
    pub fn churn_statement(&self, i: usize) -> String {
        let base =
            self.deep_view.split('_').next().map(|c| c.trim_start_matches('c')).unwrap_or("0");
        format!(
            "CREATE VIEW {} AS SELECT v0, v1, v2 FROM t_c{base} WHERE v1 > {}",
            self.deep_view,
            1000 + i
        )
    }
}

/// Generate a large-catalog workload. Statements come out in dependency
/// order (each view only reads relations emitted before it), so batch
/// ingestion never hits the deferral stack.
pub fn generate_scaled(config: &ScaleConfig) -> ScaledWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let views = config.views();
    let mut ddl = String::with_capacity(64 * config.components);
    let mut view_statements = Vec::with_capacity(views);
    let mut view_names = Vec::with_capacity(views);
    let mut deep_cone = Vec::new();

    for ci in 0..config.components {
        let base = format!("t_c{ci}");
        ddl.push_str(&format!("CREATE TABLE {base} (id int, v0 int, v1 int, v2 int);\n"));

        let mut prev = base.clone();
        let mut top = base.clone();
        for d in 0..config.depth {
            let a = format!("c{ci}_a{d}");
            let b = format!("c{ci}_b{d}");
            let m = format!("c{ci}_m{d}");
            let ka: u32 = rng.gen_range(1..100);
            let kb: u32 = rng.gen_range(1..100);
            view_statements
                .push(format!("CREATE VIEW {a} AS SELECT v0, v1, v2 FROM {prev} WHERE v1 > {ka}"));
            view_statements
                .push(format!("CREATE VIEW {b} AS SELECT v0, v1, v2 FROM {prev} WHERE v2 > {kb}"));
            view_statements.push(format!(
                "CREATE VIEW {m} AS SELECT a.v0 AS v0, a.v1 AS v1, b.v2 AS v2 \
                 FROM {a} AS a JOIN {b} AS b ON a.v0 = b.v0"
            ));
            if ci == 0 {
                // Everything from the first merge up is downstream of a0.
                if d == 0 {
                    deep_cone.push(a.clone());
                } else {
                    deep_cone.push(a.clone());
                    deep_cone.push(b.clone());
                }
                deep_cone.push(m.clone());
            }
            view_names.push(a);
            view_names.push(b);
            view_names.push(m.clone());
            prev = m.clone();
            top = m;
        }

        for j in 0..config.fanout {
            let leaf = format!("c{ci}_leaf{j}");
            let col = ["v1", "v2"][rng.gen_range(0..2)];
            let k: u32 = rng.gen_range(1..100);
            view_statements.push(format!(
                "CREATE VIEW {leaf} AS SELECT v0, {col} FROM {top} WHERE {col} > {k}"
            ));
            if ci == 0 && config.depth > 0 {
                deep_cone.push(leaf.clone());
            }
            view_names.push(leaf);
        }
    }

    let deep_view = if config.depth > 0 {
        "c0_a0".to_string()
    } else {
        view_names.first().cloned().unwrap_or_default()
    };
    ScaledWorkload { ddl, view_statements, view_names, deep_view, deep_cone }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::lineagex;

    #[test]
    fn generator_is_deterministic() {
        let a = generate(&GeneratorConfig::seeded(7));
        let b = generate(&GeneratorConfig::seeded(7));
        assert_eq!(a.full_sql(), b.full_sql());
        let c = generate(&GeneratorConfig::seeded(8));
        assert_ne!(a.full_sql(), c.full_sql());
    }

    #[test]
    fn generated_sql_parses_and_extracts() {
        let workload = generate(&GeneratorConfig::seeded(1));
        let result = lineagex(&workload.full_sql())
            .unwrap_or_else(|e| panic!("{e}\n{}", workload.full_sql()));
        assert_eq!(result.graph.queries.len(), workload.view_names.len());
    }

    #[test]
    fn extraction_matches_ground_truth_over_many_seeds() {
        for seed in 0..25 {
            let workload = generate(&GeneratorConfig::seeded(seed));
            let result = lineagex(&workload.full_sql())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", workload.full_sql()));
            let failures = workload.ground_truth.diff(&result.graph);
            assert!(
                failures.is_empty(),
                "seed {seed} mismatches:\n{}\nSQL:\n{}",
                failures.join("\n"),
                workload.full_sql()
            );
        }
    }

    #[test]
    fn reversed_statement_order_still_matches_ground_truth() {
        let config = GeneratorConfig { shuffle_statements: true, ..GeneratorConfig::seeded(3) };
        let workload = generate(&config);
        let result = lineagex(&workload.full_sql())
            .unwrap_or_else(|e| panic!("{e}\n{}", workload.full_sql()));
        let failures = workload.ground_truth.diff(&result.graph);
        assert!(failures.is_empty(), "{}", failures.join("\n"));
        // Reversal forces at least one deferral whenever a view reads a view.
        let reads_view = workload.view_statements.iter().any(|s| s.contains("FROM view_"));
        if reads_view {
            assert!(!result.deferrals.is_empty());
        }
    }

    #[test]
    fn scaled_generator_is_deterministic_at_10k_views() {
        let config = ScaleConfig::with_views(11, 10_000);
        assert!(config.views() >= 10_000);
        let a = generate_scaled(&config);
        let b = generate_scaled(&config);
        assert_eq!(a.full_sql(), b.full_sql(), "same seed must be byte-identical");
        assert_eq!(a.view_names.len(), config.views());
        let c = generate_scaled(&ScaleConfig::with_views(12, 10_000));
        assert_ne!(a.full_sql(), c.full_sql(), "different seeds must differ");
    }

    #[test]
    fn scaled_workload_extracts_and_the_deep_cone_is_exact() {
        let config = ScaleConfig::new(5, 3, 4, 2);
        let workload = generate_scaled(&config);
        assert_eq!(workload.view_names.len(), config.views());
        let result = lineagex(&workload.full_sql())
            .unwrap_or_else(|e| panic!("{e}\n{}", workload.full_sql()));
        assert_eq!(result.graph.queries.len(), workload.view_names.len());
        // Dependency order: no deferrals needed.
        assert!(result.deferrals.is_empty());
        // The recorded deep cone matches the graph's actual reachability.
        let mut reachable = std::collections::BTreeSet::from([workload.deep_view.clone()]);
        let mut frontier = vec![workload.deep_view.clone()];
        while let Some(next) = frontier.pop() {
            for down in result.graph.downstream_tables(&next) {
                if reachable.insert(down.to_string()) {
                    frontier.push(down.to_string());
                }
            }
        }
        let cone: std::collections::BTreeSet<String> = workload.deep_cone.iter().cloned().collect();
        assert_eq!(cone, reachable);
        // Churn statements really change the definition every step.
        assert_ne!(workload.churn_statement(0), workload.churn_statement(1));
        assert!(workload.churn_statement(3).contains(&workload.deep_view));
    }

    #[test]
    fn dialect_rendering_extracts_identically_under_every_dialect() {
        let workload = generate(&GeneratorConfig { views: 6, ..GeneratorConfig::seeded(9) });
        let baseline = lineagex(&workload.full_sql()).unwrap();
        for kind in DialectKind::ALL {
            let sql = workload.full_sql_for(kind);
            let result = lineagex_core::LineageX::new()
                .dialect(kind)
                .run(&sql)
                .unwrap_or_else(|e| panic!("{} rendering failed: {e}", kind.name()));
            assert_eq!(result.graph.queries, baseline.graph.queries, "{}", kind.name());
        }
    }

    #[test]
    fn workload_size_scales_with_config() {
        let small = generate(&GeneratorConfig { views: 5, ..GeneratorConfig::seeded(1) });
        let large = generate(&GeneratorConfig { views: 50, ..GeneratorConfig::seeded(1) });
        assert_eq!(small.view_names.len(), 5);
        assert_eq!(large.view_names.len(), 50);
        assert!(large.statement_count() > small.statement_count());
    }
}
