//! A TPC-H-like analytical workload.
//!
//! The paper's introduction motivates LineageX with enterprise warehouse
//! pipelines; TPC-H is the canonical stand-in. This module carries the
//! eight TPC-H base tables (real column names, 61 columns) and a pipeline
//! of analytic views patterned on the benchmark's queries (pricing
//! summary, top suppliers, market-share style joins, revenue CTEs), each
//! with exact ground-truth lineage.

use crate::groundtruth::GroundTruth;

/// The eight TPC-H tables with their standard columns.
pub const TABLES: &[(&str, &[&str])] = &[
    ("region", &["r_regionkey", "r_name", "r_comment"]),
    ("nation", &["n_nationkey", "n_name", "n_regionkey", "n_comment"]),
    (
        "supplier",
        &["s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"],
    ),
    (
        "customer",
        &[
            "c_custkey",
            "c_name",
            "c_address",
            "c_nationkey",
            "c_phone",
            "c_acctbal",
            "c_mktsegment",
            "c_comment",
        ],
    ),
    (
        "part",
        &[
            "p_partkey",
            "p_name",
            "p_mfgr",
            "p_brand",
            "p_type",
            "p_size",
            "p_container",
            "p_retailprice",
            "p_comment",
        ],
    ),
    ("partsupp", &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"]),
    (
        "orders",
        &[
            "o_orderkey",
            "o_custkey",
            "o_orderstatus",
            "o_totalprice",
            "o_orderdate",
            "o_orderpriority",
            "o_clerk",
            "o_shippriority",
            "o_comment",
        ],
    ),
    (
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_linenumber",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
            "l_shipdate",
            "l_commitdate",
            "l_receiptdate",
            "l_shipinstruct",
            "l_shipmode",
            "l_comment",
        ],
    ),
];

/// Base-table DDL.
pub fn schema_ddl() -> String {
    let mut out = String::new();
    for (name, cols) in TABLES {
        let cols_sql: Vec<String> = cols
            .iter()
            .map(|c| {
                let ty = if c.ends_with("key") || c.ends_with("number") {
                    "int"
                } else if c.ends_with("date") {
                    "date"
                } else if c.ends_with("price")
                    || c.ends_with("cost")
                    || c.ends_with("bal")
                    || *c == "l_quantity"
                    || *c == "l_discount"
                    || *c == "l_tax"
                {
                    "numeric(12, 2)"
                } else {
                    "text"
                };
                format!("{c} {ty}")
            })
            .collect();
        out.push_str(&format!("CREATE TABLE {name} ({});\n", cols_sql.join(", ")));
    }
    out
}

/// The analytic view pipeline (Q1/Q5/Q10-flavoured) with ground truth.
pub fn workload() -> (String, GroundTruth) {
    let mut gt = GroundTruth::default();

    let views = "
CREATE VIEW pricing_summary AS
SELECT l.l_returnflag AS returnflag, l.l_linestatus AS linestatus,
       sum(l.l_quantity) AS sum_qty,
       sum(l.l_extendedprice) AS sum_base_price,
       sum(l.l_extendedprice * (1 - l.l_discount)) AS sum_disc_price,
       count(*) AS count_order
FROM lineitem l
WHERE l.l_shipdate <= '1998-09-02'
GROUP BY l.l_returnflag, l.l_linestatus;

CREATE VIEW order_revenue AS
WITH item_revenue AS (
  SELECT li.l_orderkey AS orderkey,
         li.l_extendedprice * (1 - li.l_discount) AS revenue
  FROM lineitem li
)
SELECT o.o_orderkey AS orderkey, o.o_custkey AS custkey,
       o.o_orderdate AS orderdate, ir.revenue AS revenue
FROM orders o JOIN item_revenue ir ON o.o_orderkey = ir.orderkey;

CREATE VIEW customer_nation AS
SELECT c.c_custkey AS custkey, c.c_name AS custname,
       n.n_name AS nation, r.r_name AS region
FROM customer c
JOIN nation n ON c.c_nationkey = n.n_nationkey
JOIN region r ON n.n_regionkey = r.r_regionkey;

CREATE VIEW local_revenue AS
SELECT cn.nation AS nation, orv.revenue AS revenue
FROM order_revenue orv
JOIN customer_nation cn ON orv.custkey = cn.custkey
WHERE cn.region = 'ASIA';

CREATE VIEW top_customers AS
SELECT cn.custname AS custname, cn.nation AS nation,
       sum(orv.revenue) AS total_revenue
FROM order_revenue orv
JOIN customer_nation cn ON orv.custkey = cn.custkey
GROUP BY cn.custname, cn.nation
ORDER BY total_revenue DESC
LIMIT 20;

CREATE VIEW supplier_parts AS
SELECT s.s_name AS supplier, p.p_name AS part,
       ps.ps_availqty AS availqty, ps.ps_supplycost AS supplycost
FROM partsupp ps
JOIN supplier s ON ps.ps_suppkey = s.s_suppkey
JOIN part p ON ps.ps_partkey = p.p_partkey;
";

    // pricing_summary (Q1-style).
    gt.expect_ccon("pricing_summary", "returnflag", &[("lineitem", "l_returnflag")]);
    gt.expect_ccon("pricing_summary", "linestatus", &[("lineitem", "l_linestatus")]);
    gt.expect_ccon("pricing_summary", "sum_qty", &[("lineitem", "l_quantity")]);
    gt.expect_ccon("pricing_summary", "sum_base_price", &[("lineitem", "l_extendedprice")]);
    gt.expect_ccon(
        "pricing_summary",
        "sum_disc_price",
        &[("lineitem", "l_extendedprice"), ("lineitem", "l_discount")],
    );
    gt.expect_ccon("pricing_summary", "count_order", &[]);
    gt.expect_cref(
        "pricing_summary",
        &[("lineitem", "l_shipdate"), ("lineitem", "l_returnflag"), ("lineitem", "l_linestatus")],
    );
    gt.expect_tables("pricing_summary", &["lineitem"]);

    // order_revenue (CTE composes away).
    gt.expect_ccon("order_revenue", "orderkey", &[("orders", "o_orderkey")]);
    gt.expect_ccon("order_revenue", "custkey", &[("orders", "o_custkey")]);
    gt.expect_ccon("order_revenue", "orderdate", &[("orders", "o_orderdate")]);
    gt.expect_ccon(
        "order_revenue",
        "revenue",
        &[("lineitem", "l_extendedprice"), ("lineitem", "l_discount")],
    );
    gt.expect_cref("order_revenue", &[("orders", "o_orderkey"), ("lineitem", "l_orderkey")]);
    gt.expect_tables("order_revenue", &["orders", "lineitem"]);

    // customer_nation.
    gt.expect_ccon("customer_nation", "custkey", &[("customer", "c_custkey")]);
    gt.expect_ccon("customer_nation", "custname", &[("customer", "c_name")]);
    gt.expect_ccon("customer_nation", "nation", &[("nation", "n_name")]);
    gt.expect_ccon("customer_nation", "region", &[("region", "r_name")]);
    gt.expect_cref(
        "customer_nation",
        &[
            ("customer", "c_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_regionkey"),
            ("region", "r_regionkey"),
        ],
    );
    gt.expect_tables("customer_nation", &["customer", "nation", "region"]);

    // local_revenue: view-on-views.
    gt.expect_ccon("local_revenue", "nation", &[("customer_nation", "nation")]);
    gt.expect_ccon("local_revenue", "revenue", &[("order_revenue", "revenue")]);
    gt.expect_cref(
        "local_revenue",
        &[
            ("order_revenue", "custkey"),
            ("customer_nation", "custkey"),
            ("customer_nation", "region"),
        ],
    );
    gt.expect_tables("local_revenue", &["order_revenue", "customer_nation"]);

    // top_customers: aggregate + ORDER BY alias + LIMIT.
    gt.expect_ccon("top_customers", "custname", &[("customer_nation", "custname")]);
    gt.expect_ccon("top_customers", "nation", &[("customer_nation", "nation")]);
    gt.expect_ccon("top_customers", "total_revenue", &[("order_revenue", "revenue")]);
    gt.expect_cref(
        "top_customers",
        &[
            ("order_revenue", "custkey"),
            ("customer_nation", "custkey"),
            ("customer_nation", "custname"),
            ("customer_nation", "nation"),
            ("order_revenue", "revenue"),
        ],
    );
    gt.expect_tables("top_customers", &["order_revenue", "customer_nation"]);

    // supplier_parts.
    gt.expect_ccon("supplier_parts", "supplier", &[("supplier", "s_name")]);
    gt.expect_ccon("supplier_parts", "part", &[("part", "p_name")]);
    gt.expect_ccon("supplier_parts", "availqty", &[("partsupp", "ps_availqty")]);
    gt.expect_ccon("supplier_parts", "supplycost", &[("partsupp", "ps_supplycost")]);
    gt.expect_cref(
        "supplier_parts",
        &[
            ("partsupp", "ps_suppkey"),
            ("supplier", "s_suppkey"),
            ("partsupp", "ps_partkey"),
            ("part", "p_partkey"),
        ],
    );
    gt.expect_tables("supplier_parts", &["partsupp", "supplier", "part"]);

    (format!("{}\n{views}", schema_ddl()), gt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::{lineagex, SourceColumn};

    #[test]
    fn schema_has_61_columns() {
        assert_eq!(TABLES.len(), 8);
        let total: usize = TABLES.iter().map(|(_, c)| c.len()).sum();
        assert_eq!(total, 61);
    }

    #[test]
    fn pipeline_matches_ground_truth() {
        let (sql, gt) = workload();
        let result = lineagex(&sql).unwrap_or_else(|e| panic!("{e}"));
        let failures = gt.diff(&result.graph);
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }

    #[test]
    fn discount_impact_reaches_top_customers() {
        // The classic governance question: changing l_discount semantics
        // ripples through revenue into every revenue-derived view.
        let (sql, _) = workload();
        let result = lineagex(&sql).unwrap();
        let impact = result.impact_of("lineitem", "l_discount");
        for (table, column) in [
            ("pricing_summary", "sum_disc_price"),
            ("order_revenue", "revenue"),
            ("local_revenue", "revenue"),
            ("top_customers", "total_revenue"),
        ] {
            assert!(impact.contains(&SourceColumn::new(table, column)), "missing {table}.{column}");
        }
        // But it does not touch the supplier-side pipeline.
        assert!(!impact.impacted_tables().contains(&"supplier_parts"));
    }

    #[test]
    fn pipeline_depth_is_three() {
        let (sql, _) = workload();
        let result = lineagex(&sql).unwrap();
        // lineitem -> order_revenue -> local_revenue/top_customers.
        assert_eq!(result.graph.stats().max_pipeline_depth, 2);
    }
}
