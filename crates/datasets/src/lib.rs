//! # lineagex-datasets
//!
//! Workloads for exercising and evaluating LineageX:
//!
//! * [`example1`] — the paper's running example (Q1–Q3 over the online
//!   shop schema) together with its ground-truth lineage (the "yellow"
//!   correct edges of Fig. 2) and the expected impact-analysis answer of
//!   §IV step 4;
//! * [`mimic`] — a MIMIC-III-like healthcare workload matching the
//!   statistics quoted in §IV (26 base tables with 300+ columns, 70 view
//!   definitions with 700+ columns), with generated ground truth;
//! * [`generator`] — a seeded random view-pipeline generator whose ground
//!   truth is exact by construction, used for accuracy sweeps and
//!   property tests.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod example1;
pub mod generator;
pub mod groundtruth;
pub mod mimic;
pub mod tpch;

pub use generator::{
    generate_scaled, GeneratorConfig, PipelineWorkload, ScaleConfig, ScaledWorkload,
};
pub use groundtruth::GroundTruth;
