//! A MIMIC-III-like healthcare workload.
//!
//! The paper demonstrates LineageX on the MIMIC dataset, quoting "more
//! than 300 columns in 26 base tables and 700 columns in 70 view
//! definitions" (§IV). MIMIC itself is credentialed data, so this module
//! reproduces the *shape*: the 26 base tables carry the real MIMIC-III
//! table and column names (324 columns in total), and 70 deterministic
//! concept-style views (in the spirit of the `mimic-code` repository:
//! cohort details, event subsets, dictionary joins, chart/lab
//! harmonisation unions, first-day aggregates, and derived cohorts) with
//! more than 700 output columns. Every view is built from a plan, so the
//! workload ships exact ground-truth lineage.

use crate::groundtruth::GroundTruth;

/// The 26 base tables with their (real) MIMIC-III columns.
pub const TABLES: &[(&str, &[&str])] = &[
    (
        "patients",
        &["row_id", "subject_id", "gender", "dob", "dod", "dod_hosp", "dod_ssn", "expire_flag"],
    ),
    (
        "admissions",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "admittime",
            "dischtime",
            "deathtime",
            "admission_type",
            "admission_location",
            "discharge_location",
            "insurance",
            "language",
            "religion",
            "marital_status",
            "ethnicity",
            "edregtime",
            "edouttime",
            "diagnosis",
            "hospital_expire_flag",
            "has_chartevents_data",
        ],
    ),
    (
        "icustays",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "icustay_id",
            "dbsource",
            "first_careunit",
            "last_careunit",
            "first_wardid",
            "last_wardid",
            "intime",
            "outtime",
            "los",
        ],
    ),
    (
        "callout",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "submit_wardid",
            "submit_careunit",
            "curr_wardid",
            "curr_careunit",
            "callout_wardid",
            "callout_service",
            "request_tele",
            "request_resp",
            "request_cdiff",
            "request_mrsa",
            "request_vre",
            "callout_status",
            "callout_outcome",
            "discharge_wardid",
            "acknowledge_status",
            "createtime",
            "updatetime",
            "acknowledgetime",
            "outcometime",
            "firstreservationtime",
            "currentreservationtime",
        ],
    ),
    ("caregivers", &["row_id", "cgid", "label", "description"]),
    (
        "chartevents",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "icustay_id",
            "itemid",
            "charttime",
            "storetime",
            "cgid",
            "value",
            "valuenum",
            "valueuom",
            "warning",
            "error",
            "resultstatus",
            "stopped",
        ],
    ),
    (
        "cptevents",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "costcenter",
            "chartdate",
            "cpt_cd",
            "cpt_number",
            "cpt_suffix",
            "ticket_id_seq",
            "sectionheader",
            "subsectionheader",
            "description",
        ],
    ),
    (
        "datetimeevents",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "icustay_id",
            "itemid",
            "charttime",
            "storetime",
            "cgid",
            "value",
            "valueuom",
            "warning",
            "error",
            "resultstatus",
            "stopped",
        ],
    ),
    ("diagnoses_icd", &["row_id", "subject_id", "hadm_id", "seq_num", "icd9_code"]),
    (
        "drgcodes",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "drg_type",
            "drg_code",
            "description",
            "drg_severity",
            "drg_mortality",
        ],
    ),
    (
        "d_cpt",
        &[
            "row_id",
            "category",
            "sectionrange",
            "sectionheader",
            "subsectionrange",
            "subsectionheader",
            "codesuffix",
            "mincodeinsubsection",
            "maxcodeinsubsection",
        ],
    ),
    ("d_icd_diagnoses", &["row_id", "icd9_code", "short_title", "long_title"]),
    ("d_icd_procedures", &["row_id", "icd9_code", "short_title", "long_title"]),
    (
        "d_items",
        &[
            "row_id",
            "itemid",
            "label",
            "abbreviation",
            "dbsource",
            "linksto",
            "category",
            "unitname",
            "param_type",
            "conceptid",
        ],
    ),
    ("d_labitems", &["row_id", "itemid", "label", "fluid", "category", "loinc_code"]),
    (
        "inputevents_cv",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "icustay_id",
            "charttime",
            "itemid",
            "amount",
            "amountuom",
            "rate",
            "rateuom",
            "storetime",
            "cgid",
            "orderid",
            "linkorderid",
            "stopped",
            "newbottle",
            "originalamount",
            "originalamountuom",
            "originalroute",
            "originalrate",
            "originalrateuom",
            "originalsite",
        ],
    ),
    (
        "inputevents_mv",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "icustay_id",
            "starttime",
            "endtime",
            "itemid",
            "amount",
            "amountuom",
            "rate",
            "rateuom",
            "storetime",
            "cgid",
            "orderid",
            "linkorderid",
            "ordercategoryname",
            "secondaryordercategoryname",
            "ordercomponenttypedescription",
            "ordercategorydescription",
            "patientweight",
            "totalamount",
            "totalamountuom",
            "isopenbag",
            "continueinnextdept",
            "cancelreason",
            "statusdescription",
            "comments_editedby",
            "comments_canceledby",
            "comments_date",
            "originalamount_mv",
            "originalrate_mv",
        ],
    ),
    (
        "labevents",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "itemid",
            "charttime",
            "value",
            "valuenum",
            "valueuom",
            "flag",
        ],
    ),
    (
        "microbiologyevents",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "chartdate",
            "charttime",
            "spec_itemid",
            "spec_type_desc",
            "org_itemid",
            "org_name",
            "isolate_num",
            "ab_itemid",
            "ab_name",
            "dilution_text",
            "dilution_comparison",
            "dilution_value",
            "interpretation",
        ],
    ),
    (
        "noteevents",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "chartdate",
            "charttime",
            "storetime",
            "category",
            "description",
            "cgid",
            "iserror",
            "text",
        ],
    ),
    (
        "outputevents",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "icustay_id",
            "charttime",
            "itemid",
            "value",
            "valueuom",
            "storetime",
            "cgid",
            "stopped",
            "newbottle",
            "iserror",
        ],
    ),
    (
        "prescriptions",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "icustay_id",
            "startdate",
            "enddate",
            "drug_type",
            "drug",
            "drug_name_poe",
            "drug_name_generic",
            "formulary_drug_cd",
            "gsn",
            "ndc",
            "prod_strength",
            "dose_val_rx",
            "dose_unit_rx",
            "form_val_disp",
            "form_unit_disp",
            "route",
        ],
    ),
    (
        "procedureevents_mv",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "icustay_id",
            "starttime",
            "endtime",
            "itemid",
            "value",
            "valueuom",
            "location",
            "locationcategory",
            "storetime",
            "cgid",
            "orderid",
            "linkorderid",
            "ordercategoryname",
            "secondaryordercategoryname",
            "ordercategorydescription",
            "isopenbag",
            "continueinnextdept",
            "cancelreason",
            "statusdescription",
            "comments_editedby",
            "comments_canceledby",
            "comments_date",
        ],
    ),
    ("procedures_icd", &["row_id", "subject_id", "hadm_id", "seq_num", "icd9_code"]),
    (
        "services",
        &["row_id", "subject_id", "hadm_id", "transfertime", "prev_service", "curr_service"],
    ),
    (
        "transfers",
        &[
            "row_id",
            "subject_id",
            "hadm_id",
            "icustay_id",
            "dbsource",
            "eventtype",
            "prev_careunit",
            "curr_careunit",
            "prev_wardid",
            "curr_wardid",
            "intime",
            "outtime",
            "los",
        ],
    ),
];

/// Event tables used by the view templates.
const EVENT_TABLES: &[&str] = &[
    "chartevents",
    "labevents",
    "outputevents",
    "datetimeevents",
    "prescriptions",
    "microbiologyevents",
    "inputevents_cv",
    "inputevents_mv",
    "procedureevents_mv",
    "cptevents",
    "noteevents",
    "transfers",
];

/// The generated workload: DDL, 70 views, and ground truth.
#[derive(Debug, Clone)]
pub struct MimicWorkload {
    /// Base-table DDL (26 tables).
    pub ddl: String,
    /// The 70 `CREATE VIEW` statements, in dependency order.
    pub view_statements: Vec<String>,
    /// Exact expected lineage of every view.
    pub ground_truth: GroundTruth,
    /// View names in creation order.
    pub view_names: Vec<String>,
}

impl MimicWorkload {
    /// The full log as one script.
    pub fn full_sql(&self) -> String {
        let mut out = self.ddl.clone();
        for stmt in &self.view_statements {
            out.push('\n');
            out.push_str(stmt);
            out.push(';');
        }
        out
    }

    /// Total output columns across all views.
    pub fn view_column_count(&self) -> usize {
        self.ground_truth.ccon.values().map(|cols| cols.len()).sum()
    }
}

/// The base-table DDL.
pub fn schema_ddl() -> String {
    let mut out = String::new();
    for (name, cols) in TABLES {
        let cols_sql: Vec<String> = cols
            .iter()
            .map(|c| {
                let ty = if c.ends_with("_id") || c.ends_with("id") {
                    "int"
                } else if c.ends_with("time") || c.ends_with("date") || *c == "dob" || *c == "dod" {
                    "timestamp"
                } else if *c == "valuenum" || *c == "amount" || *c == "rate" || *c == "los" {
                    "double precision"
                } else {
                    "text"
                };
                format!("{c} {ty}")
            })
            .collect();
        out.push_str(&format!("CREATE TABLE {name} ({});\n", cols_sql.join(", ")));
    }
    out
}

fn columns_of(table: &str) -> &'static [&'static str] {
    TABLES
        .iter()
        .find(|(name, _)| *name == table)
        .map(|(_, cols)| *cols)
        .unwrap_or_else(|| panic!("unknown mimic table {table}"))
}

/// A small builder collecting views and their ground truth.
struct Builder {
    statements: Vec<String>,
    names: Vec<String>,
    gt: GroundTruth,
    /// Output columns of created views (for star/cohort templates).
    view_columns: Vec<(String, Vec<String>)>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            statements: Vec::new(),
            names: Vec::new(),
            gt: GroundTruth::default(),
            view_columns: Vec::new(),
        }
    }

    fn push_view(&mut self, name: &str, sql: String, outputs: Vec<String>) {
        self.statements.push(sql);
        self.names.push(name.to_string());
        self.view_columns.push((name.to_string(), outputs));
    }

    /// Template 1 — cohort detail: patients ⋈ admissions ⋈ icustays.
    fn detail_view(&mut self, idx: usize) {
        let name = format!("icustay_detail_{idx}");
        // Rotate over admissions columns to diversify the projection.
        let adm = columns_of("admissions");
        let icu = columns_of("icustays");
        let picks_adm: Vec<&str> = (0..6).map(|k| adm[(idx + k * 3) % adm.len()]).collect();
        let picks_icu: Vec<&str> = (0..4).map(|k| icu[(idx + k * 2) % icu.len()]).collect();
        let mut proj = vec![
            "p.subject_id AS subject_id".to_string(),
            "p.gender AS gender".to_string(),
            "p.dob AS dob".to_string(),
            "a.hadm_id AS hadm_id".to_string(),
            "i.icustay_id AS icustay_id".to_string(),
        ];
        let mut outputs = vec![
            "subject_id".to_string(),
            "gender".to_string(),
            "dob".to_string(),
            "hadm_id".to_string(),
            "icustay_id".to_string(),
        ];
        self.gt.expect_ccon(&name, "subject_id", &[("patients", "subject_id")]);
        self.gt.expect_ccon(&name, "gender", &[("patients", "gender")]);
        self.gt.expect_ccon(&name, "dob", &[("patients", "dob")]);
        self.gt.expect_ccon(&name, "hadm_id", &[("admissions", "hadm_id")]);
        self.gt.expect_ccon(&name, "icustay_id", &[("icustays", "icustay_id")]);
        for (k, col) in picks_adm.iter().enumerate() {
            let out = format!("adm_{k}_{col}");
            proj.push(format!("a.{col} AS {out}"));
            self.gt.expect_ccon(&name, &out, &[("admissions", col)]);
            outputs.push(out);
        }
        for (k, col) in picks_icu.iter().enumerate() {
            let out = format!("icu_{k}_{col}");
            proj.push(format!("i.{col} AS {out}"));
            self.gt.expect_ccon(&name, &out, &[("icustays", col)]);
            outputs.push(out);
        }
        let sql = format!(
            "CREATE VIEW {name} AS SELECT {} FROM patients p \
             JOIN admissions a ON p.subject_id = a.subject_id \
             JOIN icustays i ON a.hadm_id = i.hadm_id \
             WHERE a.hospital_expire_flag = '0'",
            proj.join(", ")
        );
        self.gt.expect_cref(
            &name,
            &[
                ("patients", "subject_id"),
                ("admissions", "subject_id"),
                ("admissions", "hadm_id"),
                ("icustays", "hadm_id"),
                ("admissions", "hospital_expire_flag"),
            ],
        );
        self.gt.expect_tables(&name, &["patients", "admissions", "icustays"]);
        self.push_view(&name, sql, outputs);
    }

    /// Template 2 — event subset: one event table filtered by itemid-ish
    /// predicate, projecting most of its columns.
    fn event_subset_view(&mut self, idx: usize) {
        let table = EVENT_TABLES[idx % EVENT_TABLES.len()];
        let name = format!("{table}_subset_{idx}");
        let cols = columns_of(table);
        let take = cols.len().min(12);
        let mut proj = Vec::new();
        let mut outputs = Vec::new();
        for col in cols.iter().take(take) {
            proj.push(format!("e.{col} AS {col}"));
            self.gt.expect_ccon(&name, col, &[(table, col)]);
            outputs.push(col.to_string());
        }
        let filter_col = cols[cols.len().saturating_sub(1).min(4)];
        let sql = format!(
            "CREATE VIEW {name} AS SELECT {} FROM {table} e WHERE e.{filter_col} IS NOT NULL",
            proj.join(", ")
        );
        self.gt.expect_cref(&name, &[(table, filter_col)]);
        self.gt.expect_tables(&name, &[table]);
        self.push_view(&name, sql, outputs);
    }

    /// Template 3 — dictionary join: labevents/chartevents + d_* labels.
    fn dictionary_view(&mut self, idx: usize) {
        let (event, dict) = match idx % 3 {
            0 => ("labevents", "d_labitems"),
            1 => ("chartevents", "d_items"),
            _ => ("datetimeevents", "d_items"),
        };
        let name = format!("{event}_labeled_{idx}");
        let ecols = columns_of(event);
        let take = ecols.len().min(7);
        let mut proj = Vec::new();
        let mut outputs = Vec::new();
        for col in ecols.iter().take(take) {
            proj.push(format!("e.{col} AS {col}"));
            self.gt.expect_ccon(&name, col, &[(event, col)]);
            outputs.push(col.to_string());
        }
        proj.push("d.label AS item_label".to_string());
        self.gt.expect_ccon(&name, "item_label", &[(dict, "label")]);
        outputs.push("item_label".to_string());
        proj.push("d.category AS item_category".to_string());
        self.gt.expect_ccon(&name, "item_category", &[(dict, "category")]);
        outputs.push("item_category".to_string());
        let sql = format!(
            "CREATE VIEW {name} AS SELECT {} FROM {event} e JOIN {dict} d ON e.itemid = d.itemid",
            proj.join(", ")
        );
        self.gt.expect_cref(&name, &[(event, "itemid"), (dict, "itemid")]);
        self.gt.expect_tables(&name, &[event, dict]);
        self.push_view(&name, sql, outputs);
    }

    /// Template 4 — harmonisation union: inputevents_cv ∪ inputevents_mv.
    fn union_view(&mut self, idx: usize) {
        let name = format!("inputevents_unified_{idx}");
        // Shared semantic columns across the CV/MV era tables.
        let pairs: &[(&str, &str, &str)] = &[
            ("subject_id", "subject_id", "subject_id"),
            ("hadm_id", "hadm_id", "hadm_id"),
            ("icustay_id", "icustay_id", "icustay_id"),
            ("itemid", "itemid", "itemid"),
            ("amount", "amount", "amount"),
            ("rate", "rate", "rate"),
            ("charttime", "starttime", "event_time"),
        ];
        let take = 4 + (idx % 4); // 4..=7 columns
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut outputs = Vec::new();
        for (cv, mv, out) in pairs.iter().take(take) {
            left.push(format!("cv.{cv} AS {out}"));
            right.push(format!("mv.{mv}"));
            self.gt.expect_ccon(&name, out, &[("inputevents_cv", cv), ("inputevents_mv", mv)]);
            self.gt.expect_cref(&name, &[("inputevents_cv", cv), ("inputevents_mv", mv)]);
            outputs.push(out.to_string());
        }
        let sql = format!(
            "CREATE VIEW {name} AS SELECT {} FROM inputevents_cv cv UNION ALL SELECT {} FROM inputevents_mv mv",
            left.join(", "),
            right.join(", ")
        );
        self.gt.expect_tables(&name, &["inputevents_cv", "inputevents_mv"]);
        self.push_view(&name, sql, outputs);
    }

    /// Template 5 — first-day aggregate over an event table.
    fn firstday_view(&mut self, idx: usize) {
        let table = ["labevents", "chartevents", "outputevents"][idx % 3];
        let name = format!("first_day_{table}_{idx}");
        let value_col = if table == "outputevents" { "value" } else { "valuenum" };
        let sql = format!(
            "CREATE VIEW {name} AS SELECT e.subject_id AS subject_id, e.hadm_id AS hadm_id, \
             count(*) AS n_events, max(e.{value_col}) AS max_value, min(e.{value_col}) AS min_value \
             FROM {table} e GROUP BY e.subject_id, e.hadm_id"
        );
        self.gt.expect_ccon(&name, "subject_id", &[(table, "subject_id")]);
        self.gt.expect_ccon(&name, "hadm_id", &[(table, "hadm_id")]);
        self.gt.expect_ccon(&name, "n_events", &[]);
        self.gt.expect_ccon(&name, "max_value", &[(table, value_col)]);
        self.gt.expect_ccon(&name, "min_value", &[(table, value_col)]);
        self.gt.expect_cref(&name, &[(table, "subject_id"), (table, "hadm_id")]);
        self.gt.expect_tables(&name, &[table]);
        self.push_view(
            &name,
            sql,
            vec![
                "subject_id".into(),
                "hadm_id".into(),
                "n_events".into(),
                "max_value".into(),
                "min_value".into(),
            ],
        );
    }

    /// Template 6 — star view over an earlier concept view (`SELECT *`).
    fn star_view(&mut self, idx: usize) {
        let (src_name, src_cols) = self.view_columns[idx % self.view_columns.len()].clone();
        let name = format!("{src_name}_snapshot");
        let sql = format!("CREATE VIEW {name} AS SELECT * FROM {src_name}");
        for col in &src_cols {
            self.gt.expect_ccon(&name, col, &[(&src_name, col)]);
        }
        self.gt.expect_tables(&name, &[src_name.as_str()]);
        self.push_view(&name, sql, src_cols);
    }

    /// Template 7 — derived cohort joining two earlier views on
    /// subject_id-like first columns.
    fn cohort_view(&mut self, idx: usize) {
        let n = self.view_columns.len();
        let (a_name, a_cols) = self.view_columns[idx % n].clone();
        let (b_name, b_cols) = self.view_columns[(idx * 7 + 3) % n].clone();
        if a_name == b_name {
            // Degenerate pick; fall back to a star view to keep the count.
            self.star_view(idx + 1);
            return;
        }
        let name = format!("cohort_{idx}");
        let a_take = a_cols.len().min(5);
        let b_take = b_cols.len().min(5);
        let mut proj = Vec::new();
        let mut outputs = Vec::new();
        for (k, col) in a_cols.iter().take(a_take).enumerate() {
            let out = format!("a{k}_{col}");
            proj.push(format!("a.{col} AS {out}"));
            self.gt.expect_ccon(&name, &out, &[(&a_name, col)]);
            outputs.push(out);
        }
        for (k, col) in b_cols.iter().take(b_take).enumerate() {
            let out = format!("b{k}_{col}");
            proj.push(format!("b.{col} AS {out}"));
            self.gt.expect_ccon(&name, &out, &[(&b_name, col)]);
            outputs.push(out);
        }
        let a_key = &a_cols[0];
        let b_key = &b_cols[0];
        let sql = format!(
            "CREATE VIEW {name} AS SELECT {} FROM {a_name} a JOIN {b_name} b ON a.{a_key} = b.{b_key}",
            proj.join(", ")
        );
        self.gt.expect_cref(&name, &[(&a_name, a_key), (&b_name, b_key)]);
        self.gt.expect_tables(&name, &[a_name.as_str(), b_name.as_str()]);
        self.push_view(&name, sql, outputs);
    }
}

/// Build the full 70-view workload.
pub fn workload() -> MimicWorkload {
    let mut b = Builder::new();
    for i in 0..10 {
        b.detail_view(i);
    }
    for i in 0..14 {
        b.event_subset_view(i);
    }
    for i in 0..10 {
        b.dictionary_view(i);
    }
    for i in 0..6 {
        b.union_view(i);
    }
    for i in 0..9 {
        b.firstday_view(i);
    }
    for i in 0..11 {
        b.star_view(i * 3);
    }
    for i in 0..10 {
        b.cohort_view(i);
    }
    debug_assert_eq!(b.names.len(), 70);
    MimicWorkload {
        ddl: schema_ddl(),
        view_statements: b.statements,
        ground_truth: b.gt,
        view_names: b.names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_catalog::Catalog;
    use lineagex_core::lineagex;

    #[test]
    fn schema_matches_paper_statistics() {
        // "more than 300 columns in 26 base tables"
        assert_eq!(TABLES.len(), 26);
        let total: usize = TABLES.iter().map(|(_, cols)| cols.len()).sum();
        assert!(total > 300, "only {total} base columns");
        let catalog = Catalog::from_ddl(&schema_ddl()).unwrap();
        assert_eq!(catalog.base_table_count(), 26);
        assert_eq!(catalog.base_table_column_count(), total);
    }

    #[test]
    fn workload_matches_paper_view_statistics() {
        // "700 columns in 70 view definitions"
        let w = workload();
        assert_eq!(w.view_names.len(), 70);
        let cols = w.view_column_count();
        assert!(cols >= 700, "only {cols} view columns");
    }

    #[test]
    fn lineage_extraction_matches_ground_truth() {
        let w = workload();
        let result = lineagex(&w.full_sql()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(result.graph.queries.len(), 70);
        let failures = w.ground_truth.diff(&result.graph);
        assert!(failures.is_empty(), "mismatches:\n{}", failures.join("\n"));
    }

    #[test]
    fn view_names_are_unique() {
        let w = workload();
        let mut names = w.view_names.clone();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 70, "duplicate view names generated");
    }
}
