//! The versioned JSON-lines wire protocol.
//!
//! One request per line, one response per line. Every message is a JSON
//! object; requests carry an `op` discriminator plus op-specific fields,
//! responses carry `schema_version`, the echoed request `id`, an `ok`
//! flag, the settled-graph `revision` the answer was computed from, and
//! either a `result` or a typed `error` (reusing
//! [`DiagnosticCode`] — malformed input is `invalid-request`, a version
//! mismatch is `unsupported-schema-version`).
//!
//! Versioning follows the [`ReportV2`] convention: the envelope's
//! [`PROTOCOL_VERSION`] covers the framing; the documents nested under
//! `result` (query reports, the full report) keep their own
//! `schema_version: 2` and stay byte-identical to what the in-process
//! [`LineageView`](lineagex_core::LineageView) surface serialises.
//!
//! Requests are parsed by hand from [`serde_json::Value`] (the vendored
//! shim has no `Deserialize` derive); responses serialize through typed
//! structs so field order is declaration order, never map order.

use lineagex_core::{
    Diagnostic, DiagnosticCode, EdgeKind, GraphStats, QueryReport, QuerySpec, ReportV2,
};
use lineagex_engine::{EngineStats, IngestAction, StmtId};
use serde::{Content, Serialize};
use serde_json::Value;

/// The protocol envelope version this crate speaks.
///
/// History: `1` — the PR 6 launch surface; `2` — adds the `metrics` op
/// (a deterministic-shaped snapshot of the process-wide observability
/// registry); `3` — the `stats` reply's `engine` block leads with the
/// session's pinned SQL `dialect` (and the engine's metrics registry
/// grew `engine.dialect` / `sqlparse.dialect_fallbacks`, visible through
/// the `metrics` op).
pub const PROTOCOL_VERSION: u32 = 3;

/// A typed service error: a [`DiagnosticCode`] plus a human message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct WireError {
    /// The machine-readable code (kebab-case on the wire).
    pub code: DiagnosticCode,
    /// What went wrong, for humans.
    pub message: String,
}

impl WireError {
    /// Build an error.
    pub fn new(code: DiagnosticCode, message: impl Into<String>) -> Self {
        WireError { code, message: message.into() }
    }

    fn invalid(message: impl Into<String>) -> Self {
        WireError::new(DiagnosticCode::InvalidRequest, message)
    }
}

/// Parameters of a `query` request — the wire form of [`QuerySpec`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryParams {
    /// Origin specs (`table.column`, or a bare relation name).
    pub origins: Vec<String>,
    /// Walk upstream instead of the default downstream.
    pub upstream: bool,
    /// Hop limit, when set.
    pub depth: Option<usize>,
    /// Restrict to one edge kind, when set.
    pub edge_kind: Option<EdgeKind>,
    /// Collapse to relation granularity.
    pub table_level: bool,
    /// Ask for the shortest path to this `table.column`.
    pub to: Option<String>,
}

impl QueryParams {
    /// Lower into the engine's [`QuerySpec`].
    pub fn spec(&self) -> QuerySpec {
        let mut spec = QuerySpec::new();
        for origin in &self.origins {
            spec = spec.from(origin);
        }
        spec = if self.upstream { spec.upstream() } else { spec.downstream() };
        if let Some(depth) = self.depth {
            spec = spec.max_depth(depth);
        }
        if let Some(kind) = self.edge_kind {
            spec = spec.edge_kind(kind);
        }
        if self.table_level {
            spec = spec.table_level();
        }
        if let Some(to) = &self.to {
            if let Some((table, column)) = to.rsplit_once('.') {
                spec = spec.to(table, column);
            }
        }
        spec
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Lock-free read: run a graph query against the published snapshot.
    Query(QueryParams),
    /// Lock-free read: the full [`ReportV2`] document.
    Report,
    /// Lock-free read: graph, engine, and server statistics.
    Stats,
    /// Lock-free read: session-level diagnostics.
    Diagnostics,
    /// Write (single-writer channel): ingest SQL text and settle.
    Ingest {
        /// The SQL script to ingest.
        sql: String,
    },
    /// Write: settle any pending work (usually a no-op: writes settle
    /// before replying).
    Refresh,
    /// Write: retract relations, as `DROP VIEW IF EXISTS …` would.
    Drop {
        /// Relations to drop.
        names: Vec<String>,
    },
    /// Lock-free read: a snapshot of the observability registry
    /// (counters, gauges, histogram summaries, recent slow ops).
    Metrics,
    /// Liveness probe; replies with the current revision.
    Ping,
    /// Ask the server to drain in-flight requests and stop.
    Shutdown,
}

/// A request line as received: the echoable `id` (when one could be
/// recovered) and the parse outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Incoming {
    /// The request id, when the line carried a well-formed one.
    pub id: Option<u64>,
    /// The parsed request, or the error to reply with.
    pub request: Result<Request, WireError>,
}

impl Request {
    /// The wire `op` discriminator.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Query(_) => "query",
            Request::Report => "report",
            Request::Stats => "stats",
            Request::Diagnostics => "diagnostics",
            Request::Ingest { .. } => "ingest",
            Request::Refresh => "refresh",
            Request::Drop { .. } => "drop",
            Request::Metrics => "metrics",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }

    /// Serialize as one request line (no trailing newline) — what a
    /// client writes. Only set fields are emitted, in a fixed order.
    pub fn to_line(&self, id: Option<u64>) -> String {
        let mut fields =
            vec![("schema_version".to_string(), Content::U64(u64::from(PROTOCOL_VERSION)))];
        if let Some(id) = id {
            fields.push(("id".to_string(), Content::U64(id)));
        }
        fields.push(("op".to_string(), Content::Str(self.op().to_string())));
        match self {
            Request::Query(params) => {
                fields.push(("origins".to_string(), params.origins.to_content()));
                if params.upstream {
                    fields.push(("direction".to_string(), Content::Str("upstream".into())));
                }
                if let Some(depth) = params.depth {
                    fields.push(("depth".to_string(), Content::U64(depth as u64)));
                }
                if let Some(kind) = params.edge_kind {
                    fields
                        .push(("edge_kind".to_string(), Content::Str(edge_kind_str(kind).into())));
                }
                if params.table_level {
                    fields.push(("table_level".to_string(), Content::Bool(true)));
                }
                if let Some(to) = &params.to {
                    fields.push(("to".to_string(), Content::Str(to.clone())));
                }
            }
            Request::Ingest { sql } => {
                fields.push(("sql".to_string(), Content::Str(sql.clone())));
            }
            Request::Drop { names } => {
                fields.push(("names".to_string(), names.to_content()));
            }
            _ => {}
        }
        content_to_line(&Content::Map(fields))
    }

    /// Parse one request line. Framing problems (bad JSON, a non-object,
    /// a bad `id`) leave `id` as `None`; once the envelope is readable
    /// the id is recovered even when the body is rejected, so the error
    /// reply can still be correlated.
    pub fn parse_line(line: &str) -> Incoming {
        let value: Value = match serde_json::from_str(line) {
            Ok(value) => value,
            Err(error) => {
                return Incoming {
                    id: None,
                    request: Err(WireError::invalid(format!("malformed JSON: {error}"))),
                }
            }
        };
        if !value.is_object() {
            return Incoming {
                id: None,
                request: Err(WireError::invalid("request must be a JSON object")),
            };
        }
        let id = match value.get("id") {
            None => None,
            Some(raw) => match raw.as_u64() {
                Some(id) => Some(id),
                None => {
                    return Incoming {
                        id: None,
                        request: Err(WireError::invalid("`id` must be a non-negative integer")),
                    }
                }
            },
        };
        Incoming { id, request: parse_body(&value) }
    }
}

fn parse_body(value: &Value) -> Result<Request, WireError> {
    if let Some(raw) = value.get("schema_version") {
        match raw.as_u64() {
            Some(v) if v == u64::from(PROTOCOL_VERSION) => {}
            _ => {
                return Err(WireError::new(
                    DiagnosticCode::UnsupportedSchemaVersion,
                    format!("this server speaks protocol schema_version {PROTOCOL_VERSION}"),
                ))
            }
        }
    }
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::invalid("missing `op` field"))?;
    match op {
        "query" => parse_query(value).map(Request::Query),
        "report" => Ok(Request::Report),
        "stats" => Ok(Request::Stats),
        "diagnostics" => Ok(Request::Diagnostics),
        "ingest" => {
            let sql = value
                .get("sql")
                .and_then(Value::as_str)
                .ok_or_else(|| WireError::invalid("`ingest` needs a string `sql` field"))?;
            Ok(Request::Ingest { sql: sql.to_string() })
        }
        "refresh" => Ok(Request::Refresh),
        "drop" => {
            let names = string_list(value, "names")?;
            if names.is_empty() {
                return Err(WireError::invalid("`drop` needs a non-empty `names` list"));
            }
            Ok(Request::Drop { names })
        }
        "metrics" => Ok(Request::Metrics),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(WireError::invalid(format!("unknown op `{other}`"))),
    }
}

fn parse_query(value: &Value) -> Result<QueryParams, WireError> {
    let origins = string_list(value, "origins")?;
    if origins.is_empty() {
        return Err(WireError::invalid("`query` needs a non-empty `origins` list"));
    }
    let upstream = match value.get("direction").map(|d| d.as_str()) {
        None => false,
        Some(Some("downstream")) | Some(Some("down")) => false,
        Some(Some("upstream")) | Some(Some("up")) => true,
        Some(_) => {
            return Err(WireError::invalid("`direction` must be `downstream` or `upstream`"))
        }
    };
    let depth = match value.get("depth") {
        None => None,
        Some(raw) => Some(
            raw.as_u64()
                .map(|d| d as usize)
                .ok_or_else(|| WireError::invalid("`depth` must be a non-negative integer"))?,
        ),
    };
    let edge_kind = match value.get("edge_kind").map(|k| k.as_str()) {
        None => None,
        Some(Some("contribute")) => Some(EdgeKind::Contribute),
        Some(Some("reference")) => Some(EdgeKind::Reference),
        Some(Some("both")) => Some(EdgeKind::Both),
        Some(_) => {
            return Err(WireError::invalid(
                "`edge_kind` must be `contribute`, `reference`, or `both`",
            ))
        }
    };
    let table_level = match value.get("table_level") {
        None => false,
        Some(raw) => {
            raw.as_bool().ok_or_else(|| WireError::invalid("`table_level` must be a boolean"))?
        }
    };
    let to = match value.get("to") {
        None => None,
        Some(raw) => {
            let to = raw
                .as_str()
                .ok_or_else(|| WireError::invalid("`to` must be a `table.column` string"))?;
            if !to.contains('.') {
                return Err(WireError::invalid("`to` must be a `table.column` string"));
            }
            Some(to.to_string())
        }
    };
    Ok(QueryParams { origins, upstream, depth, edge_kind, table_level, to })
}

fn string_list(value: &Value, key: &str) -> Result<Vec<String>, WireError> {
    match value.get(key) {
        None => Ok(Vec::new()),
        Some(raw) => {
            let items = raw
                .as_array()
                .ok_or_else(|| WireError::invalid(format!("`{key}` must be a list of strings")))?;
            items
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        WireError::invalid(format!("`{key}` must be a list of strings"))
                    })
                })
                .collect()
        }
    }
}

fn edge_kind_str(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::Contribute => "contribute",
        EdgeKind::Reference => "reference",
        EdgeKind::Both => "both",
    }
}

/// The receipt for one statement of a settled `ingest`/`drop`, mirroring
/// the engine's [`StmtId`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReceiptRecord {
    /// Session-wide statement sequence number.
    pub seq: u64,
    /// The entry or relation the statement concerned.
    pub target: String,
    /// What the engine did (`defined`, `redefined`, `dropped`, …).
    pub action: String,
    /// Ingest-time diagnostics for this statement.
    pub diagnostics: Vec<Diagnostic>,
}

impl From<&StmtId> for ReceiptRecord {
    fn from(id: &StmtId) -> Self {
        let action = match id.action {
            IngestAction::Defined => "defined",
            IngestAction::Redefined => "redefined",
            IngestAction::Unchanged => "unchanged",
            IngestAction::Schema => "schema",
            IngestAction::Dropped => "dropped",
            IngestAction::Skipped => "skipped",
            IngestAction::Failed => "failed",
        };
        ReceiptRecord {
            seq: id.seq,
            target: id.target.clone(),
            action: action.to_string(),
            diagnostics: id.diagnostics.clone(),
        }
    }
}

/// The settled outcome of a write request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WriteReceipt {
    /// Per-statement receipts (empty for a bare `refresh`).
    pub receipts: Vec<ReceiptRecord>,
    /// Extractions the settling refresh performed.
    pub extracted: usize,
}

/// The `stats` result body.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsBody {
    /// Settled-graph statistics.
    pub graph: GraphStats,
    /// Engine session counters.
    pub engine: EngineStats,
    /// Live Query-Dictionary entries.
    pub entries: usize,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests handled over the server's lifetime.
    pub requests: u64,
}

impl Serialize for StatsBody {
    fn to_content(&self) -> Content {
        // EngineStats lives in a serde-free crate; map it by hand.
        let e = &self.engine;
        let engine = Content::Map(vec![
            ("dialect".into(), Content::Str(e.dialect.clone())),
            ("statements".into(), Content::U64(e.statements)),
            ("defined".into(), Content::U64(e.defined)),
            ("redefinitions".into(), Content::U64(e.redefinitions)),
            ("unchanged".into(), Content::U64(e.unchanged)),
            ("drops".into(), Content::U64(e.drops)),
            ("parse_failures".into(), Content::U64(e.parse_failures)),
            ("diagnostics".into(), Content::U64(e.diagnostics)),
            ("extractions".into(), Content::U64(e.extractions)),
            ("last_refresh_extractions".into(), Content::U64(e.last_refresh_extractions)),
            ("refreshes".into(), Content::U64(e.refreshes)),
            ("parse_cache_hits".into(), Content::U64(e.parse_cache_hits)),
            ("parse_cache_misses".into(), Content::U64(e.parse_cache_misses)),
        ]);
        let server = Content::Map(vec![
            ("connections".into(), Content::U64(self.connections)),
            ("requests".into(), Content::U64(self.requests)),
        ]);
        Content::Map(vec![
            ("graph".into(), self.graph.to_content()),
            ("engine".into(), engine),
            ("entries".into(), Content::U64(self.entries as u64)),
            ("server".into(), server),
        ])
    }
}

/// A successful response's `result` body.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A [`QueryReport`] (`schema_version: 2`).
    Query(Box<QueryReport>),
    /// The full [`ReportV2`] document (`schema_version: 2`).
    Report(Box<ReportV2>),
    /// Graph/engine/server statistics.
    Stats(Box<StatsBody>),
    /// Session-level diagnostics.
    Diagnostics(Vec<Diagnostic>),
    /// A settled write.
    Write(WriteReceipt),
    /// An observability-registry snapshot, pre-rendered to [`Content`]
    /// by the server (the snapshot type lives in `lineagex-obs`).
    Metrics(Content),
    /// A `ping` acknowledgement.
    Pong,
    /// A `shutdown` acknowledgement: the server is draining.
    Stopping,
}

impl Payload {
    fn result_content(&self) -> Content {
        match self {
            Payload::Query(report) => report.to_content(),
            Payload::Report(report) => report.to_content(),
            Payload::Stats(stats) => stats.to_content(),
            Payload::Diagnostics(diagnostics) => {
                Content::Map(vec![("diagnostics".into(), diagnostics.to_content())])
            }
            Payload::Write(receipt) => receipt.to_content(),
            Payload::Metrics(snapshot) => snapshot.clone(),
            Payload::Pong => Content::Map(vec![("pong".into(), Content::Bool(true))]),
            Payload::Stopping => Content::Map(vec![("stopping".into(), Content::Bool(true))]),
        }
    }
}

/// One response line: the envelope plus either a result or an error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The echoed request id (absent when the request carried none or
    /// the line was too malformed to recover one).
    pub id: Option<u64>,
    /// The settled-graph revision this answer was computed from.
    pub revision: u64,
    /// The result or error body.
    pub body: Result<Payload, WireError>,
}

impl Response {
    /// A success response.
    pub fn ok(id: Option<u64>, revision: u64, payload: Payload) -> Self {
        Response { id, revision, body: Ok(payload) }
    }

    /// An error response.
    pub fn error(id: Option<u64>, revision: u64, error: WireError) -> Self {
        Response { id, revision, body: Err(error) }
    }

    /// Serialize as one compact line (no trailing newline).
    pub fn to_line(&self) -> String {
        content_to_line(&self.to_content())
    }
}

impl Serialize for Response {
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("schema_version".to_string(), Content::U64(u64::from(PROTOCOL_VERSION))),
            ("id".to_string(), self.id.to_content()),
            ("ok".to_string(), Content::Bool(self.body.is_ok())),
            ("revision".to_string(), Content::U64(self.revision)),
        ];
        match &self.body {
            Ok(payload) => fields.push(("result".to_string(), payload.result_content())),
            Err(error) => fields.push(("error".to_string(), error.to_content())),
        }
        Content::Map(fields)
    }
}

/// Render a [`Content`] tree as one compact JSON line.
fn content_to_line(content: &Content) -> String {
    struct Raw<'a>(&'a Content);
    impl Serialize for Raw<'_> {
        fn to_content(&self) -> Content {
            self.0.clone()
        }
    }
    serde_json::to_string(&Raw(content)).expect("Content serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trips_through_the_wire() {
        let params = QueryParams {
            origins: vec!["web.page".into()],
            upstream: true,
            depth: Some(3),
            edge_kind: Some(EdgeKind::Contribute),
            table_level: false,
            to: Some("info.wpage".into()),
        };
        let line = Request::Query(params.clone()).to_line(Some(7));
        let incoming = Request::parse_line(&line);
        assert_eq!(incoming.id, Some(7));
        assert_eq!(incoming.request, Ok(Request::Query(params)));
    }

    #[test]
    fn every_op_round_trips() {
        let requests = vec![
            Request::Query(QueryParams { origins: vec!["t.a".into()], ..Default::default() }),
            Request::Report,
            Request::Stats,
            Request::Diagnostics,
            Request::Ingest { sql: "CREATE TABLE t (a int);".into() },
            Request::Refresh,
            Request::Drop { names: vec!["v".into()] },
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_line(Some(1));
            let incoming = Request::parse_line(&line);
            assert_eq!(incoming.request, Ok(request), "line: {line}");
        }
    }

    #[test]
    fn malformed_json_is_invalid_request() {
        let incoming = Request::parse_line("{not json");
        assert_eq!(incoming.id, None);
        assert_eq!(incoming.request.unwrap_err().code, DiagnosticCode::InvalidRequest);
    }

    #[test]
    fn unknown_schema_version_is_rejected_but_id_recovered() {
        let incoming = Request::parse_line(r#"{"schema_version":99,"id":4,"op":"ping"}"#);
        assert_eq!(incoming.id, Some(4));
        assert_eq!(incoming.request.unwrap_err().code, DiagnosticCode::UnsupportedSchemaVersion);
    }

    #[test]
    fn missing_origins_is_rejected() {
        let incoming = Request::parse_line(r#"{"op":"query"}"#);
        let error = incoming.request.unwrap_err();
        assert_eq!(error.code, DiagnosticCode::InvalidRequest);
        assert!(error.message.contains("origins"));
    }

    #[test]
    fn response_lines_have_stable_field_order() {
        let response = Response::ok(Some(2), 5, Payload::Pong);
        assert_eq!(
            response.to_line(),
            r#"{"schema_version":3,"id":2,"ok":true,"revision":5,"result":{"pong":true}}"#
        );
        let response =
            Response::error(None, 0, WireError::new(DiagnosticCode::InvalidRequest, "nope"));
        assert_eq!(
            response.to_line(),
            r#"{"schema_version":3,"id":null,"ok":false,"revision":0,"error":{"code":"invalid-request","message":"nope"}}"#
        );
    }
}
