//! A small blocking client for the JSON-lines protocol — what
//! `lineagex client` and the test suites drive the server with.

use crate::proto::{QueryParams, Request};
use serde_json::Value;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One response line, parsed just enough to be inspected.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The raw line exactly as the server sent it (no newline).
    pub line: String,
    /// The parsed JSON document.
    pub value: Value,
}

impl Reply {
    /// Whether the server answered `ok: true`.
    pub fn ok(&self) -> bool {
        self.value.get("ok").and_then(Value::as_bool).unwrap_or(false)
    }

    /// The settled-graph revision the answer was computed from.
    pub fn revision(&self) -> u64 {
        self.value.get("revision").and_then(Value::as_u64).unwrap_or(0)
    }

    /// The error code of a failed response.
    pub fn error_code(&self) -> Option<String> {
        self.value.get("error")?.get("code")?.as_str().map(str::to_string)
    }

    /// The `result` body of a successful response.
    pub fn result(&self) -> Option<&Value> {
        self.value.get("result")
    }
}

/// A blocking connection to a running server. Each call writes one
/// request line (with an auto-incrementing `id`) and reads exactly one
/// response line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer, next_id: 1 })
    }

    /// Send a raw line (malformed input welcome — that's the point) and
    /// read the one-line reply.
    pub fn send_line(&mut self, line: &str) -> io::Result<Reply> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let read = self.reader.read_line(&mut response)?;
        if read == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let line = response.trim_end_matches('\n').to_string();
        let value = serde_json::from_str(&line)
            .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))?;
        Ok(Reply { line, value })
    }

    /// Send a typed request with the next auto-assigned id.
    pub fn request(&mut self, request: &Request) -> io::Result<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_line(&request.to_line(Some(id)))
    }

    /// Liveness probe; returns the current revision.
    pub fn ping(&mut self) -> io::Result<u64> {
        Ok(self.request(&Request::Ping)?.revision())
    }

    /// Ingest a SQL script and wait for it to settle.
    pub fn ingest(&mut self, sql: &str) -> io::Result<Reply> {
        self.request(&Request::Ingest { sql: sql.to_string() })
    }

    /// Run a graph query against the published snapshot.
    pub fn query(&mut self, params: QueryParams) -> io::Result<Reply> {
        self.request(&Request::Query(params))
    }

    /// Fetch the full `ReportV2` document.
    pub fn report(&mut self) -> io::Result<Reply> {
        self.request(&Request::Report)
    }

    /// Fetch graph/engine/server statistics.
    pub fn stats(&mut self) -> io::Result<Reply> {
        self.request(&Request::Stats)
    }

    /// The SQL dialect the server's session is pinned to, read from the
    /// `stats` reply (`result.engine.dialect`). What `lineagex client
    /// ingest --dialect` checks before shipping SQL written for a
    /// specific grammar.
    pub fn server_dialect(&mut self) -> io::Result<String> {
        let reply = self.stats()?;
        reply
            .result()
            .and_then(|r| r.get("engine"))
            .and_then(|e| e.get("dialect"))
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "stats reply carries no engine.dialect (pre-v3 server?)",
                )
            })
    }

    /// Fetch session-level diagnostics.
    pub fn diagnostics(&mut self) -> io::Result<Reply> {
        self.request(&Request::Diagnostics)
    }

    /// Fetch a snapshot of the server's observability registry.
    pub fn metrics(&mut self) -> io::Result<Reply> {
        self.request(&Request::Metrics)
    }

    /// Settle any pending work.
    pub fn refresh(&mut self) -> io::Result<Reply> {
        self.request(&Request::Refresh)
    }

    /// Drop relations by name.
    pub fn drop_relations(&mut self, names: &[String]) -> io::Result<Reply> {
        self.request(&Request::Drop { names: names.to_vec() })
    }

    /// Ask the server to drain and stop.
    pub fn shutdown(&mut self) -> io::Result<Reply> {
        self.request(&Request::Shutdown)
    }
}
