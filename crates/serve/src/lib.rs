//! # lineagex-serve
//!
//! **Lineage as a service**: a long-lived, concurrent front end over the
//! incremental engine, speaking a versioned JSON-lines protocol over
//! TCP. The paper frames LineageX as infrastructure consumed by many
//! downstream tools — debugging, auditing, impact analysis — and this
//! crate is that serving layer:
//!
//! * [`proto`] — the wire protocol: typed requests/responses, protocol
//!   `schema_version`, and typed errors reusing
//!   [`DiagnosticCode`](lineagex_core::DiagnosticCode);
//! * [`server`] — the concurrent [`Server`]: reads execute lock-free
//!   against a published [`EngineSnapshot`](lineagex_engine::EngineSnapshot)
//!   (swap-on-refresh), writes funnel through a single channel into the
//!   engine thread, and every response is stamped with the settled-graph
//!   `revision` it was answered from;
//! * [`client`] — a small blocking [`Client`] for scripting and tests.
//!
//! The correctness contract, pinned by the workspace's serve test
//! battery: a response at revision `r` is byte-identical to what a batch
//! `LineageX::run` over the same statement prefix would serialise — the
//! PR 2 *incremental ≡ batch* invariant extended to the wire.
//!
//! Everything is `std` only (TcpListener, threads, channels): no
//! tokio, no new dependencies.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod proto;
pub mod server;

/// Alias of [`Client`] for contexts (like the façade prelude) where the
/// bare name would read ambiguously.
pub use client::Client as ServeClient;
pub use client::{Client, Reply};
pub use proto::{
    Incoming, Payload, QueryParams, ReceiptRecord, Request, Response, StatsBody, WireError,
    WriteReceipt, PROTOCOL_VERSION,
};
pub use server::{ServeOptions, Server, DEFAULT_SLOW_MS};

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::DiagnosticCode;

    fn pipeline_server() -> Server {
        let server = Server::start("127.0.0.1:0", ServeOptions::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let reply = client
            .ingest(
                "CREATE TABLE web (cid int, date date, page text, reg boolean);
                 CREATE VIEW webinfo AS SELECT cid AS wcid, page AS wpage FROM web WHERE reg;
                 CREATE VIEW info AS SELECT wpage FROM webinfo;",
            )
            .unwrap();
        assert!(reply.ok(), "seed ingest failed: {}", reply.line);
        server
    }

    #[test]
    fn serves_queries_over_tcp() {
        let server = pipeline_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let reply = client
            .query(QueryParams { origins: vec!["web.page".into()], ..Default::default() })
            .unwrap();
        assert!(reply.ok());
        assert!(reply.revision() > 0);
        let columns = reply.result().unwrap().get("columns").unwrap().as_array().unwrap();
        let reached: Vec<&str> =
            columns.iter().filter_map(|c| c.get("column").and_then(|v| v.as_str())).collect();
        assert!(reached.contains(&"webinfo.wpage"));
        assert!(reached.contains(&"info.wpage"));
        server.shutdown();
    }

    #[test]
    fn write_then_read_sees_the_new_revision() {
        let server = pipeline_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let before = client.ping().unwrap();
        let reply = client.ingest("CREATE VIEW extra AS SELECT wcid FROM webinfo;").unwrap();
        assert!(reply.ok());
        assert!(reply.revision() > before, "a settled write must bump the revision");
        let report = client.report().unwrap();
        assert_eq!(report.revision(), reply.revision());
        assert!(report.result().unwrap().get("queries").unwrap().get("extra").is_some());
        server.shutdown();
    }

    #[test]
    fn drop_retracts_and_failed_writes_keep_the_old_snapshot() {
        let server = pipeline_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let settled = client.ping().unwrap();
        // Strict-mode parse failure: nothing published, revision keeps.
        let bad = client.ingest("CREATE VIEW broken AS SELECT FROM FROM;").unwrap();
        assert!(!bad.ok());
        assert_eq!(bad.error_code().as_deref(), Some(DiagnosticCode::ParseError.as_str()));
        assert_eq!(client.ping().unwrap(), settled);
        // A drop settles and bumps.
        let dropped = client.drop_relations(&["info".to_string()]).unwrap();
        assert!(dropped.ok());
        assert!(dropped.revision() > settled);
        let report = client.report().unwrap();
        assert!(report.result().unwrap().get("queries").unwrap().get("info").is_none());
        server.shutdown();
    }

    #[test]
    fn malformed_lines_do_not_kill_the_connection() {
        let server = pipeline_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let reply = client.send_line("{this is not json").unwrap();
        assert!(!reply.ok());
        assert_eq!(reply.error_code().as_deref(), Some(DiagnosticCode::InvalidRequest.as_str()));
        // Same connection still answers.
        assert!(client.ping().is_ok());
        server.shutdown();
    }

    #[test]
    fn wire_shutdown_drains_and_stops() {
        let server = pipeline_server();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.wait());
        let mut client = Client::connect(addr).unwrap();
        let reply = client.shutdown().unwrap();
        assert!(reply.ok());
        handle.join().unwrap();
        // The listener is closed: new connections fail (possibly after
        // the OS drains its backlog; a request on them fails for sure).
        if let Ok(mut late) = Client::connect(addr) {
            assert!(late.ping().is_err());
        }
    }
}
