//! The concurrent TCP server.
//!
//! Threading model (one writer, lock-free readers):
//!
//! * an **engine thread** owns the mutable [`Engine`]. Every write
//!   (`ingest`, `refresh`, `drop`) funnels through one mpsc channel into
//!   it, settles, and publishes a fresh [`EngineSnapshot`] by swapping it
//!   into a shared slot — the serving half of the engine's
//!   swap-on-refresh protocol;
//! * **connection threads** answer reads (`query`, `report`, `stats`,
//!   `diagnostics`) against a clone of the published snapshot: cloning is
//!   a few `Arc` bumps under a read lock held for nanoseconds, and the
//!   traversal itself touches no lock at all. A slow ingest can never
//!   block a reader — readers just keep answering from the previous
//!   settled revision, and every response says which revision that was;
//! * an **accept thread** polls the listener so it can notice shutdown,
//!   and joins every connection thread before exiting (in-flight
//!   requests drain; no response is ever cut off mid-line).
//!
//! Failed writes publish nothing: the previous snapshot stays current
//! and the error reply carries its revision. One malformed request gets
//! one typed error reply and the connection (and every other client)
//! carries on.

use crate::proto::{
    Incoming, Payload, ReceiptRecord, Request, Response, StatsBody, WireError, WriteReceipt,
};
use lineagex_catalog::Catalog;
use lineagex_core::{DiagnosticCode, LineageError, QueryReport, ReportV2};
use lineagex_engine::{Engine, EngineOptions, EngineSnapshot};
use lineagex_obs::{Counter, Gauge, Histogram};
use serde::Serialize;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long a blocked read waits before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Default [`ServeOptions::slow_ms`]: requests slower than this enter
/// the registry's slow-op ring (and the `--verbose` event log).
pub const DEFAULT_SLOW_MS: u64 = 100;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Engine options (worker threads per refresh, extraction options,
    /// AST cache size).
    pub engine: EngineOptions,
    /// Base-table schemas to preload.
    pub catalog: Option<Catalog>,
    /// Log one structured line per server event (connection open/close,
    /// write publishes, slow requests) to stderr.
    pub verbose: bool,
    /// Threshold (in milliseconds) above which a handled request counts
    /// as slow: it is pushed into the observability registry's slow-op
    /// ring and, with `verbose`, logged as a `slow_request` event.
    pub slow_ms: u64,
    /// Restore the session from a binary snapshot
    /// ([`Engine::save_snapshot`]) instead of starting empty. A preload
    /// `catalog` is merged on top of the snapshot's catalog. Corrupt or
    /// version-mismatched files fail [`Server::start`] with a typed
    /// error instead of serving a half-loaded session.
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Whether `engine.extract.dialect` was pinned explicitly (e.g. a
    /// `--dialect` flag). A pinned dialect must match a restored
    /// snapshot's recorded dialect or [`Server::start`] fails with a
    /// typed error; unpinned servers adopt the snapshot's dialect.
    pub dialect_pinned: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            engine: EngineOptions::default(),
            catalog: None,
            verbose: false,
            slow_ms: DEFAULT_SLOW_MS,
            snapshot_path: None,
            dialect_pinned: false,
        }
    }
}

/// Every `op` the wire knows, plus the `invalid` pseudo-op unparsable
/// requests are accounted under. Pre-registered at startup so the
/// metrics snapshot has a stable shape from the first request on.
const SERVE_OPS: [&str; 11] = [
    "diagnostics",
    "drop",
    "ingest",
    "invalid",
    "metrics",
    "ping",
    "query",
    "refresh",
    "report",
    "shutdown",
    "stats",
];

/// The [`DiagnosticCode`]s the serve layer itself can put on the wire,
/// pre-registered as `serve.errors.<code>` counters for a stable
/// snapshot shape. Codes outside this set register lazily.
const SERVE_ERROR_CODES: [DiagnosticCode; 5] = [
    DiagnosticCode::InvalidRequest,
    DiagnosticCode::UnsupportedSchemaVersion,
    DiagnosticCode::ParseError,
    DiagnosticCode::DependencyCycle,
    DiagnosticCode::ExtractionFailed,
];

/// Serve-layer handles into the process-wide metrics registry.
struct ServerMetrics {
    /// Requests handled (any op, success or error).
    requests: Counter,
    /// Connections accepted over the process lifetime.
    connections_total: Counter,
    /// Connections currently open.
    connections_live: Gauge,
    /// Request bytes read off the wire (including line terminators).
    bytes_in: Counter,
    /// Response bytes written to the wire (including line terminators).
    bytes_out: Counter,
    /// Per-op request latency histograms (`serve.op.<op>_us`).
    ops: Vec<(&'static str, Histogram)>,
    /// Error replies by code (`serve.errors.<code>`).
    errors: Vec<(DiagnosticCode, Counter)>,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = lineagex_obs::registry();
        ServerMetrics {
            requests: registry.counter("serve.requests"),
            connections_total: registry.counter("serve.connections"),
            connections_live: registry.gauge("serve.connections_live"),
            bytes_in: registry.counter("serve.bytes_in"),
            bytes_out: registry.counter("serve.bytes_out"),
            ops: SERVE_OPS
                .iter()
                .map(|op| (*op, registry.histogram(&format!("serve.op.{op}_us"))))
                .collect(),
            errors: SERVE_ERROR_CODES
                .iter()
                .map(|code| (*code, registry.counter(&format!("serve.errors.{}", code.as_str()))))
                .collect(),
        }
    }

    fn op_histogram(&self, op: &str) -> Histogram {
        match self.ops.iter().find(|(name, _)| *name == op) {
            Some((_, histogram)) => histogram.clone(),
            None => lineagex_obs::registry().histogram(&format!("serve.op.{op}_us")),
        }
    }

    fn error_counter(&self, code: DiagnosticCode) -> Counter {
        match self.errors.iter().find(|(known, _)| *known == code) {
            Some((_, counter)) => counter.clone(),
            None => lineagex_obs::registry().counter(&format!("serve.errors.{}", code.as_str())),
        }
    }
}

struct Shared {
    snapshot: RwLock<EngineSnapshot>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    metrics: ServerMetrics,
    verbose: bool,
    slow_ms: u64,
}

impl Shared {
    fn current(&self) -> EngineSnapshot {
        self.snapshot.read().expect("snapshot lock poisoned").clone()
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

enum WriteCmd {
    Ingest(String),
    Drop(Vec<String>),
    Refresh,
}

struct WriteJob {
    cmd: WriteCmd,
    reply: mpsc::Sender<Result<(u64, WriteReceipt), WireError>>,
}

/// A running `lineagex serve` instance.
///
/// Binds on [`Server::start`]; stops either from the wire (a `shutdown`
/// request, awaited by [`Server::wait`]) or in-process
/// ([`Server::shutdown`]). Both paths drain in-flight requests, join
/// every thread, and close the listener.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
    write_tx: Option<mpsc::Sender<WriteJob>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving on background threads. Returns once the listener is live.
    pub fn start(addr: &str, options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Pin every metric name this process can emit (serve ops and
        // error codes here, query-layer names below, engine names at
        // engine construction) so `metrics` snapshots have a stable,
        // deterministic shape from the first request on.
        lineagex_core::query::register_metrics();
        let metrics = ServerMetrics::new();
        let mut engine = match &options.snapshot_path {
            Some(path) => {
                let loaded = if options.dialect_pinned {
                    Engine::load_snapshot(path, options.engine)
                } else {
                    Engine::load_snapshot_adopting(path, options.engine)
                };
                loaded.map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot {path:?}: {e}"))
                })?
            }
            None => Engine::with_options(options.engine),
        };
        if let Some(catalog) = options.catalog {
            if options.snapshot_path.is_some() {
                engine.merge_catalog(catalog);
            } else {
                engine = engine.with_catalog(catalog);
            }
        }
        let initial = engine.publish().map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("initial publish failed: {e}"))
        })?;
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(initial),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            metrics,
            verbose: options.verbose,
            slow_ms: options.slow_ms,
        });
        let (write_tx, write_rx) = mpsc::channel::<WriteJob>();
        let engine_shared = Arc::clone(&shared);
        let engine_thread = thread::Builder::new()
            .name("lineagex-serve-engine".into())
            .spawn(move || engine_loop(engine, engine_shared, write_rx))?;
        let accept_shared = Arc::clone(&shared);
        let accept_tx = write_tx.clone();
        let accept_thread = thread::Builder::new()
            .name("lineagex-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_tx))?;
        Ok(Server {
            local_addr,
            shared,
            accept: Some(accept_thread),
            engine: Some(engine_thread),
            write_tx: Some(write_tx),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The currently published settled-graph revision.
    pub fn revision(&self) -> u64 {
        self.shared.snapshot.read().expect("snapshot lock poisoned").revision
    }

    /// Block until a client asks for `shutdown` over the wire, then
    /// drain and stop. This is what `lineagex serve` sits in.
    pub fn wait(mut self) {
        self.finish(false);
    }

    /// Stop from in-process: drain in-flight requests, join every
    /// thread, close the listener.
    pub fn shutdown(mut self) {
        self.finish(true);
    }

    fn finish(&mut self, request_stop: bool) {
        if request_stop {
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // All connection threads are joined; dropping the last sender
        // ends the engine thread's recv loop.
        drop(self.write_tx.take());
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish(true);
    }
}

/// The engine thread: the single writer. Settles each command, then
/// publishes the new snapshot *before* replying, so a client that saw
/// its write acknowledged at revision `r` knows every later read at
/// revision `r` includes it.
fn engine_loop(mut engine: Engine, shared: Arc<Shared>, jobs: mpsc::Receiver<WriteJob>) {
    while let Ok(job) = jobs.recv() {
        let op = match &job.cmd {
            WriteCmd::Ingest(_) => "ingest",
            WriteCmd::Drop(_) => "drop",
            WriteCmd::Refresh => "refresh",
        };
        let receipts = match job.cmd {
            WriteCmd::Ingest(sql) => engine.ingest(&sql),
            WriteCmd::Drop(names) => engine.ingest(&drop_script(&names)),
            WriteCmd::Refresh => Ok(Vec::new()),
        };
        let outcome = receipts.and_then(|receipts| {
            let before = engine.stats().extractions;
            let snapshot = engine.publish()?;
            let extracted = (engine.stats().extractions - before) as usize;
            *shared.snapshot.write().expect("snapshot lock poisoned") = snapshot.clone();
            if shared.verbose {
                eprintln!(
                    "[lineagex-serve] event=publish op={op} revision={} extracted={extracted}",
                    snapshot.revision
                );
            }
            let receipts = receipts.iter().map(ReceiptRecord::from).collect();
            Ok((snapshot.revision, WriteReceipt { receipts, extracted }))
        });
        let _ = job.reply.send(outcome.map_err(|error| wire_error(&error)));
    }
}

fn drop_script(names: &[String]) -> String {
    names.iter().map(|name| format!("DROP VIEW IF EXISTS {name};")).collect::<Vec<_>>().join("\n")
}

fn wire_error(error: &LineageError) -> WireError {
    let code = match error {
        LineageError::Parse(_) => DiagnosticCode::ParseError,
        LineageError::DependencyCycle(_) => DiagnosticCode::DependencyCycle,
        _ => DiagnosticCode::ExtractionFailed,
    };
    WireError::new(code, error.to_string())
}

/// The accept thread: polls the (non-blocking) listener so the shutdown
/// flag is honoured promptly, spawns one thread per connection, and
/// joins them all before exiting.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>, write_tx: mpsc::Sender<WriteJob>) {
    listener.set_nonblocking(true).expect("listener supports non-blocking accept");
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let conn_tx = write_tx.clone();
                let worker = thread::Builder::new()
                    .name("lineagex-serve-conn".into())
                    .spawn(move || connection_loop(stream, conn_shared, conn_tx));
                match worker {
                    Ok(handle) => workers.push(handle),
                    Err(_) => thread::sleep(POLL_INTERVAL),
                }
            }
            Err(error)
                if matches!(error.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                thread::sleep(POLL_INTERVAL)
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
        workers.retain(|worker| !worker.is_finished());
    }
    drop(listener);
    for worker in workers {
        let _ = worker.join();
    }
}

/// One connection: read JSON lines, answer each with exactly one line.
/// Reads poll with a timeout so an idle connection notices shutdown;
/// a partially received line is kept across polls, never dropped.
fn connection_loop(stream: TcpStream, shared: Arc<Shared>, write_tx: mpsc::Sender<WriteJob>) {
    // The stream inherits the listener's non-blocking mode on some
    // platforms; switch to blocking reads with a poll timeout.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "unknown".into());
    let mut reader = BufReader::new(reader);
    let mut writer = stream;
    let mut line = String::new();
    shared.metrics.connections_total.inc();
    shared.metrics.connections_live.inc();
    if shared.verbose {
        eprintln!(
            "[lineagex-serve] event=conn_open peer={peer} live={}",
            shared.metrics.connections_live.get()
        );
    }
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(read) => {
                shared.metrics.bytes_in.add(read as u64);
                let stop = if line.trim().is_empty() {
                    false
                } else {
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    let (response, stop) = dispatch(line.trim(), &shared, &write_tx);
                    let out = response.to_line();
                    shared.metrics.bytes_out.add(out.len() as u64 + 1);
                    let wrote = writeln!(writer, "{out}").and_then(|()| writer.flush()).is_ok();
                    stop || !wrote
                };
                line.clear();
                if stop {
                    break;
                }
            }
            Err(error)
                if matches!(error.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // Only bail between requests: a partial line means the
                // client is mid-send, so keep draining it even during
                // shutdown.
                if shared.stopping() && line.is_empty() {
                    break;
                }
            }
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    shared.metrics.connections_live.dec();
    if shared.verbose {
        eprintln!(
            "[lineagex-serve] event=conn_close peer={peer} live={}",
            shared.metrics.connections_live.get()
        );
    }
}

/// Answer one request line. Returns the response plus whether this
/// connection should stop serving (after acknowledging `shutdown`).
///
/// Accounting wraps the whole exchange: per-op latency histograms (the
/// `invalid` pseudo-op for unparsable lines), error counters by
/// [`DiagnosticCode`], and the slow-op ring for requests over the
/// configured threshold.
fn dispatch(line: &str, shared: &Shared, write_tx: &mpsc::Sender<WriteJob>) -> (Response, bool) {
    let start = Instant::now();
    let Incoming { id, request } = Request::parse_line(line);
    let (op, origins) = match &request {
        Ok(Request::Query(params)) => ("query", params.origins.len() as u64),
        Ok(request) => (request.op(), 0),
        Err(_) => ("invalid", 0),
    };
    let (response, stop) = match request {
        Ok(request) => handle(id, request, shared, write_tx),
        Err(error) => {
            let revision = shared.snapshot.read().expect("snapshot lock poisoned").revision;
            (Response::error(id, revision, error), false)
        }
    };
    let elapsed = start.elapsed();
    shared.metrics.requests.inc();
    shared.metrics.op_histogram(op).record_duration(elapsed);
    if let Err(error) = &response.body {
        shared.metrics.error_counter(error.code).inc();
    }
    if elapsed >= Duration::from_millis(shared.slow_ms) {
        lineagex_obs::registry().record_slow(op, elapsed, response.revision, origins);
        if shared.verbose {
            eprintln!(
                "[lineagex-serve] event=slow_request op={op} ms={} revision={}",
                elapsed.as_millis(),
                response.revision
            );
        }
    }
    (response, stop)
}

/// Execute one parsed request.
fn handle(
    id: Option<u64>,
    request: Request,
    shared: &Shared,
    write_tx: &mpsc::Sender<WriteJob>,
) -> (Response, bool) {
    match request {
        Request::Query(params) => {
            let snapshot = shared.current();
            let answer = params.spec().run_with(&snapshot.index);
            let report = QueryReport::from_answer(&answer)
                .with_context(&snapshot.graph, &snapshot.diagnostics);
            (Response::ok(id, snapshot.revision, Payload::Query(Box::new(report))), false)
        }
        Request::Report => {
            let snapshot = shared.current();
            let report = ReportV2::from_graph(&snapshot.graph, &snapshot.diagnostics);
            (Response::ok(id, snapshot.revision, Payload::Report(Box::new(report))), false)
        }
        Request::Stats => {
            let snapshot = shared.current();
            let stats = StatsBody {
                graph: snapshot.graph.stats(),
                engine: snapshot.stats.clone(),
                entries: snapshot.entries,
                connections: shared.connections.load(Ordering::Relaxed),
                requests: shared.requests.load(Ordering::Relaxed),
            };
            (Response::ok(id, snapshot.revision, Payload::Stats(Box::new(stats))), false)
        }
        Request::Diagnostics => {
            let snapshot = shared.current();
            let diagnostics = snapshot.diagnostics.as_ref().clone();
            (Response::ok(id, snapshot.revision, Payload::Diagnostics(diagnostics)), false)
        }
        Request::Metrics => {
            let revision = shared.snapshot.read().expect("snapshot lock poisoned").revision;
            let snapshot = lineagex_obs::registry().snapshot();
            (Response::ok(id, revision, Payload::Metrics(snapshot.to_content())), false)
        }
        Request::Ingest { sql } => (run_write(id, WriteCmd::Ingest(sql), shared, write_tx), false),
        Request::Refresh => (run_write(id, WriteCmd::Refresh, shared, write_tx), false),
        Request::Drop { names } => (run_write(id, WriteCmd::Drop(names), shared, write_tx), false),
        Request::Ping => {
            let revision = shared.snapshot.read().expect("snapshot lock poisoned").revision;
            (Response::ok(id, revision, Payload::Pong), false)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let revision = shared.snapshot.read().expect("snapshot lock poisoned").revision;
            (Response::ok(id, revision, Payload::Stopping), true)
        }
    }
}

/// Funnel one write through the engine channel and wait for it to
/// settle. A failed write replies with the *previous* (still published)
/// revision — nothing was swapped.
fn run_write(
    id: Option<u64>,
    cmd: WriteCmd,
    shared: &Shared,
    write_tx: &mpsc::Sender<WriteJob>,
) -> Response {
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = WriteJob { cmd, reply: reply_tx };
    let outcome = match write_tx.send(job) {
        Ok(()) => match reply_rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => {
                Err(WireError::new(DiagnosticCode::ExtractionFailed, "server is shutting down"))
            }
        },
        Err(_) => Err(WireError::new(DiagnosticCode::ExtractionFailed, "server is shutting down")),
    };
    match outcome {
        Ok((revision, receipt)) => Response::ok(id, revision, Payload::Write(receipt)),
        Err(error) => {
            let revision = shared.snapshot.read().expect("snapshot lock poisoned").revision;
            Response::error(id, revision, error)
        }
    }
}
