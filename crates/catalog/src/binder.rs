//! Name resolution: from parsed queries to fully-bound plans.
//!
//! The binder enforces PostgreSQL's resolution rules — qualified references
//! must name a visible binding, unqualified references must be unique in
//! their scope, set-operation branches must agree on arity — and raises the
//! corresponding [`DbError`]s. CTEs and derived tables are *composed
//! through* (their outputs carry the source columns of the relations
//! beneath them), while catalog views stay opaque, matching the lineage
//! graph's view-level nodes.

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::plan::{BoundQuery, PlanColumn, PlanNode, SourceColumn};
use lineagex_sqlparse::ast::visit::{output_name, ColumnRef, ExprRefs};
use lineagex_sqlparse::ast::*;
use std::collections::BTreeSet;

/// Binds queries against a [`Catalog`].
pub struct Binder<'a> {
    catalog: &'a Catalog,
}

/// One relation visible in a scope: its binding name and output columns.
#[derive(Debug, Clone)]
struct BoundRelation {
    binding: String,
    columns: Vec<PlanColumn>,
}

/// A lexical scope chain for correlated-subquery resolution.
struct ScopeChain<'a> {
    relations: &'a [BoundRelation],
    parent: Option<&'a ScopeChain<'a>>,
}

impl<'a> ScopeChain<'a> {
    fn root(relations: &'a [BoundRelation]) -> Self {
        ScopeChain { relations, parent: None }
    }
}

/// A CTE registered while binding an enclosing query.
#[derive(Debug, Clone)]
struct CteBound {
    name: String,
    plan: PlanNode,
    output: Vec<PlanColumn>,
}

/// Mutable binding state: the CTE stack.
#[derive(Default)]
struct BindContext {
    ctes: Vec<CteBound>,
}

impl BindContext {
    fn lookup(&self, name: &str) -> Option<&CteBound> {
        self.ctes.iter().rev().find(|c| c.name == name)
    }
}

impl<'a> Binder<'a> {
    /// A binder over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Binder { catalog }
    }

    /// Bind a query and aggregate the result for the lineage layer.
    pub fn bind(&self, query: &Query) -> Result<BoundQuery, DbError> {
        let mut ctx = BindContext::default();
        let plan = self.bind_query(query, &mut ctx, None)?;
        Ok(BoundQuery::from_plan(plan))
    }

    fn bind_query(
        &self,
        query: &Query,
        ctx: &mut BindContext,
        outer: Option<&ScopeChain<'_>>,
    ) -> Result<PlanNode, DbError> {
        let cte_mark = ctx.ctes.len();
        if let Some(with) = &query.with {
            for cte in &with.ctes {
                let bound = self.bind_cte(cte, with.recursive, ctx, outer)?;
                ctx.ctes.push(bound);
            }
        }

        let (mut plan, select_scope) = self.bind_set_expr(&query.body, ctx, outer)?;

        if !query.order_by.is_empty() {
            let refs = self.resolve_order_by(&query.order_by, plan.output(), &select_scope)?;
            plan = PlanNode::Sort { refs, input: Box::new(plan) };
        }
        if query.limit.is_some() || query.offset.is_some() {
            plan = PlanNode::Limit { input: Box::new(plan) };
        }

        ctx.ctes.truncate(cte_mark);
        Ok(plan)
    }

    fn bind_cte(
        &self,
        cte: &Cte,
        recursive: bool,
        ctx: &mut BindContext,
        outer: Option<&ScopeChain<'_>>,
    ) -> Result<CteBound, DbError> {
        let name = cte.alias.name.value.clone();
        let plan = if recursive {
            // A recursive CTE's schema is defined by its first (seed) branch;
            // register that schema so the self-reference in the recursive
            // branch resolves, then bind the full body.
            if let SetExpr::SetOperation { left, .. } = &cte.query.body {
                let (seed_plan, _) = self.bind_set_expr(left, ctx, outer)?;
                let seed = CteBound {
                    name: name.clone(),
                    output: seed_plan.output().to_vec(),
                    plan: seed_plan,
                };
                ctx.ctes.push(seed);
                let result = self.bind_query(&cte.query, ctx, outer);
                ctx.ctes.pop();
                result?
            } else {
                self.bind_query(&cte.query, ctx, outer)?
            }
        } else {
            self.bind_query(&cte.query, ctx, outer)?
        };
        let output = rename_columns(plan.output(), &cte.alias.columns, &name)?;
        Ok(CteBound { name, plan, output })
    }

    /// Bind a set-expression. The second return value is the FROM-scope of
    /// the body when it is a plain `SELECT`, used for `ORDER BY` resolution.
    fn bind_set_expr(
        &self,
        body: &SetExpr,
        ctx: &mut BindContext,
        outer: Option<&ScopeChain<'_>>,
    ) -> Result<(PlanNode, Vec<BoundRelation>), DbError> {
        match body {
            SetExpr::Select(select) => self.bind_select(select, ctx, outer),
            SetExpr::Query(query) => Ok((self.bind_query(query, ctx, outer)?, Vec::new())),
            SetExpr::SetOperation { op, all, left, right } => {
                let (left_plan, _) = self.bind_set_expr(left, ctx, outer)?;
                let (right_plan, _) = self.bind_set_expr(right, ctx, outer)?;
                let ln = left_plan.output().len();
                let rn = right_plan.output().len();
                if ln != rn {
                    return Err(DbError::SetOperationArityMismatch { left: ln, right: rn });
                }
                // Names come from the left branch; sources merge positionally.
                let output: Vec<PlanColumn> = left_plan
                    .output()
                    .iter()
                    .zip(right_plan.output())
                    .map(|(l, r)| {
                        let mut sources = l.sources.clone();
                        sources.extend(r.sources.iter().cloned());
                        PlanColumn { name: l.name.clone(), sources }
                    })
                    .collect();
                let op_name = match op {
                    SetOperator::Union => "Union",
                    SetOperator::Intersect => "Intersect",
                    SetOperator::Except => "Except",
                };
                Ok((
                    PlanNode::SetOp {
                        op: op_name,
                        all: *all,
                        left: Box::new(left_plan),
                        right: Box::new(right_plan),
                        output,
                    },
                    Vec::new(),
                ))
            }
            SetExpr::Values(values) => {
                let width = values.0.first().map(|r| r.len()).unwrap_or(0);
                for row in &values.0 {
                    if row.len() != width {
                        return Err(DbError::SetOperationArityMismatch {
                            left: width,
                            right: row.len(),
                        });
                    }
                }
                let output = (0..width)
                    .map(|i| PlanColumn::computed(format!("column{}", i + 1), BTreeSet::new()))
                    .collect();
                Ok((PlanNode::Values { output }, Vec::new()))
            }
        }
    }

    fn bind_select(
        &self,
        select: &Select,
        ctx: &mut BindContext,
        outer: Option<&ScopeChain<'_>>,
    ) -> Result<(PlanNode, Vec<BoundRelation>), DbError> {
        // 1. Bind every FROM factor, resolving each join's constraint against
        //    its operands (standard SQL: ON sees only the joined relations
        //    plus outer scopes).
        let mut relations: Vec<BoundRelation> = Vec::new();
        let mut subplans: Vec<PlanNode> = Vec::new();
        let mut from_plan: Option<PlanNode> = None;

        for twj in &select.from {
            let (chain_plan, chain_rels) =
                self.bind_table_with_joins(twj, ctx, outer, &relations, &mut subplans)?;
            from_plan = Some(match from_plan {
                None => chain_plan,
                Some(existing) => {
                    let output =
                        existing.output().iter().chain(chain_plan.output()).cloned().collect();
                    PlanNode::Join {
                        kind: "Cross",
                        condition_refs: BTreeSet::new(),
                        left: Box::new(existing),
                        right: Box::new(chain_plan),
                        output,
                    }
                }
            });
            relations.extend(chain_rels);
        }

        // Duplicate binding names are an error, as in Postgres.
        for (i, a) in relations.iter().enumerate() {
            if relations[..i].iter().any(|b| b.binding == a.binding) {
                return Err(DbError::DuplicateAlias(a.binding.clone()));
            }
        }

        let full_scope = match outer {
            Some(parent) => ScopeChain { relations: &relations, parent: Some(parent) },
            None => ScopeChain { relations: &relations, parent: None },
        };
        let mut plan = from_plan;

        // 3. WHERE.
        if let Some(selection) = &select.selection {
            let refs = self.resolve_expr(selection, &full_scope, ctx, &mut subplans)?;
            let input = plan.ok_or_else(|| {
                DbError::Unsupported("WHERE clause requires a FROM clause".into())
            })?;
            plan = Some(PlanNode::Filter { predicate_refs: refs, input: Box::new(input) });
        }

        // 4. GROUP BY / HAVING.
        if !select.group_by.is_empty() || select.having.is_some() {
            let mut refs = BTreeSet::new();
            for e in &select.group_by {
                refs.extend(self.resolve_expr(e, &full_scope, ctx, &mut subplans)?);
            }
            if let Some(having) = &select.having {
                refs.extend(self.resolve_expr(having, &full_scope, ctx, &mut subplans)?);
            }
            let input =
                plan.ok_or_else(|| DbError::Unsupported("GROUP BY requires a FROM clause".into()))?;
            plan = Some(PlanNode::Aggregate { refs, input: Box::new(input) });
        }

        // 5. Projection.
        let mut output = Vec::new();
        let mut referenced = BTreeSet::new();
        if let Some(Distinct::On(exprs)) = &select.distinct {
            for e in exprs {
                referenced.extend(self.resolve_expr(e, &full_scope, ctx, &mut subplans)?);
            }
        }
        for item in &select.projection {
            match item {
                SelectItem::Wildcard => {
                    if relations.is_empty() {
                        return Err(DbError::Unsupported("SELECT * requires a FROM clause".into()));
                    }
                    for rel in &relations {
                        output.extend(rel.columns.iter().cloned());
                    }
                }
                SelectItem::QualifiedWildcard(name) => {
                    let rel = relations
                        .iter()
                        .find(|r| r.binding == name.base_name())
                        .ok_or_else(|| DbError::UndefinedTable(name.base_name().to_string()))?;
                    output.extend(rel.columns.iter().cloned());
                }
                SelectItem::UnnamedExpr(expr) => {
                    let sources = self.resolve_expr(expr, &full_scope, ctx, &mut subplans)?;
                    output.push(PlanColumn::computed(output_name(expr), sources));
                }
                SelectItem::ExprWithAlias { expr, alias } => {
                    let sources = self.resolve_expr(expr, &full_scope, ctx, &mut subplans)?;
                    output.push(PlanColumn::computed(alias.value.clone(), sources));
                }
            }
        }

        // Fold expression-level subquery plans into the tree so their scans
        // and refs are visible, mirroring EXPLAIN's SubPlan entries.
        for subplan in subplans {
            referenced.extend(subplan.referenced_columns());
            for table in subplan.scanned_relations() {
                // A synthetic zero-column scan keeps the relation visible in
                // `scanned_relations` without touching output arity.
                let scan = PlanNode::Scan {
                    relation: table.clone(),
                    binding: format!("subplan:{table}"),
                    output: Vec::new(),
                };
                let prev = plan.take();
                plan = Some(match prev {
                    None => scan,
                    Some(existing) => {
                        let output = existing.output().to_vec();
                        PlanNode::Join {
                            kind: "SubPlan",
                            condition_refs: BTreeSet::new(),
                            left: Box::new(existing),
                            right: Box::new(scan),
                            output,
                        }
                    }
                });
            }
        }

        let node = PlanNode::Project { output, referenced, input: plan.map(Box::new) };
        Ok((node, relations))
    }

    /// Bind one FROM item: the leading factor plus its chained joins, each
    /// join's constraint resolved against the relations joined so far.
    /// `prior` holds relations from earlier FROM items, visible to
    /// `LATERAL` subqueries in this one.
    fn bind_table_with_joins(
        &self,
        twj: &TableWithJoins,
        ctx: &mut BindContext,
        outer: Option<&ScopeChain<'_>>,
        prior: &[BoundRelation],
        subplans: &mut Vec<PlanNode>,
    ) -> Result<(PlanNode, Vec<BoundRelation>), DbError> {
        let (mut plan, mut rels) = self.bind_table_factor(&twj.relation, ctx, outer, prior)?;
        for join in &twj.joins {
            let mut visible = prior.to_vec();
            visible.extend(rels.iter().cloned());
            let (rplan, rrels) = self.bind_table_factor(&join.relation, ctx, outer, &visible)?;
            let split = rels.len();
            let mut combined = rels;
            combined.extend(rrels);
            let scope = ScopeChain { relations: &combined, parent: outer };
            let refs = match join.join_operator.constraint() {
                Some(JoinConstraint::On(expr)) => self.resolve_expr(expr, &scope, ctx, subplans)?,
                Some(JoinConstraint::Using(cols)) => {
                    let mut refs = BTreeSet::new();
                    for col in cols {
                        refs.extend(self.resolve_using_column(&col.value, &combined, split)?);
                    }
                    refs
                }
                Some(JoinConstraint::Natural) => {
                    let mut refs = BTreeSet::new();
                    for col in natural_join_columns(&combined, split) {
                        refs.extend(self.resolve_using_column(&col, &combined, split)?);
                    }
                    refs
                }
                Some(JoinConstraint::None) | None => BTreeSet::new(),
            };
            let output = plan.output().iter().chain(rplan.output()).cloned().collect();
            plan = PlanNode::Join {
                kind: join_kind(&join.join_operator),
                condition_refs: refs,
                left: Box::new(plan),
                right: Box::new(rplan),
                output,
            };
            rels = combined;
        }
        Ok((plan, rels))
    }

    fn bind_table_factor(
        &self,
        factor: &TableFactor,
        ctx: &mut BindContext,
        outer: Option<&ScopeChain<'_>>,
        visible: &[BoundRelation],
    ) -> Result<(PlanNode, Vec<BoundRelation>), DbError> {
        match factor {
            TableFactor::Table { name, alias } => {
                let base = name.base_name().to_string();
                let binding =
                    alias.as_ref().map(|a| a.name.value.clone()).unwrap_or_else(|| base.clone());
                if let Some(cte) = ctx.lookup(&base) {
                    let output = rename_columns(
                        &cte.output,
                        alias.as_ref().map(|a| a.columns.as_slice()).unwrap_or(&[]),
                        &binding,
                    )?;
                    let node = PlanNode::SubqueryScan {
                        binding: binding.clone(),
                        input: Box::new(cte.plan.clone()),
                        output: output.clone(),
                    };
                    return Ok((node, vec![BoundRelation { binding, columns: output }]));
                }
                let schema =
                    self.catalog.get(&base).ok_or_else(|| DbError::UndefinedTable(base.clone()))?;
                let mut output: Vec<PlanColumn> = schema
                    .columns
                    .iter()
                    .map(|c| PlanColumn::direct(&c.name, SourceColumn::new(&schema.name, &c.name)))
                    .collect();
                if let Some(alias) = alias {
                    output = rename_columns(&output, &alias.columns, &binding)?;
                }
                let node = PlanNode::Scan {
                    relation: schema.name.clone(),
                    binding: binding.clone(),
                    output: output.clone(),
                };
                Ok((node, vec![BoundRelation { binding, columns: output }]))
            }
            TableFactor::Derived { lateral, subquery, alias } => {
                let alias = alias.as_ref().ok_or_else(|| {
                    DbError::Unsupported("subquery in FROM must have an alias".into())
                })?;
                // Only LATERAL subqueries may see sibling/outer relations.
                let lateral_scope;
                let sub_outer = if *lateral {
                    lateral_scope = ScopeChain { relations: visible, parent: outer };
                    Some(&lateral_scope)
                } else {
                    None
                };
                let plan = self.bind_query(subquery, ctx, sub_outer)?;
                let binding = alias.name.value.clone();
                let output = rename_columns(plan.output(), &alias.columns, &binding)?;
                let node = PlanNode::SubqueryScan {
                    binding: binding.clone(),
                    input: Box::new(plan),
                    output: output.clone(),
                };
                Ok((node, vec![BoundRelation { binding, columns: output }]))
            }
            TableFactor::NestedJoin(twj) => {
                // Bind the inner tree as a standalone FROM item.
                let inner = Select {
                    distinct: None,
                    top: None,
                    projection: vec![SelectItem::Wildcard],
                    from: vec![(**twj).clone()],
                    selection: None,
                    group_by: Vec::new(),
                    having: None,
                    qualify: None,
                };
                let (plan, rels) = self.bind_select(&inner, ctx, outer)?;
                // Unwrap the synthetic projection: expose the join beneath.
                let plan = match plan {
                    PlanNode::Project { input: Some(input), .. } => *input,
                    other => other,
                };
                Ok((plan, rels))
            }
        }
    }

    /// Resolve every column reference in `expr`, binding nested subqueries
    /// as correlated subplans.
    fn resolve_expr(
        &self,
        expr: &Expr,
        scope: &ScopeChain<'_>,
        ctx: &mut BindContext,
        subplans: &mut Vec<PlanNode>,
    ) -> Result<BTreeSet<SourceColumn>, DbError> {
        let refs = ExprRefs::from_expr(expr);
        let mut out = BTreeSet::new();
        for col in &refs.columns {
            out.extend(self.resolve_column(col, scope)?);
        }
        for wildcard in &refs.qualified_wildcards {
            let rel = find_relation(scope, wildcard.base_name())
                .ok_or_else(|| DbError::UndefinedTable(wildcard.base_name().to_string()))?;
            for c in &rel.columns {
                out.extend(c.sources.iter().cloned());
            }
        }
        for subquery in &refs.subqueries {
            let plan = self.bind_query(subquery, ctx, Some(scope))?;
            for col in plan.output() {
                out.extend(col.sources.iter().cloned());
            }
            subplans.push(plan);
        }
        Ok(out)
    }

    /// Resolve one column reference through the scope chain.
    fn resolve_column(
        &self,
        col: &ColumnRef<'_>,
        scope: &ScopeChain<'_>,
    ) -> Result<BTreeSet<SourceColumn>, DbError> {
        let name = col.column.value.as_str();
        match col.table() {
            Some(table) => {
                let mut current = Some(scope);
                while let Some(s) = current {
                    if let Some(rel) = s.relations.iter().find(|r| r.binding == table) {
                        let found =
                            rel.columns.iter().find(|c| c.name == name).ok_or_else(|| {
                                DbError::UndefinedColumn {
                                    column: name.to_string(),
                                    relation: Some(table.to_string()),
                                }
                            })?;
                        return Ok(found.sources.clone());
                    }
                    current = s.parent;
                }
                Err(DbError::UndefinedTable(table.to_string()))
            }
            None => {
                let mut current = Some(scope);
                while let Some(s) = current {
                    let matches: Vec<&BoundRelation> = s
                        .relations
                        .iter()
                        .filter(|r| r.columns.iter().any(|c| c.name == name))
                        .collect();
                    match matches.len() {
                        0 => current = s.parent,
                        1 => {
                            let rel = matches[0];
                            let found =
                                rel.columns.iter().find(|c| c.name == name).expect("filtered");
                            return Ok(found.sources.clone());
                        }
                        _ => {
                            return Err(DbError::AmbiguousColumn {
                                column: name.to_string(),
                                candidates: matches.iter().map(|r| r.binding.clone()).collect(),
                            })
                        }
                    }
                }
                Err(DbError::UndefinedColumn { column: name.to_string(), relation: None })
            }
        }
    }

    /// Resolve a `USING`/natural-join column against the relations on each
    /// side of the join (left = everything bound before the join's right
    /// operand, right = the last relation).
    fn resolve_using_column(
        &self,
        name: &str,
        relations: &[BoundRelation],
        split: usize,
    ) -> Result<BTreeSet<SourceColumn>, DbError> {
        let mut out = BTreeSet::new();
        let (left, right) = relations.split_at(split.min(relations.len()));
        let mut found = false;
        for rel in left.iter().chain(right.iter()) {
            if let Some(c) = rel.columns.iter().find(|c| c.name == name) {
                out.extend(c.sources.iter().cloned());
                found = true;
            }
        }
        if !found {
            return Err(DbError::UndefinedColumn { column: name.to_string(), relation: None });
        }
        Ok(out)
    }

    fn resolve_order_by(
        &self,
        order_by: &[OrderByExpr],
        output: &[PlanColumn],
        select_scope: &[BoundRelation],
    ) -> Result<BTreeSet<SourceColumn>, DbError> {
        let mut refs = BTreeSet::new();
        for item in order_by {
            match &item.expr {
                // Positional: ORDER BY 2.
                Expr::Literal(Literal::Number(n)) => {
                    if let Ok(idx) = n.parse::<usize>() {
                        if idx >= 1 && idx <= output.len() {
                            refs.extend(output[idx - 1].sources.iter().cloned());
                        }
                    }
                }
                // Output alias, else a column of the underlying scope.
                Expr::Identifier(ident) => {
                    if let Some(col) = output.iter().find(|c| c.name == ident.value) {
                        refs.extend(col.sources.iter().cloned());
                    } else {
                        let scope = ScopeChain::root(select_scope);
                        let col_ref = ColumnRef { qualifier: &[], column: ident };
                        refs.extend(self.resolve_column(&col_ref, &scope)?);
                    }
                }
                other => {
                    let scope = ScopeChain::root(select_scope);
                    let expr_refs = ExprRefs::from_expr(other);
                    for col in &expr_refs.columns {
                        refs.extend(self.resolve_column(col, &scope)?);
                    }
                }
            }
        }
        Ok(refs)
    }
}

/// Find a relation by binding name anywhere in the scope chain.
fn find_relation<'a>(scope: &'a ScopeChain<'_>, binding: &str) -> Option<&'a BoundRelation> {
    let mut current = Some(scope);
    while let Some(s) = current {
        if let Some(rel) = s.relations.iter().find(|r| r.binding == binding) {
            return Some(rel);
        }
        current = s.parent;
    }
    None
}

/// The display kind of a join operator.
fn join_kind(op: &JoinOperator) -> &'static str {
    match op {
        JoinOperator::Inner(_) => "Inner",
        JoinOperator::LeftOuter(_) => "Left",
        JoinOperator::RightOuter(_) => "Right",
        JoinOperator::FullOuter(_) => "Full",
        JoinOperator::CrossJoin => "Cross",
    }
}

/// Column names shared by the relations before/after `split` — the natural
/// join key set.
fn natural_join_columns(relations: &[BoundRelation], split: usize) -> Vec<String> {
    let (left, right) = relations.split_at(split.min(relations.len()));
    let left_names: BTreeSet<&str> =
        left.iter().flat_map(|r| r.columns.iter().map(|c| c.name.as_str())).collect();
    let mut out = Vec::new();
    for rel in right {
        for c in &rel.columns {
            if left_names.contains(c.name.as_str()) && !out.contains(&c.name) {
                out.push(c.name.clone());
            }
        }
    }
    out
}

/// Apply an alias column-rename list positionally; empty list keeps names.
fn rename_columns(
    columns: &[PlanColumn],
    new_names: &[Ident],
    owner: &str,
) -> Result<Vec<PlanColumn>, DbError> {
    if new_names.is_empty() {
        return Ok(columns.to_vec());
    }
    if new_names.len() != columns.len() {
        return Err(DbError::ViewColumnCountMismatch {
            view: owner.to_string(),
            declared: new_names.len(),
            actual: columns.len(),
        });
    }
    Ok(columns
        .iter()
        .zip(new_names)
        .map(|(c, n)| PlanColumn { name: n.value.clone(), sources: c.sources.clone() })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use lineagex_sqlparse::parse_statement;

    fn example_catalog() -> Catalog {
        Catalog::from_ddl(
            "CREATE TABLE customers (cid int, name text, age int);
             CREATE TABLE orders (oid int, cid int, amount numeric);
             CREATE TABLE web (cid int, date date, page text, reg boolean);",
        )
        .unwrap()
    }

    fn bind(sql: &str) -> Result<BoundQuery, DbError> {
        let catalog = example_catalog();
        let stmt = parse_statement(sql).unwrap();
        let Statement::Query(q) = stmt else { panic!("expected query") };
        Binder::new(&catalog).bind(&q)
    }

    fn sources_of(bound: &BoundQuery, col: &str) -> Vec<String> {
        bound
            .output
            .iter()
            .find(|c| c.name == col)
            .unwrap_or_else(|| panic!("no output column {col}"))
            .sources
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn binds_simple_projection() {
        let b = bind("SELECT name, age FROM customers").unwrap();
        assert_eq!(b.output.len(), 2);
        assert_eq!(sources_of(&b, "name"), vec!["customers.name"]);
        assert!(b.tables.contains("customers"));
    }

    #[test]
    fn resolves_unqualified_across_join() {
        let b =
            bind("SELECT name, amount FROM customers c JOIN orders o ON c.cid = o.cid").unwrap();
        assert_eq!(sources_of(&b, "name"), vec!["customers.name"]);
        assert_eq!(sources_of(&b, "amount"), vec!["orders.amount"]);
        // Join condition columns are referenced.
        assert!(b.referenced.contains(&SourceColumn::new("customers", "cid")));
        assert!(b.referenced.contains(&SourceColumn::new("orders", "cid")));
    }

    #[test]
    fn ambiguous_unqualified_errors() {
        let err = bind("SELECT cid FROM customers, orders").unwrap_err();
        assert!(matches!(err, DbError::AmbiguousColumn { .. }), "{err}");
    }

    #[test]
    fn undefined_table_and_column_errors() {
        assert!(matches!(
            bind("SELECT x FROM nope").unwrap_err(),
            DbError::UndefinedTable(t) if t == "nope"
        ));
        assert!(matches!(
            bind("SELECT missing FROM customers").unwrap_err(),
            DbError::UndefinedColumn { .. }
        ));
        assert!(matches!(
            bind("SELECT customers.missing FROM customers").unwrap_err(),
            DbError::UndefinedColumn { relation: Some(_), .. }
        ));
        assert!(matches!(
            bind("SELECT z.name FROM customers").unwrap_err(),
            DbError::UndefinedTable(t) if t == "z"
        ));
    }

    #[test]
    fn duplicate_alias_errors() {
        let err = bind("SELECT 1 FROM customers, customers").unwrap_err();
        assert!(matches!(err, DbError::DuplicateAlias(_)), "{err}");
    }

    #[test]
    fn wildcard_expansion() {
        let b = bind("SELECT * FROM customers c JOIN web w ON c.cid = w.cid").unwrap();
        assert_eq!(b.output.len(), 3 + 4);
        assert_eq!(sources_of(&b, "page"), vec!["web.page"]);
    }

    #[test]
    fn qualified_wildcard_expansion() {
        let b = bind("SELECT w.* FROM customers c JOIN web w ON c.cid = w.cid").unwrap();
        assert_eq!(b.output.len(), 4);
        assert_eq!(b.output[0].name, "cid");
        assert_eq!(sources_of(&b, "reg"), vec!["web.reg"]);
    }

    #[test]
    fn alias_column_rename() {
        let b = bind("SELECT x FROM customers AS c(x, y, z)").unwrap();
        assert_eq!(sources_of(&b, "x"), vec!["customers.cid"]);
    }

    #[test]
    fn cte_composes_through() {
        let b = bind(
            "WITH youth AS (SELECT cid AS kid, name FROM customers WHERE age < 20)
             SELECT kid FROM youth",
        )
        .unwrap();
        assert_eq!(sources_of(&b, "kid"), vec!["customers.cid"]);
        // The WHERE inside the CTE is referenced.
        assert!(b.referenced.contains(&SourceColumn::new("customers", "age")));
        assert!(b.tables.contains("customers"));
    }

    #[test]
    fn cte_shadows_catalog_table() {
        let b = bind("WITH web AS (SELECT cid AS c2 FROM customers) SELECT c2 FROM web").unwrap();
        assert_eq!(sources_of(&b, "c2"), vec!["customers.cid"]);
        assert!(!b.tables.contains("web"));
    }

    #[test]
    fn derived_table_composes_through() {
        let b = bind("SELECT a FROM (SELECT name AS a FROM customers) AS sub").unwrap();
        assert_eq!(sources_of(&b, "a"), vec!["customers.name"]);
    }

    #[test]
    fn derived_table_requires_alias() {
        let err = bind("SELECT 1 FROM (SELECT name FROM customers)").unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)));
    }

    #[test]
    fn set_operation_merges_positionally() {
        let b = bind("SELECT cid, name FROM customers UNION SELECT cid, page FROM web").unwrap();
        assert_eq!(b.output.len(), 2);
        assert_eq!(b.output[1].name, "name");
        let mut srcs = sources_of(&b, "name");
        srcs.sort();
        assert_eq!(srcs, vec!["customers.name", "web.page"]);
    }

    #[test]
    fn set_operation_arity_mismatch() {
        let err = bind("SELECT cid FROM customers UNION SELECT cid, page FROM web").unwrap_err();
        assert!(matches!(err, DbError::SetOperationArityMismatch { left: 1, right: 2 }));
    }

    #[test]
    fn correlated_subquery_resolves_outer() {
        let b = bind(
            "SELECT name FROM customers c WHERE EXISTS (
                SELECT 1 FROM orders o WHERE o.cid = c.cid)",
        )
        .unwrap();
        assert!(b.referenced.contains(&SourceColumn::new("orders", "cid")));
        assert!(b.referenced.contains(&SourceColumn::new("customers", "cid")));
        assert!(b.tables.contains("orders"));
    }

    #[test]
    fn scalar_subquery_contributes_to_projection() {
        let b = bind(
            "SELECT name, (SELECT max(amount) FROM orders o WHERE o.cid = c.cid) AS top
             FROM customers c",
        )
        .unwrap();
        assert!(sources_of(&b, "top").contains(&"orders.amount".to_string()));
        assert!(b.tables.contains("orders"));
    }

    #[test]
    fn group_by_and_order_by_are_referenced() {
        let b = bind("SELECT age, count(*) AS n FROM customers GROUP BY age ORDER BY n, age DESC")
            .unwrap();
        assert!(b.referenced.contains(&SourceColumn::new("customers", "age")));
    }

    #[test]
    fn order_by_position_and_alias() {
        let b = bind("SELECT name AS nm FROM customers ORDER BY 1").unwrap();
        assert!(b.referenced.contains(&SourceColumn::new("customers", "name")));
        let b = bind("SELECT name AS nm FROM customers ORDER BY nm").unwrap();
        assert!(b.referenced.contains(&SourceColumn::new("customers", "name")));
    }

    #[test]
    fn using_join_references_both_sides() {
        let b = bind("SELECT name FROM customers JOIN orders USING (cid)").unwrap();
        assert!(b.referenced.contains(&SourceColumn::new("customers", "cid")));
        assert!(b.referenced.contains(&SourceColumn::new("orders", "cid")));
    }

    #[test]
    fn natural_join_references_common_columns() {
        let b = bind("SELECT name FROM customers NATURAL JOIN orders").unwrap();
        assert!(b.referenced.contains(&SourceColumn::new("customers", "cid")));
        assert!(b.referenced.contains(&SourceColumn::new("orders", "cid")));
    }

    #[test]
    fn lateral_sees_siblings_but_plain_derived_does_not() {
        let b = bind("SELECT top FROM customers c, LATERAL (SELECT c.age AS top) AS l").unwrap();
        assert_eq!(sources_of(&b, "top"), vec!["customers.age"]);
        // Without LATERAL the sibling reference must fail.
        let err = bind("SELECT top FROM customers c, (SELECT c.age AS top) AS l").unwrap_err();
        assert!(matches!(err, DbError::UndefinedTable(ref t) if t == "c"), "{err}");
    }

    #[test]
    fn recursive_cte_binds() {
        let b = bind(
            "WITH RECURSIVE r AS (
                SELECT cid AS n FROM customers
                UNION ALL
                SELECT n FROM r WHERE n < 10)
             SELECT n FROM r",
        )
        .unwrap();
        assert_eq!(sources_of(&b, "n"), vec!["customers.cid"]);
    }

    #[test]
    fn values_bind_anonymous_columns() {
        let b = bind("VALUES (1, 'a'), (2, 'b')").unwrap();
        assert_eq!(b.output.len(), 2);
        assert_eq!(b.output[0].name, "column1");
    }

    #[test]
    fn expression_sources_union() {
        let b = bind("SELECT name || '-' || cast(age AS text) AS tag FROM customers").unwrap();
        let mut srcs = sources_of(&b, "tag");
        srcs.sort();
        assert_eq!(srcs, vec!["customers.age", "customers.name"]);
    }

    #[test]
    fn plan_display_is_explain_like() {
        let b = bind("SELECT name FROM customers WHERE age > 18 ORDER BY name").unwrap();
        let text = b.plan.to_string();
        assert!(text.contains("Sort"), "{text}");
        assert!(text.contains("Project"), "{text}");
        assert!(text.contains("Filter"), "{text}");
        assert!(text.contains("Seq Scan on customers"), "{text}");
    }
}
