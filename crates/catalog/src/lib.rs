//! # lineagex-catalog
//!
//! Schema metadata and the *simulated database connection* for LineageX.
//!
//! The LineageX paper describes an optional mode where, given a live
//! PostgreSQL connection, the system runs `EXPLAIN` to obtain a resolved
//! query plan and uses it as a metadata oracle: every table and column
//! reference is unambiguously bound, and missing dependencies surface as
//! Postgres errors (`UndefinedTable` and friends) that drive the paper's
//! create-views-first stack mechanism.
//!
//! This crate provides that oracle without a server:
//!
//! * [`schema`] — column/table schema model;
//! * [`Catalog`] — an in-memory namespace of base tables and views,
//!   loadable from `CREATE TABLE` DDL;
//! * [`binder`] — a name-resolution pass that turns a parsed query into a
//!   fully-bound [`plan::PlanNode`], raising Postgres-style
//!   [`DbError`]s on undefined/ambiguous references;
//! * [`SimulatedDatabase`] — the connection facade: `execute_ddl` mutates
//!   the catalog (views must bind successfully, exactly like Postgres view
//!   creation) and `explain` returns the bound plan for a query.
//!
//! One deliberate difference from Postgres is documented in DESIGN.md:
//! `EXPLAIN` on Postgres inlines view definitions into the plan, whereas
//! our oracle keeps views as scannable relations. LineageX only consumes
//! the plan for *name resolution of the query's direct inputs*, so keeping
//! views opaque preserves exactly the behaviour the paper relies on while
//! matching the lineage graph's view-level nodes.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod binder;
pub mod catalog;
pub mod database;
pub mod error;
pub mod plan;
pub mod schema;

pub use binder::Binder;
pub use catalog::{Catalog, CatalogChange};
pub use database::SimulatedDatabase;
pub use error::DbError;
pub use plan::{BoundQuery, PlanColumn, PlanNode, SourceColumn};
pub use schema::{Column, RelationKind, TableSchema};
