//! Relation schemas: columns, base tables, and views.

use serde::Serialize;

/// One column of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Column {
    /// Column name (lower case, as normalised by the parser).
    pub name: String,
    /// Declared or inferred SQL type (informational only).
    pub data_type: String,
}

impl Column {
    /// A column with a name and type.
    pub fn new(name: impl Into<String>, data_type: impl Into<String>) -> Self {
        Column { name: name.into(), data_type: data_type.into() }
    }

    /// A column of unknown type (used for view outputs and inferred
    /// external tables).
    pub fn untyped(name: impl Into<String>) -> Self {
        Column { name: name.into(), data_type: "unknown".into() }
    }
}

/// Whether a catalog relation is a base table or a derived view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum RelationKind {
    /// A base table created with `CREATE TABLE`.
    BaseTable,
    /// A view; the defining SQL is kept for re-binding and display.
    View {
        /// The `CREATE VIEW` query text.
        definition: String,
        /// Materialised view flag.
        materialized: bool,
    },
}

/// The schema of one catalog relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TableSchema {
    /// Relation name (lower case; schema qualifiers stripped to base name).
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
    /// Table or view.
    pub kind: RelationKind,
}

impl TableSchema {
    /// A base table schema.
    pub fn base_table(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema { name: name.into(), columns, kind: RelationKind::BaseTable }
    }

    /// A view schema with its definition text.
    pub fn view(name: impl Into<String>, columns: Vec<Column>, definition: String) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            kind: RelationKind::View { definition, materialized: false },
        }
    }

    /// Column names in order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }

    /// Position of `name` among the columns, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Whether the relation has a column called `name`.
    pub fn has_column(&self, name: &str) -> bool {
        self.column_index(name).is_some()
    }

    /// Whether this relation is a view.
    pub fn is_view(&self) -> bool {
        matches!(self.kind, RelationKind::View { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customers() -> TableSchema {
        TableSchema::base_table(
            "customers",
            vec![
                Column::new("cid", "integer"),
                Column::new("name", "text"),
                Column::new("age", "integer"),
            ],
        )
    }

    #[test]
    fn column_lookup() {
        let t = customers();
        assert_eq!(t.column_index("name"), Some(1));
        assert!(t.has_column("age"));
        assert!(!t.has_column("salary"));
        assert_eq!(t.column_names().collect::<Vec<_>>(), vec!["cid", "name", "age"]);
    }

    #[test]
    fn view_kind() {
        let v = TableSchema::view(
            "info",
            vec![Column::untyped("name")],
            "SELECT name FROM customers".into(),
        );
        assert!(v.is_view());
        assert!(!customers().is_view());
        assert_eq!(v.columns[0].data_type, "unknown");
    }
}
