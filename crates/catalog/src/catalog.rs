//! The in-memory catalog: a namespace of base tables and views.

use crate::error::DbError;
use crate::schema::{Column, TableSchema};
use lineagex_sqlparse::ast::{ColumnDef, Statement};
use lineagex_sqlparse::parse_sql;
use std::collections::BTreeMap;

/// One incremental catalog mutation, as reported by
/// [`Catalog::apply_statement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogChange {
    /// A new relation was registered.
    Added(String),
    /// An existing relation was replaced by a fresh definition.
    Replaced(String),
    /// A relation was dropped.
    Removed(String),
}

impl CatalogChange {
    /// The relation the change concerns.
    pub fn relation(&self) -> &str {
        match self {
            CatalogChange::Added(name)
            | CatalogChange::Replaced(name)
            | CatalogChange::Removed(name) => name,
        }
    }
}

/// A flat namespace of relations keyed by lower-case base name.
///
/// Schema qualifiers (`public.orders`) are stripped: the paper's workloads
/// operate on a single search path, and LineageX matches relations by base
/// name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Build a catalog from a `CREATE TABLE` DDL script.
    ///
    /// Non-DDL statements in the script are ignored so a full query log can
    /// be passed; only the base-table definitions are loaded.
    pub fn from_ddl(sql: &str) -> Result<Self, DbError> {
        let mut catalog = Catalog::new();
        for stmt in parse_sql(sql)? {
            if let Statement::CreateTable { name, columns, query: None, .. } = stmt {
                catalog.add(TableSchema::base_table(
                    name.base_name().to_string(),
                    columns.iter().map(column_from_def).collect(),
                ))?;
            }
        }
        Ok(catalog)
    }

    /// Register a relation. Errors if the name is taken.
    pub fn add(&mut self, schema: TableSchema) -> Result<(), DbError> {
        let key = schema.name.to_lowercase();
        if self.tables.contains_key(&key) {
            return Err(DbError::DuplicateTable(key));
        }
        self.tables.insert(key, schema);
        Ok(())
    }

    /// Register a relation, replacing any existing one with the same name.
    pub fn add_or_replace(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.to_lowercase(), schema);
    }

    /// Apply one statement's schema effect incrementally: plain
    /// `CREATE TABLE` adds or replaces a base table, `DROP` removes each
    /// named relation that exists. Every other statement kind (views,
    /// CTAS, DML, queries) carries lineage rather than schema and leaves
    /// the catalog untouched. Returns the changes made, so a long-lived
    /// session can invalidate whatever depended on them.
    pub fn apply_statement(&mut self, stmt: &Statement) -> Vec<CatalogChange> {
        match stmt {
            Statement::CreateTable { name, columns, query: None, .. } => {
                let schema = TableSchema::base_table(
                    name.base_name().to_string(),
                    columns.iter().map(column_from_def).collect(),
                );
                let change = if self.contains(&schema.name) {
                    CatalogChange::Replaced(schema.name.clone())
                } else {
                    CatalogChange::Added(schema.name.clone())
                };
                self.add_or_replace(schema);
                vec![change]
            }
            Statement::Drop { names, .. } => names
                .iter()
                .filter_map(|n| self.remove(n.base_name()))
                .map(|schema| CatalogChange::Removed(schema.name))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Apply a DDL script incrementally (the streaming counterpart of
    /// [`Catalog::from_ddl`]): `CREATE TABLE` replaces rather than errors
    /// on duplicates, and `DROP` removes. Returns all changes in order.
    pub fn apply_ddl(&mut self, sql: &str) -> Result<Vec<CatalogChange>, DbError> {
        let mut changes = Vec::new();
        for stmt in parse_sql(sql)? {
            changes.extend(self.apply_statement(&stmt));
        }
        Ok(changes)
    }

    /// Remove a relation by name; returns the removed schema if present.
    pub fn remove(&mut self, name: &str) -> Option<TableSchema> {
        self.tables.remove(&normalize(name))
    }

    /// Look a relation up by (possibly qualified) name.
    pub fn get(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(&normalize(name))
    }

    /// Whether `name` resolves to a relation.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// All relation names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// All relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Count of base tables (non-views).
    pub fn base_table_count(&self) -> usize {
        self.tables.values().filter(|t| !t.is_view()).count()
    }

    /// Count of views.
    pub fn view_count(&self) -> usize {
        self.tables.values().filter(|t| t.is_view()).count()
    }

    /// Total number of columns across base tables.
    pub fn base_table_column_count(&self) -> usize {
        self.tables.values().filter(|t| !t.is_view()).map(|t| t.columns.len()).sum()
    }

    /// Total number of columns across views.
    pub fn view_column_count(&self) -> usize {
        self.tables.values().filter(|t| t.is_view()).map(|t| t.columns.len()).sum()
    }
}

/// Strip any schema qualifier and lower-case the name.
fn normalize(name: &str) -> String {
    name.rsplit('.').next().unwrap_or(name).to_lowercase()
}

fn column_from_def(def: &ColumnDef) -> Column {
    Column::new(def.name.value.clone(), def.data_type.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDL: &str = "
        CREATE TABLE customers (cid int PRIMARY KEY, name text, age int);
        CREATE TABLE orders (oid int, cid int REFERENCES customers(cid));
        CREATE TABLE web (cid int, date date, page text, reg boolean);
        -- a trailing query should be ignored by from_ddl
        SELECT * FROM customers;
    ";

    #[test]
    fn loads_ddl_script() {
        let catalog = Catalog::from_ddl(DDL).unwrap();
        assert_eq!(catalog.len(), 3);
        assert_eq!(catalog.base_table_count(), 3);
        assert_eq!(catalog.view_count(), 0);
        let web = catalog.get("web").unwrap();
        assert_eq!(web.columns.len(), 4);
        assert_eq!(web.columns[1].data_type, "date");
    }

    #[test]
    fn lookup_strips_qualifiers_and_case() {
        let catalog = Catalog::from_ddl(DDL).unwrap();
        assert!(catalog.contains("CUSTOMERS"));
        assert!(catalog.contains("public.customers"));
        assert!(!catalog.contains("nope"));
    }

    #[test]
    fn duplicate_add_errors() {
        let mut catalog = Catalog::from_ddl(DDL).unwrap();
        let dup = TableSchema::base_table("web", vec![]);
        assert!(matches!(catalog.add(dup.clone()), Err(DbError::DuplicateTable(_))));
        catalog.add_or_replace(dup);
        assert_eq!(catalog.get("web").unwrap().columns.len(), 0);
    }

    #[test]
    fn remove_returns_schema() {
        let mut catalog = Catalog::from_ddl(DDL).unwrap();
        assert!(catalog.remove("orders").is_some());
        assert!(catalog.remove("orders").is_none());
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn apply_statement_adds_replaces_and_drops() {
        let mut catalog = Catalog::new();
        let apply = |catalog: &mut Catalog, sql: &str| {
            let stmt = lineagex_sqlparse::parse_statement(sql).unwrap();
            catalog.apply_statement(&stmt)
        };
        assert_eq!(
            apply(&mut catalog, "CREATE TABLE t (a int)"),
            vec![CatalogChange::Added("t".into())]
        );
        assert_eq!(
            apply(&mut catalog, "CREATE TABLE t (a int, b int)"),
            vec![CatalogChange::Replaced("t".into())]
        );
        assert_eq!(catalog.get("t").unwrap().columns.len(), 2);
        // Non-DDL statements change nothing.
        assert!(apply(&mut catalog, "CREATE VIEW v AS SELECT a FROM t").is_empty());
        assert!(apply(&mut catalog, "SELECT * FROM t").is_empty());
        // DROP removes only what exists.
        assert_eq!(
            apply(&mut catalog, "DROP TABLE t, ghost"),
            vec![CatalogChange::Removed("t".into())]
        );
        assert!(catalog.is_empty());
    }

    #[test]
    fn apply_ddl_streams_a_script() {
        let mut catalog = Catalog::from_ddl(DDL).unwrap();
        let changes = catalog
            .apply_ddl("CREATE TABLE web (x int); DROP TABLE orders; CREATE TABLE fresh (y int)")
            .unwrap();
        assert_eq!(
            changes,
            vec![
                CatalogChange::Replaced("web".into()),
                CatalogChange::Removed("orders".into()),
                CatalogChange::Added("fresh".into()),
            ]
        );
        assert_eq!(changes[0].relation(), "web");
        assert_eq!(catalog.get("web").unwrap().columns.len(), 1);
        assert!(!catalog.contains("orders"));
        assert!(catalog.contains("fresh"));
    }

    #[test]
    fn column_statistics() {
        let catalog = Catalog::from_ddl(DDL).unwrap();
        assert_eq!(catalog.base_table_column_count(), 3 + 2 + 4);
        assert_eq!(catalog.view_column_count(), 0);
    }
}
