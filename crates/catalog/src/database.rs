//! The simulated database connection.
//!
//! [`SimulatedDatabase`] stands in for the PostgreSQL connection of the
//! paper's connected mode. It executes DDL against an in-memory catalog
//! with the same observable semantics LineageX depends on:
//!
//! * `CREATE VIEW` **binds** its query first; if a referenced relation does
//!   not exist the statement fails with
//!   [`DbError::UndefinedTable`] — the exact error that triggers the
//!   paper's create-the-views-first stack mechanism;
//! * [`SimulatedDatabase::explain`] returns the bound plan for a query,
//!   serving as the metadata oracle that `EXPLAIN` provides in the paper.

use crate::binder::Binder;
use crate::catalog::Catalog;
use crate::error::DbError;
use crate::plan::BoundQuery;
use crate::schema::{Column, RelationKind, TableSchema};
use lineagex_sqlparse::ast::{ObjectType, Statement};
use lineagex_sqlparse::{parse_sql, parse_statement};

/// An in-memory stand-in for a PostgreSQL connection.
#[derive(Debug, Clone, Default)]
pub struct SimulatedDatabase {
    catalog: Catalog,
}

impl SimulatedDatabase {
    /// An empty database.
    pub fn new() -> Self {
        SimulatedDatabase::default()
    }

    /// A database pre-loaded from a DDL script (see [`Catalog::from_ddl`]).
    pub fn from_ddl(sql: &str) -> Result<Self, DbError> {
        Ok(SimulatedDatabase { catalog: Catalog::from_ddl(sql)? })
    }

    /// Wrap an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Self {
        SimulatedDatabase { catalog }
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Execute one statement: DDL mutates the catalog, queries are bound
    /// and validated (like running them against the server).
    pub fn execute(&mut self, sql: &str) -> Result<Option<BoundQuery>, DbError> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<Option<BoundQuery>, DbError> {
        match stmt {
            Statement::Query(q) => Ok(Some(Binder::new(&self.catalog).bind(q)?)),
            // Log noise (EXPLAIN, SET, transaction control, ANALYZE)
            // neither changes the catalog nor produces rows.
            Statement::Noise(_) => Ok(None),
            Statement::CreateView { name, columns, query, materialized, or_replace, .. } => {
                let bound = Binder::new(&self.catalog).bind(query)?;
                let view_name = name.base_name().to_string();
                if !columns.is_empty() && columns.len() != bound.output.len() {
                    return Err(DbError::ViewColumnCountMismatch {
                        view: view_name,
                        declared: columns.len(),
                        actual: bound.output.len(),
                    });
                }
                let cols: Vec<Column> = if columns.is_empty() {
                    bound.output.iter().map(|c| Column::untyped(&c.name)).collect()
                } else {
                    columns.iter().map(|c| Column::untyped(&c.value)).collect()
                };
                let schema = TableSchema {
                    name: view_name.clone(),
                    columns: cols,
                    kind: RelationKind::View {
                        definition: query.to_string(),
                        materialized: *materialized,
                    },
                };
                if *or_replace {
                    self.catalog.add_or_replace(schema);
                } else {
                    self.catalog.add(schema)?;
                }
                Ok(None)
            }
            Statement::CreateTable { name, columns, query, or_replace, .. } => {
                let table_name = name.base_name().to_string();
                let cols: Vec<Column> = if let Some(query) = query {
                    // CTAS: column set comes from the bound query.
                    let bound = Binder::new(&self.catalog).bind(query)?;
                    bound.output.iter().map(|c| Column::untyped(&c.name)).collect()
                } else {
                    columns
                        .iter()
                        .map(|c| Column::new(c.name.value.clone(), c.data_type.to_string()))
                        .collect()
                };
                let schema = TableSchema::base_table(table_name, cols);
                if *or_replace {
                    self.catalog.add_or_replace(schema);
                } else {
                    self.catalog.add(schema)?;
                }
                Ok(None)
            }
            Statement::Insert { table, source, .. } => {
                // Validate the target exists and the source binds.
                let name = table.base_name();
                if !self.catalog.contains(name) {
                    return Err(DbError::UndefinedTable(name.to_string()));
                }
                let bound = Binder::new(&self.catalog).bind(source)?;
                Ok(Some(bound))
            }
            Statement::Update { table, assignments, .. } => {
                let name = table.base_name();
                let Some(schema) = self.catalog.get(name) else {
                    return Err(DbError::UndefinedTable(name.to_string()));
                };
                // Every SET target must be a column of the table.
                for assignment in assignments {
                    if !schema.has_column(&assignment.column.value) {
                        return Err(DbError::UndefinedColumn {
                            column: assignment.column.value.clone(),
                            relation: Some(name.to_string()),
                        });
                    }
                }
                let query = stmt.update_as_query().expect("update synthesises a query");
                Ok(Some(Binder::new(&self.catalog).bind(&query)?))
            }
            Statement::Delete { table, alias, using, selection } => {
                let name = table.base_name();
                if !self.catalog.contains(name) {
                    return Err(DbError::UndefinedTable(name.to_string()));
                }
                // Validate the predicate by binding a probe SELECT over the
                // target and USING relations.
                use lineagex_sqlparse::ast::{
                    Expr, Literal, Select, SelectItem, TableFactor, TableWithJoins,
                };
                let mut from = vec![TableWithJoins {
                    relation: TableFactor::Table { name: table.clone(), alias: alias.clone() },
                    joins: Vec::new(),
                }];
                from.extend(using.iter().cloned());
                let probe = lineagex_sqlparse::ast::Query::from_select(Select {
                    distinct: None,
                    top: None,
                    projection: vec![SelectItem::UnnamedExpr(Expr::Literal(Literal::Number(
                        "1".into(),
                    )))],
                    from,
                    selection: selection.clone(),
                    group_by: Vec::new(),
                    having: None,
                    qualify: None,
                });
                Binder::new(&self.catalog).bind(&probe)?;
                Ok(None)
            }
            Statement::Drop { names, if_exists, object_type } => {
                for name in names {
                    let base = name.base_name();
                    let existing = self.catalog.get(base);
                    match (existing, if_exists) {
                        (None, false) => return Err(DbError::UndefinedTable(base.to_string())),
                        (None, true) => continue,
                        (Some(schema), _) => {
                            let is_view = schema.is_view();
                            let want_view = !matches!(object_type, ObjectType::Table);
                            if is_view != want_view {
                                return Err(DbError::Unsupported(format!(
                                    "\"{base}\" is not a {}",
                                    if want_view { "view" } else { "table" }
                                )));
                            }
                            self.catalog.remove(base);
                        }
                    }
                }
                Ok(None)
            }
            // MERGE is parsed shallowly (dialect front end) and mutates
            // rows, not schema: validate the target exists, touch nothing.
            Statement::Merge(merge) => {
                let name = merge.target.base_name();
                if !self.catalog.contains(name) {
                    return Err(DbError::UndefinedTable(name.to_string()));
                }
                Ok(None)
            }
        }
    }

    /// Execute a whole `;`-separated script, stopping at the first error.
    pub fn execute_script(&mut self, sql: &str) -> Result<(), DbError> {
        for stmt in parse_sql(sql)? {
            self.execute_statement(&stmt)?;
        }
        Ok(())
    }

    /// The simulated `EXPLAIN`: bind a query and return its plan without
    /// touching the catalog.
    pub fn explain(&self, sql: &str) -> Result<BoundQuery, DbError> {
        let stmt = parse_statement(sql)?;
        let query = stmt
            .defining_query()
            .ok_or_else(|| DbError::Unsupported("EXPLAIN requires a query".into()))?;
        Binder::new(&self.catalog).bind(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SourceColumn;

    const BASE_DDL: &str = "
        CREATE TABLE customers (cid int, name text, age int);
        CREATE TABLE orders (oid int, cid int, amount numeric);
        CREATE TABLE web (cid int, date date, page text, reg boolean);
    ";

    #[test]
    fn create_view_registers_schema() {
        let mut db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        db.execute("CREATE VIEW adults AS SELECT cid, name FROM customers WHERE age > 17").unwrap();
        let v = db.catalog().get("adults").unwrap();
        assert!(v.is_view());
        assert_eq!(v.column_names().collect::<Vec<_>>(), vec!["cid", "name"]);
    }

    #[test]
    fn create_view_with_missing_dependency_fails_like_postgres() {
        let mut db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        let err = db.execute("CREATE VIEW info AS SELECT wcid FROM webinfo").unwrap_err();
        assert_eq!(err, DbError::UndefinedTable("webinfo".into()));
    }

    #[test]
    fn views_stack_on_views() {
        let mut db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        db.execute_script(
            "CREATE VIEW v1 AS SELECT cid AS id FROM customers;
             CREATE VIEW v2 AS SELECT id FROM v1;",
        )
        .unwrap();
        let bound = db.explain("SELECT id FROM v2").unwrap();
        // Views are opaque: the direct source is v2 itself.
        assert_eq!(bound.output[0].sources.iter().next().unwrap(), &SourceColumn::new("v2", "id"));
    }

    #[test]
    fn explicit_view_columns_rename_output() {
        let mut db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        db.execute("CREATE VIEW v(a, b) AS SELECT cid, name FROM customers").unwrap();
        let v = db.catalog().get("v").unwrap();
        assert_eq!(v.column_names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn view_column_mismatch_errors() {
        let mut db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        let err = db.execute("CREATE VIEW v(a) AS SELECT cid, name FROM customers").unwrap_err();
        assert!(matches!(err, DbError::ViewColumnCountMismatch { declared: 1, actual: 2, .. }));
    }

    #[test]
    fn duplicate_view_errors_unless_or_replace() {
        let mut db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        db.execute("CREATE VIEW v AS SELECT cid FROM customers").unwrap();
        assert!(matches!(
            db.execute("CREATE VIEW v AS SELECT name FROM customers"),
            Err(DbError::DuplicateTable(_))
        ));
        db.execute("CREATE OR REPLACE VIEW v AS SELECT name FROM customers").unwrap();
        assert_eq!(db.catalog().get("v").unwrap().columns[0].name, "name");
    }

    #[test]
    fn ctas_derives_columns() {
        let mut db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        db.execute("CREATE TABLE t2 AS SELECT cid, name AS nm FROM customers").unwrap();
        let t = db.catalog().get("t2").unwrap();
        assert!(!t.is_view());
        assert_eq!(t.column_names().collect::<Vec<_>>(), vec!["cid", "nm"]);
    }

    #[test]
    fn insert_validates_target_and_source() {
        let mut db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        assert!(matches!(
            db.execute("INSERT INTO missing SELECT cid FROM customers"),
            Err(DbError::UndefinedTable(_))
        ));
        assert!(db.execute("INSERT INTO orders (cid) SELECT cid FROM customers").is_ok());
    }

    #[test]
    fn drop_semantics() {
        let mut db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        db.execute("CREATE VIEW v AS SELECT cid FROM customers").unwrap();
        // Wrong object type.
        assert!(db.execute("DROP TABLE v").is_err());
        db.execute("DROP VIEW v").unwrap();
        assert!(!db.catalog().contains("v"));
        // IF EXISTS tolerates missing.
        db.execute("DROP VIEW IF EXISTS v").unwrap();
        assert!(matches!(db.execute("DROP VIEW v"), Err(DbError::UndefinedTable(_))));
    }

    #[test]
    fn explain_returns_plan_without_mutation() {
        let db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        let bound =
            db.explain("SELECT name FROM customers c JOIN orders o ON c.cid = o.cid").unwrap();
        assert!(bound.plan.to_string().contains("Join"));
        assert_eq!(bound.tables.len(), 2);
    }

    #[test]
    fn explain_create_view_binds_defining_query() {
        let db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        let bound = db.explain("CREATE VIEW v AS SELECT page FROM web").unwrap();
        assert_eq!(bound.output[0].name, "page");
    }

    #[test]
    fn script_stops_at_first_error() {
        let mut db = SimulatedDatabase::from_ddl(BASE_DDL).unwrap();
        let err = db
            .execute_script(
                "CREATE VIEW ok AS SELECT cid FROM customers;
                 CREATE VIEW bad AS SELECT x FROM nope;
                 CREATE VIEW never AS SELECT cid FROM customers;",
            )
            .unwrap_err();
        assert!(matches!(err, DbError::UndefinedTable(_)));
        assert!(db.catalog().contains("ok"));
        assert!(!db.catalog().contains("never"));
    }
}
