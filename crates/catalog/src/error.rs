//! Postgres-style database errors raised by the binder and the simulated
//! connection.

use std::fmt;

/// Errors from binding or executing statements against the
/// [`crate::SimulatedDatabase`]. The variants mirror the PostgreSQL error
/// conditions LineageX's connected mode reacts to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// `relation "<name>" does not exist` — drives the create-first stack.
    UndefinedTable(String),
    /// `column "<column>" does not exist` (optionally with the relation the
    /// lookup was scoped to).
    UndefinedColumn {
        /// The unresolved column name.
        column: String,
        /// The relation it was looked up in, when qualified.
        relation: Option<String>,
    },
    /// `column reference "<column>" is ambiguous`.
    AmbiguousColumn {
        /// The ambiguous column name.
        column: String,
        /// Relations that all expose the column.
        candidates: Vec<String>,
    },
    /// `table name "<name>" specified more than once` in one FROM clause.
    DuplicateAlias(String),
    /// `relation "<name>" already exists`.
    DuplicateTable(String),
    /// Set-operation branches project different numbers of columns.
    SetOperationArityMismatch {
        /// Column count on the left branch.
        left: usize,
        /// Column count on the right branch.
        right: usize,
    },
    /// A view's explicit column list does not match its query output arity.
    ViewColumnCountMismatch {
        /// The view name.
        view: String,
        /// Declared column-list length.
        declared: usize,
        /// Query output arity.
        actual: usize,
    },
    /// The SQL failed to parse.
    Parse(String),
    /// The statement kind is not supported by the simulated engine.
    Unsupported(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UndefinedTable(name) => {
                write!(f, "relation \"{name}\" does not exist")
            }
            DbError::UndefinedColumn { column, relation: Some(rel) } => {
                write!(f, "column {rel}.{column} does not exist")
            }
            DbError::UndefinedColumn { column, relation: None } => {
                write!(f, "column \"{column}\" does not exist")
            }
            DbError::AmbiguousColumn { column, candidates } => write!(
                f,
                "column reference \"{column}\" is ambiguous (candidates: {})",
                candidates.join(", ")
            ),
            DbError::DuplicateAlias(name) => {
                write!(f, "table name \"{name}\" specified more than once")
            }
            DbError::DuplicateTable(name) => write!(f, "relation \"{name}\" already exists"),
            DbError::SetOperationArityMismatch { left, right } => write!(
                f,
                "each branch of a set operation must have the same number of columns ({left} vs {right})"
            ),
            DbError::ViewColumnCountMismatch { view, declared, actual } => write!(
                f,
                "view \"{view}\" declares {declared} column names but its query returns {actual} columns"
            ),
            DbError::Parse(msg) => write!(f, "syntax error: {msg}"),
            DbError::Unsupported(what) => write!(f, "unsupported statement: {what}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<lineagex_sqlparse::ParseError> for DbError {
    fn from(e: lineagex_sqlparse::ParseError) -> Self {
        DbError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_postgres_phrasing() {
        assert_eq!(
            DbError::UndefinedTable("webact".into()).to_string(),
            "relation \"webact\" does not exist"
        );
        assert_eq!(
            DbError::UndefinedColumn { column: "wpage".into(), relation: None }.to_string(),
            "column \"wpage\" does not exist"
        );
        let e = DbError::AmbiguousColumn {
            column: "cid".into(),
            candidates: vec!["customers".into(), "orders".into()],
        };
        assert!(e.to_string().contains("ambiguous"));
    }

    #[test]
    fn parse_error_converts() {
        let pe = lineagex_sqlparse::parse_sql("SELEC 1").unwrap_err();
        let de: DbError = pe.into();
        assert!(matches!(de, DbError::Parse(_)));
    }
}
