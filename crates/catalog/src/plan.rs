//! Bound logical plans — the output of the binder and the payload of the
//! simulated `EXPLAIN`.

use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt;

/// A fully-resolved reference to a column of a catalog relation (or of
/// another query's output, when binding against the Query Dictionary).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct SourceColumn {
    /// The owning relation's name.
    pub table: String,
    /// The column name within that relation.
    pub column: String,
}

impl SourceColumn {
    /// Build a source column reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        SourceColumn { table: table.into(), column: column.into() }
    }
}

impl fmt::Display for SourceColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// One output column of a plan node: its name plus every source column that
/// contributes to its value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PlanColumn {
    /// Output column name.
    pub name: String,
    /// Contributing source columns (composed through intermediate results).
    pub sources: BTreeSet<SourceColumn>,
}

impl PlanColumn {
    /// A column fed by exactly one source.
    pub fn direct(name: impl Into<String>, source: SourceColumn) -> Self {
        PlanColumn { name: name.into(), sources: BTreeSet::from([source]) }
    }

    /// A column with an arbitrary source set (possibly empty, e.g. literal
    /// projections).
    pub fn computed(name: impl Into<String>, sources: BTreeSet<SourceColumn>) -> Self {
        PlanColumn { name: name.into(), sources }
    }
}

/// A node of the bound logical plan tree.
///
/// The shape intentionally mirrors what `EXPLAIN` prints for the covered
/// SQL subset: scans at the leaves, joins above them, then filter,
/// aggregate, projection, set operations, sort, and limit.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PlanNode {
    /// A scan of a catalog relation (base table or view).
    Scan {
        /// Catalog relation name.
        relation: String,
        /// The binding name in the query (alias or relation name).
        binding: String,
        /// Output columns (one per relation column).
        output: Vec<PlanColumn>,
    },
    /// A derived input: CTE or subquery in `FROM`, kept for display.
    SubqueryScan {
        /// The binding name (alias / CTE name).
        binding: String,
        /// The bound subquery plan.
        input: Box<PlanNode>,
        /// Output columns (renamed through the alias, sources composed).
        output: Vec<PlanColumn>,
    },
    /// A binary join.
    Join {
        /// Join kind, e.g. `"Inner"`, `"Left"`, `"Cross"`.
        kind: &'static str,
        /// Source columns referenced by the join condition.
        condition_refs: BTreeSet<SourceColumn>,
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Concatenated output columns.
        output: Vec<PlanColumn>,
    },
    /// A `WHERE` filter; output equals the input's.
    Filter {
        /// Source columns referenced by the predicate.
        predicate_refs: BTreeSet<SourceColumn>,
        /// Input plan.
        input: Box<PlanNode>,
    },
    /// Grouping/having; output equals the projection above it (the binder
    /// attaches aggregate refs here and projects on top).
    Aggregate {
        /// Source columns referenced by `GROUP BY` and `HAVING`.
        refs: BTreeSet<SourceColumn>,
        /// Input plan.
        input: Box<PlanNode>,
    },
    /// The projection computing the query's output columns.
    Project {
        /// Output columns with composed sources.
        output: Vec<PlanColumn>,
        /// Extra referenced source columns attributable to this block
        /// (scalar-subquery references, etc.).
        referenced: BTreeSet<SourceColumn>,
        /// Input plan; `None` for `FROM`-less selects.
        input: Option<Box<PlanNode>>,
    },
    /// A set operation.
    SetOp {
        /// `UNION` / `INTERSECT` / `EXCEPT`.
        op: &'static str,
        /// Bag semantics (`ALL`) if true.
        all: bool,
        /// Left branch.
        left: Box<PlanNode>,
        /// Right branch.
        right: Box<PlanNode>,
        /// Positionally-merged output columns.
        output: Vec<PlanColumn>,
    },
    /// `ORDER BY`; output equals the input's.
    Sort {
        /// Source columns referenced by the sort keys.
        refs: BTreeSet<SourceColumn>,
        /// Input plan.
        input: Box<PlanNode>,
    },
    /// `LIMIT`/`OFFSET`; output equals the input's.
    Limit {
        /// Input plan.
        input: Box<PlanNode>,
    },
    /// `VALUES` rows; columns are anonymous with no sources.
    Values {
        /// Output columns (named `column1..columnN`).
        output: Vec<PlanColumn>,
    },
}

impl PlanNode {
    /// The node's output columns.
    pub fn output(&self) -> &[PlanColumn] {
        match self {
            PlanNode::Scan { output, .. }
            | PlanNode::SubqueryScan { output, .. }
            | PlanNode::Join { output, .. }
            | PlanNode::Project { output, .. }
            | PlanNode::SetOp { output, .. }
            | PlanNode::Values { output } => output,
            PlanNode::Filter { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input } => input.output(),
        }
    }

    /// All catalog relations scanned anywhere in the tree.
    pub fn scanned_relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_scans(&mut out);
        out
    }

    fn collect_scans(&self, out: &mut BTreeSet<String>) {
        match self {
            PlanNode::Scan { relation, .. } => {
                out.insert(relation.clone());
            }
            PlanNode::SubqueryScan { input, .. }
            | PlanNode::Filter { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input } => input.collect_scans(out),
            PlanNode::Join { left, right, .. } | PlanNode::SetOp { left, right, .. } => {
                left.collect_scans(out);
                right.collect_scans(out);
            }
            PlanNode::Project { input, .. } => {
                if let Some(input) = input {
                    input.collect_scans(out);
                }
            }
            PlanNode::Values { .. } => {}
        }
    }

    /// All source columns referenced by predicates/conditions in the tree
    /// (joins, filters, aggregates, sorts, and projection-level refs).
    pub fn referenced_columns(&self) -> BTreeSet<SourceColumn> {
        let mut out = BTreeSet::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs(&self, out: &mut BTreeSet<SourceColumn>) {
        match self {
            PlanNode::Scan { .. } | PlanNode::Values { .. } => {}
            PlanNode::SubqueryScan { input, .. } | PlanNode::Limit { input } => {
                input.collect_refs(out)
            }
            PlanNode::Join { condition_refs, left, right, .. } => {
                out.extend(condition_refs.iter().cloned());
                left.collect_refs(out);
                right.collect_refs(out);
            }
            PlanNode::Filter { predicate_refs, input } => {
                out.extend(predicate_refs.iter().cloned());
                input.collect_refs(out);
            }
            PlanNode::Aggregate { refs, input } | PlanNode::Sort { refs, input } => {
                out.extend(refs.iter().cloned());
                input.collect_refs(out);
            }
            PlanNode::Project { referenced, input, .. } => {
                out.extend(referenced.iter().cloned());
                if let Some(input) = input {
                    input.collect_refs(out);
                }
            }
            PlanNode::SetOp { left, right, .. } => {
                left.collect_refs(out);
                right.collect_refs(out);
            }
        }
    }

    fn fmt_tree(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        let arrow = if indent == 0 { "" } else { "->  " };
        match self {
            PlanNode::Scan { relation, binding, output } => {
                writeln!(
                    f,
                    "{pad}{arrow}Seq Scan on {relation} {binding}  (columns={})",
                    output.len()
                )
            }
            PlanNode::SubqueryScan { binding, input, output } => {
                writeln!(f, "{pad}{arrow}Subquery Scan on {binding}  (columns={})", output.len())?;
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::Join { kind, condition_refs, left, right, .. } => {
                let cond: Vec<String> = condition_refs.iter().map(|c| c.to_string()).collect();
                writeln!(f, "{pad}{arrow}{kind} Join  (cond: {})", cond.join(", "))?;
                left.fmt_tree(f, indent + 1)?;
                right.fmt_tree(f, indent + 1)
            }
            PlanNode::Filter { predicate_refs, input } => {
                let refs: Vec<String> = predicate_refs.iter().map(|c| c.to_string()).collect();
                writeln!(f, "{pad}{arrow}Filter  (refs: {})", refs.join(", "))?;
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::Aggregate { refs, input } => {
                let refs: Vec<String> = refs.iter().map(|c| c.to_string()).collect();
                writeln!(f, "{pad}{arrow}Aggregate  (keys: {})", refs.join(", "))?;
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::Project { output, input, .. } => {
                let cols: Vec<&str> = output.iter().map(|c| c.name.as_str()).collect();
                writeln!(f, "{pad}{arrow}Project  ({})", cols.join(", "))?;
                if let Some(input) = input {
                    input.fmt_tree(f, indent + 1)?;
                }
                Ok(())
            }
            PlanNode::SetOp { op, all, left, right, .. } => {
                writeln!(f, "{pad}{arrow}{op}{}", if *all { " ALL" } else { "" })?;
                left.fmt_tree(f, indent + 1)?;
                right.fmt_tree(f, indent + 1)
            }
            PlanNode::Sort { refs, input } => {
                let refs: Vec<String> = refs.iter().map(|c| c.to_string()).collect();
                writeln!(f, "{pad}{arrow}Sort  (keys: {})", refs.join(", "))?;
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::Limit { input } => {
                writeln!(f, "{pad}{arrow}Limit")?;
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::Values { output } => {
                writeln!(f, "{pad}{arrow}Values Scan  (columns={})", output.len())
            }
        }
    }
}

impl fmt::Display for PlanNode {
    /// Renders an `EXPLAIN`-style indented tree.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_tree(f, 0)
    }
}

/// The result of binding one query: the plan plus the aggregates the
/// lineage layer consumes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BoundQuery {
    /// The bound plan tree (what `EXPLAIN` would show).
    pub plan: PlanNode,
    /// The query's output columns with composed sources.
    pub output: Vec<PlanColumn>,
    /// Every catalog relation scanned.
    pub tables: BTreeSet<String>,
    /// Every source column referenced by predicates and clauses.
    pub referenced: BTreeSet<SourceColumn>,
}

impl BoundQuery {
    /// Assemble the aggregate view over a finished plan.
    pub fn from_plan(plan: PlanNode) -> Self {
        let output = plan.output().to_vec();
        let tables = plan.scanned_relations();
        let referenced = plan.referenced_columns();
        BoundQuery { plan, output, tables, referenced }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, cols: &[&str]) -> PlanNode {
        PlanNode::Scan {
            relation: rel.to_string(),
            binding: rel.to_string(),
            output: cols
                .iter()
                .map(|c| PlanColumn::direct(*c, SourceColumn::new(rel, *c)))
                .collect(),
        }
    }

    #[test]
    fn output_passes_through_filters() {
        let plan = PlanNode::Limit {
            input: Box::new(PlanNode::Filter {
                predicate_refs: BTreeSet::from([SourceColumn::new("t", "a")]),
                input: Box::new(scan("t", &["a", "b"])),
            }),
        };
        assert_eq!(plan.output().len(), 2);
        assert_eq!(plan.output()[1].name, "b");
    }

    #[test]
    fn collects_scans_and_refs() {
        let plan = PlanNode::Join {
            kind: "Inner",
            condition_refs: BTreeSet::from([
                SourceColumn::new("t", "id"),
                SourceColumn::new("u", "id"),
            ]),
            left: Box::new(scan("t", &["id"])),
            right: Box::new(scan("u", &["id"])),
            output: vec![],
        };
        assert_eq!(plan.scanned_relations(), BTreeSet::from(["t".into(), "u".into()]));
        assert_eq!(plan.referenced_columns().len(), 2);
    }

    #[test]
    fn display_renders_tree() {
        let plan = PlanNode::Project {
            output: vec![PlanColumn::direct("a", SourceColumn::new("t", "a"))],
            referenced: BTreeSet::new(),
            input: Some(Box::new(scan("t", &["a"]))),
        };
        let text = plan.to_string();
        assert!(text.contains("Project"), "{text}");
        assert!(text.contains("Seq Scan on t"), "{text}");
    }

    #[test]
    fn bound_query_aggregates() {
        let plan = PlanNode::Project {
            output: vec![PlanColumn::direct("a", SourceColumn::new("t", "a"))],
            referenced: BTreeSet::from([SourceColumn::new("t", "b")]),
            input: Some(Box::new(scan("t", &["a", "b"]))),
        };
        let bound = BoundQuery::from_plan(plan);
        assert_eq!(bound.output.len(), 1);
        assert!(bound.tables.contains("t"));
        assert!(bound.referenced.contains(&SourceColumn::new("t", "b")));
    }
}
