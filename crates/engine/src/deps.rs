//! Static dependency discovery: which relations does a query scan?
//!
//! The one-shot pipeline discovers dependencies *during* extraction (a
//! missing one raises `MissingDependency` and drives the paper's deferral
//! stack). A session engine needs them *before* extraction, to build the
//! view dependency DAG that powers dirty-cone invalidation and the
//! parallel scheduler — so this module walks the AST directly, collecting
//! every `FROM`-clause and subquery relation reference while respecting
//! CTE scoping (a `WITH x AS (...)` binding shadows any relation named
//! `x` inside its query, exactly as the extractor's `M_CTE` lookup does).

use lineagex_sqlparse::ast::visit::ExprRefs;
use lineagex_sqlparse::ast::{Expr, Query, SelectItem, SetExpr, TableFactor, TableWithJoins};
use std::collections::BTreeSet;

/// All relation base names a query references, as written (the extractor
/// matches Query-Dictionary ids case-sensitively; catalog lookups
/// normalise separately). CTE-shadowed names are excluded.
pub fn referenced_relations(query: &Query) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut ctes: Vec<String> = Vec::new();
    walk_query(query, &mut ctes, &mut out);
    out
}

fn walk_query(query: &Query, ctes: &mut Vec<String>, out: &mut BTreeSet<String>) {
    let mark = ctes.len();
    if let Some(with) = &query.with {
        for cte in &with.ctes {
            let name = cte.alias.name.value.clone();
            if with.recursive {
                // The CTE may scan itself; bind the name first.
                ctes.push(name);
                walk_query(&cte.query, ctes, out);
            } else {
                // Later CTEs see earlier ones, not themselves.
                walk_query(&cte.query, ctes, out);
                ctes.push(name);
            }
        }
    }
    walk_set_expr(&query.body, ctes, out);
    for item in &query.order_by {
        walk_expr(&item.expr, ctes, out);
    }
    for e in query.limit.iter().chain(query.offset.iter()) {
        walk_expr(e, ctes, out);
    }
    ctes.truncate(mark);
}

fn walk_set_expr(body: &SetExpr, ctes: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match body {
        SetExpr::Select(select) => {
            for twj in &select.from {
                walk_table_with_joins(twj, ctes, out);
            }
            for item in &select.projection {
                match item {
                    SelectItem::UnnamedExpr(e) | SelectItem::ExprWithAlias { expr: e, .. } => {
                        walk_expr(e, ctes, out)
                    }
                    SelectItem::QualifiedWildcard(_) | SelectItem::Wildcard => {}
                }
            }
            for e in
                select.selection.iter().chain(select.group_by.iter()).chain(select.having.iter())
            {
                walk_expr(e, ctes, out);
            }
        }
        SetExpr::Query(query) => walk_query(query, ctes, out),
        SetExpr::SetOperation { left, right, .. } => {
            walk_set_expr(left, ctes, out);
            walk_set_expr(right, ctes, out);
        }
        SetExpr::Values(values) => {
            for row in &values.0 {
                for e in row {
                    walk_expr(e, ctes, out);
                }
            }
        }
    }
}

fn walk_table_with_joins(twj: &TableWithJoins, ctes: &mut Vec<String>, out: &mut BTreeSet<String>) {
    walk_factor(&twj.relation, ctes, out);
    for join in &twj.joins {
        walk_factor(&join.relation, ctes, out);
        if let Some(lineagex_sqlparse::ast::JoinConstraint::On(expr)) =
            join.join_operator.constraint()
        {
            walk_expr(expr, ctes, out);
        }
    }
}

fn walk_factor(factor: &TableFactor, ctes: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match factor {
        TableFactor::Table { name, .. } => {
            let base = name.base_name();
            if !ctes.iter().any(|c| c == base) {
                out.insert(base.to_string());
            }
        }
        TableFactor::Derived { subquery, .. } => walk_query(subquery, ctes, out),
        TableFactor::NestedJoin(inner) => walk_table_with_joins(inner, ctes, out),
    }
}

/// Walk one expression, descending into its subqueries.
fn walk_expr(expr: &Expr, ctes: &mut Vec<String>, out: &mut BTreeSet<String>) {
    for subquery in ExprRefs::from_expr(expr).subqueries {
        walk_query(subquery, ctes, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_sqlparse::ast::Statement;
    use lineagex_sqlparse::parse_statement;

    fn deps(sql: &str) -> Vec<String> {
        let stmt = parse_statement(sql).unwrap();
        let query = match &stmt {
            Statement::Update { .. } => return refs_of_query(&stmt.update_as_query().unwrap()),
            _ => stmt.defining_query().expect("statement has a query").clone(),
        };
        refs_of_query(&query)
    }

    fn refs_of_query(q: &Query) -> Vec<String> {
        referenced_relations(q).into_iter().collect()
    }

    #[test]
    fn collects_from_and_joins() {
        assert_eq!(deps("SELECT * FROM a JOIN b ON a.x = b.y, c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn cte_names_shadow_relations() {
        assert_eq!(
            deps("WITH a AS (SELECT * FROM base) SELECT * FROM a JOIN b ON a.x = b.y"),
            vec!["b", "base"]
        );
    }

    #[test]
    fn later_ctes_see_earlier_ones() {
        assert_eq!(
            deps("WITH a AS (SELECT * FROM t), b AS (SELECT * FROM a) SELECT * FROM b"),
            vec!["t"]
        );
    }

    #[test]
    fn recursive_cte_does_not_depend_on_itself() {
        assert_eq!(
            deps(
                "WITH RECURSIVE r AS (SELECT x FROM seed UNION ALL SELECT x + 1 FROM r) \
                 SELECT * FROM r"
            ),
            vec!["seed"]
        );
    }

    #[test]
    fn cte_scope_ends_with_its_query() {
        // The outer query's `a` is a real relation; only the inner one is
        // shadowed by the derived table's CTE.
        assert_eq!(
            deps(
                "SELECT * FROM (WITH a AS (SELECT * FROM t) SELECT * FROM a) d \
                 JOIN a ON d.x = a.x"
            ),
            vec!["a", "t"]
        );
    }

    #[test]
    fn subqueries_in_predicates_and_projections_count() {
        assert_eq!(
            deps(
                "SELECT (SELECT max(x) FROM m) FROM t \
                 WHERE t.id IN (SELECT id FROM allowed) AND EXISTS (SELECT 1 FROM flags)"
            ),
            vec!["allowed", "flags", "m", "t"]
        );
    }

    #[test]
    fn set_operations_collect_both_branches() {
        assert_eq!(deps("SELECT x FROM a UNION SELECT y FROM b"), vec!["a", "b"]);
    }

    #[test]
    fn update_references_target_and_from() {
        assert_eq!(deps("UPDATE t SET a = s.v FROM s WHERE t.id = s.id"), vec!["s", "t"]);
    }

    #[test]
    fn create_view_defining_query() {
        assert_eq!(deps("CREATE VIEW v AS SELECT * FROM base WHERE reg"), vec!["base"]);
    }
}
