//! The long-lived session [`Engine`].

use crate::cache::AstCache;
use crate::deps::referenced_relations;
use crate::schedule::{run_level, topo_levels};
use crate::stats::{EngineStats, IngestAction, StmtId};
use lineagex_catalog::Catalog;
use lineagex_core::{
    assemble_nodes, cycle_stub, extract_entry, preprocess_statement, Diagnostic, DiagnosticCode,
    ExtractOptions, GraphIndex, GraphIndexCache, ImpactReport, LineageError, LineageGraph,
    LineageResult, LineageView, PreprocessedStatement, QueryEntry, QueryKind, QuerySpec,
    SourceColumn, TraceLog,
};
use lineagex_obs::{Counter, Histogram};
use lineagex_sqlparse::ast::SpannedStatement;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Engine-layer handles into the process-wide metrics registry. Created
/// at engine construction (so snapshots have a stable shape from the
/// first one) and shared by name across every engine in the process.
#[derive(Debug, Clone)]
struct EngineMetrics {
    /// [`Engine::ingest`] / [`Engine::ingest_parsed`] wall time, µs.
    ingest_us: Histogram,
    /// Non-empty [`Engine::refresh`] wall time, µs.
    refresh_us: Histogram,
    /// Wall time per topological level inside a refresh, µs.
    refresh_level_us: Histogram,
    /// [`Engine::publish`] wall time (refresh + index + snapshot), µs.
    publish_us: Histogram,
    /// Entries re-extracted per refresh (the closed dirty cone).
    dirty_cone_size: Histogram,
    /// Cumulative AST-cache hits across all engines.
    ast_cache_hits: Counter,
    /// Cumulative AST-cache misses across all engines.
    ast_cache_misses: Counter,
    /// Traversal-index cache invalidations (refreshes + retractions).
    index_invalidations: Counter,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        let registry = lineagex_obs::registry();
        EngineMetrics {
            ingest_us: registry.histogram("engine.ingest_us"),
            refresh_us: registry.histogram("engine.refresh_us"),
            refresh_level_us: registry.histogram("engine.refresh_level_us"),
            publish_us: registry.histogram("engine.publish_us"),
            dirty_cone_size: registry.histogram("engine.dirty_cone_size"),
            ast_cache_hits: registry.counter("engine.ast_cache.hits"),
            ast_cache_misses: registry.counter("engine.ast_cache.misses"),
            index_invalidations: registry.counter("engine.index_invalidations"),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads for batch extraction. `0`/`1` extract on the calling
    /// thread; higher values parallelise each dependency level.
    pub jobs: usize,
    /// Per-query extraction options (ambiguity policy, tracing, ...).
    pub extract: ExtractOptions,
    /// Maximum scripts held by the AST cache (0 disables it).
    pub ast_cache_capacity: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            jobs: 1,
            extract: ExtractOptions::default(),
            ast_cache_capacity: crate::cache::DEFAULT_CAPACITY,
        }
    }
}

/// One live Query-Dictionary entry plus its statically-discovered
/// dependencies (the engine's edge set of the view dependency DAG).
#[derive(Debug, Clone)]
struct EntryState {
    entry: QueryEntry,
    /// Relations the defining query scans, as written (matches
    /// dictionary ids case-sensitively, like the extractor).
    deps: BTreeSet<String>,
    /// The same, normalised for invalidation matching against catalog
    /// relations (which are case-insensitive).
    deps_norm: BTreeSet<String>,
}

/// An immutable, revision-stamped view of a settled engine, published by
/// [`Engine::publish`].
///
/// Everything is behind an `Arc`, so cloning a snapshot is O(1) and a
/// clone stays valid (and internally consistent — graph, index, and
/// diagnostics all describe the same `revision`) no matter what the
/// engine does afterwards. This is what a concurrent server hands to
/// reader threads.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The settled-graph revision this snapshot was published at.
    pub revision: u64,
    /// The settled lineage graph.
    pub graph: Arc<LineageGraph>,
    /// The interned traversal index over `graph`.
    pub index: Arc<GraphIndex>,
    /// Session-level diagnostics at publish time.
    pub diagnostics: Arc<Vec<Diagnostic>>,
    /// Session counters at publish time.
    pub stats: EngineStats,
    /// Live Query-Dictionary entries at publish time.
    pub entries: usize,
}

/// An incremental, parallel lineage engine for long-lived sessions.
///
/// Where [`lineagex_core::LineageX`] is batch-oriented — one call reads a
/// whole query log and extracts everything — an `Engine` accepts a
/// *stream* of statements over time and maintains the lineage graph
/// continuously:
///
/// * [`Engine::ingest`] parses (through a content-hash AST cache),
///   classifies, and registers statements, maintaining the catalog and a
///   view dependency DAG with dirty tracking: redefining or dropping one
///   view marks only its downstream cone for re-extraction;
/// * [`Engine::refresh`] settles the dirty set, topologically levelling
///   it and extracting independent views concurrently on up to
///   `jobs` scoped worker threads;
/// * [`Engine::graph`], [`Engine::lineage_of`], and [`Engine::impact_of`]
///   answer lineage questions between ingests (refreshing lazily).
///
/// For fully-defined logs (every scanned relation defined in-log or in
/// the provided catalog), the settled graph's nodes and per-query lineage
/// are identical to a one-shot [`lineagex_core::LineageX::run`] over the
/// same statements, and parallel extraction is byte-identical to
/// sequential — the workspace property tests assert both invariants. The
/// graph's `order` is a dependency-consistent processing order but not
/// necessarily the one-shot deferral order. Two deliberate semantic
/// differences from the one-shot pipeline: re-defining an existing view
/// *replaces* it (the batch dictionary rejects duplicate ids), and `DROP`
/// *retracts* (the batch pipeline records it as skipped).
///
/// ```
/// use lineagex_engine::Engine;
///
/// let mut engine = Engine::new();
/// engine.ingest("CREATE TABLE web (cid int, page text);").unwrap();
/// engine.ingest("CREATE VIEW v AS SELECT page FROM web WHERE cid > 0;").unwrap();
/// let graph = engine.graph().unwrap();
/// assert_eq!(graph.queries["v"].output_names(), vec!["page"]);
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    options: EngineOptions,
    catalog: Catalog,
    entries: BTreeMap<String, EntryState>,
    graph: LineageGraph,
    /// Usage-inferred external schemas, attributed per inferring query so
    /// retraction can take them back out.
    inferred_by_query: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
    traces: BTreeMap<String, TraceLog>,
    /// Entries awaiting (re-)extraction.
    dirty_entries: BTreeSet<String>,
    /// Relations (normalised) whose definition changed since the last
    /// refresh; their dependents get invalidated transitively.
    dirty_relations: BTreeSet<String>,
    /// Session-level diagnostics: skipped statements, noise, no-match
    /// drops, and (lenient) parse failures. Per-query extraction
    /// diagnostics live on the graph and are retracted with their query.
    session_diagnostics: Vec<Diagnostic>,
    /// Ids (re-)extracted or stubbed by the most recent refresh, in
    /// completion order — what a UI should report as fresh.
    last_refresh_ids: Vec<String>,
    cache: AstCache,
    /// Build-once cache for the interned traversal index over the
    /// settled graph, invalidated alongside the dirty-cone state: any
    /// refresh that extracts (or a `DROP` that retracts) drops it, so
    /// queries between ingests reuse one [`GraphIndex`] and pay the
    /// rebuild only after lineage actually changed.
    index_cache: GraphIndexCache,
    /// Monotonic settled-graph revision, bumped at every graph
    /// mutation; keys the index cache so a cache hit is one integer
    /// compare instead of a graph walk.
    graph_revision: u64,
    /// The most recently published graph snapshot, keyed by revision so
    /// repeat [`Engine::publish`] calls with no intervening mutation
    /// reuse one `Arc` instead of re-cloning the graph.
    published: Option<(u64, Arc<LineageGraph>)>,
    stats: EngineStats,
    /// Shared handles into the process-wide metrics registry; recording
    /// never touches engine state, so instrumentation is invisible to
    /// the incremental ≡ batch and `jobs`-independence invariants.
    metrics: EngineMetrics,
    anon_counter: usize,
    seq: u64,
}

impl Engine {
    /// A fresh engine with default options and an empty catalog.
    pub fn new() -> Self {
        Engine::default()
    }

    /// A fresh engine with the given options.
    pub fn with_options(options: EngineOptions) -> Self {
        let cache = AstCache::with_capacity(options.ast_cache_capacity);
        Engine { options, cache, ..Engine::default() }
    }

    /// Provide base-table schemas up front.
    pub fn with_catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Ingest a `;`-separated script: parse (served from the AST cache on
    /// re-ingest of identical text), classify each statement, update the
    /// catalog and dependency DAG, and mark whatever the statements
    /// invalidated as dirty. Extraction itself is deferred to the next
    /// [`Engine::refresh`] (or lineage query), so a burst of ingests pays
    /// for its re-extractions once.
    ///
    /// Returns one receipt per statement saying what the engine did.
    /// In lenient mode ([`ExtractOptions::lenient`]) unparsable regions
    /// of the script do not fail the call: each becomes a receipt with
    /// [`IngestAction::Failed`] carrying a span-tagged parse diagnostic,
    /// and every healthy statement is still ingested.
    pub fn ingest(&mut self, sql: &str) -> Result<Vec<StmtId>, LineageError> {
        let _timer = self.metrics.ingest_us.time();
        let (hits_before, misses_before) = (self.cache.hits, self.cache.misses);
        let script = self.cache.parse_recovering(sql);
        self.metrics.ast_cache_hits.add(self.cache.hits - hits_before);
        self.metrics.ast_cache_misses.add(self.cache.misses - misses_before);
        self.stats.parse_cache_hits = self.cache.hits;
        self.stats.parse_cache_misses = self.cache.misses;
        if !self.options.extract.lenient {
            if let Some(error) = script.errors.first() {
                return Err(LineageError::Parse(error.to_string()));
            }
        }
        Ok(self.apply_script(script, sql.trim()))
    }

    /// Ingest statements that were parsed elsewhere, skipping the
    /// engine's own parser and AST cache. `source` is the text the
    /// statements' spans index into, used to attach excerpts to
    /// diagnostics — so spans (and therefore receipts) stay relative to
    /// the caller's original script rather than to per-statement
    /// re-renders. This is how the CLI's `extract --jobs N` shim keeps
    /// file-accurate diagnostics while feeding a one-shot log through
    /// the session engine.
    pub fn ingest_parsed(
        &mut self,
        statements: Vec<SpannedStatement>,
        source: &str,
    ) -> Vec<StmtId> {
        let _timer = self.metrics.ingest_us.time();
        self.apply_script(
            lineagex_sqlparse::RecoveredScript { statements, errors: Vec::new() },
            source,
        )
    }

    /// Apply a recovered script: route statements through preprocessing
    /// and turn unparsable regions into [`IngestAction::Failed`]
    /// receipts, all interleaved back into source order so receipts read
    /// like the script.
    fn apply_script(
        &mut self,
        script: lineagex_sqlparse::RecoveredScript,
        source: &str,
    ) -> Vec<StmtId> {
        enum Item {
            Stmt(Box<SpannedStatement>),
            Failed(lineagex_sqlparse::ParseError),
        }
        let mut items: Vec<(usize, Item)> = script
            .statements
            .into_iter()
            .map(|s| (s.span.start, Item::Stmt(Box::new(s))))
            .chain(script.errors.into_iter().map(|e| (e.span.start, Item::Failed(e))))
            .collect();
        items.sort_by_key(|(start, _)| *start);
        let mut receipts = Vec::with_capacity(items.len());
        for (_, item) in items {
            self.seq += 1;
            self.stats.statements += 1;
            match item {
                Item::Stmt(stmt) => {
                    let (target, action, diagnostics) = self.apply_statement(*stmt, source);
                    receipts.push(StmtId { seq: self.seq, target, action, diagnostics });
                }
                Item::Failed(error) => {
                    self.stats.parse_failures += 1;
                    let diagnostic =
                        Diagnostic::new(DiagnosticCode::ParseError, error.message.clone())
                            .with_span(error.span)
                            .with_excerpt_from(source);
                    self.session_diagnostics.push(diagnostic.clone());
                    receipts.push(StmtId {
                        seq: self.seq,
                        target: "<unparsable>".into(),
                        action: IngestAction::Failed,
                        diagnostics: vec![diagnostic],
                    });
                }
            }
        }
        self.settle_diagnostic_count();
        receipts
    }

    /// Route one parsed statement through the shared preprocessing rules
    /// and apply its session effect. Returns the receipt's target, the
    /// action taken, and any diagnostics the statement produced.
    fn apply_statement(
        &mut self,
        stmt: SpannedStatement,
        source: &str,
    ) -> (String, IngestAction, Vec<Diagnostic>) {
        // Catalog effects first (plain DDL adds/replaces, DROP removes),
        // via the catalog's own incremental API; every reported change
        // seeds relation-level dirt.
        let catalog_changes = self.catalog.apply_statement(&stmt.statement);
        for change in &catalog_changes {
            self.dirty_relations.insert(normalize(change.relation()));
        }
        let preprocessed = {
            let entries = &self.entries;
            preprocess_statement(stmt, None, &mut self.anon_counter, &mut |id| {
                entries.contains_key(id)
            })
        };
        match preprocessed {
            PreprocessedStatement::Entry(entry) => {
                let id = entry.id.clone();
                match self.entries.get(&id) {
                    Some(old) if old.entry.statement == entry.statement => {
                        self.stats.unchanged += 1;
                        (id, IngestAction::Unchanged, Vec::new())
                    }
                    existing => {
                        let (action, diagnostics) = if existing.is_some() {
                            self.stats.redefinitions += 1;
                            // Redefinition is first-class in a session;
                            // the notice still surfaces so receipts match
                            // the batch pipeline's lenient diagnostics.
                            let diagnostic = Diagnostic::new(
                                DiagnosticCode::DuplicateQueryId,
                                format!(
                                    "duplicate query identifier \"{id}\": last definition wins"
                                ),
                            )
                            .for_statement(&id)
                            .with_span(entry.span)
                            .with_excerpt_from(source);
                            (IngestAction::Redefined, vec![diagnostic])
                        } else {
                            self.stats.defined += 1;
                            (IngestAction::Defined, Vec::new())
                        };
                        let mut deps = referenced_relations(entry.query());
                        if matches!(entry.kind, QueryKind::Insert | QueryKind::Update) {
                            // A write's output names come from the target
                            // table's catalog schema (`apply_output_names`),
                            // so the target is a real dependency: its
                            // redefinition must re-extract this entry.
                            deps.insert(id.split('#').next().unwrap_or(&id).to_string());
                        }
                        let deps_norm = deps.iter().map(|d| normalize(d)).collect();
                        self.entries
                            .insert(id.clone(), EntryState { entry: *entry, deps, deps_norm });
                        self.dirty_entries.insert(id.clone());
                        self.dirty_relations.insert(normalize(&id));
                        (id, action, diagnostics)
                    }
                }
            }
            // The catalog side already happened above; this arm only
            // acknowledges the statement.
            PreprocessedStatement::Schema(schema) => {
                (schema.name, IngestAction::Schema, Vec::new())
            }
            PreprocessedStatement::Drop(names, span) => {
                let mut touched = catalog_changes.len() as u64;
                for name in &names {
                    if self.entries.remove(name).is_some() {
                        touched += 1;
                        self.graph.retract_query(name);
                        // The retraction mutated the settled graph
                        // directly (no refresh will run unless something
                        // is dirty), so the traversal index is stale now.
                        self.graph_revision += 1;
                        self.index_cache.invalidate();
                        self.metrics.index_invalidations.inc();
                        self.traces.remove(name);
                        self.inferred_by_query.remove(name);
                        self.dirty_entries.remove(name);
                        self.dirty_relations.insert(normalize(name));
                    }
                }
                self.stats.drops += touched;
                let target = names.join(", ");
                if touched == 0 {
                    let diagnostic = Diagnostic::new(
                        DiagnosticCode::SkippedStatement,
                        format!("DROP {target} matched nothing"),
                    )
                    .with_span(span)
                    .with_excerpt_from(source);
                    self.session_diagnostics.push(diagnostic.clone());
                    (target, IngestAction::Skipped, vec![diagnostic])
                } else {
                    (target, IngestAction::Dropped, Vec::new())
                }
            }
            PreprocessedStatement::Skipped(diagnostic) => {
                let diagnostic = diagnostic.with_excerpt_from(source);
                let target = diagnostic.message.clone();
                self.session_diagnostics.push(diagnostic.clone());
                (target, IngestAction::Skipped, vec![diagnostic])
            }
        }
    }

    /// Settle all pending invalidations: close the dirty set over the
    /// dependency DAG (downstream cones of every changed relation),
    /// topologically level it, and (re-)extract — in parallel when
    /// `jobs > 1`. Returns the number of extractions performed.
    ///
    /// On error, successfully extracted entries are kept and the failing
    /// ones (plus anything scheduled behind them) stay dirty, so a
    /// correcting ingest can retry.
    pub fn refresh(&mut self) -> Result<usize, LineageError> {
        if self.dirty_entries.is_empty() && self.dirty_relations.is_empty() {
            return Ok(0);
        }
        let _timer = self.metrics.refresh_us.time();
        self.last_refresh_ids.clear();
        // Everything below mutates the settled graph (retractions, cycle
        // stubs, merges, node assembly): the traversal index dies with
        // the old revision and is rebuilt lazily by the next query.
        self.graph_revision += 1;
        self.index_cache.invalidate();
        self.metrics.index_invalidations.inc();

        // 1. Close the dirty set: an entry is dirty when marked directly
        //    or when any (transitive) upstream relation changed.
        let dirty = self.close_over_dependents(self.dirty_entries.clone(), {
            let mut changed = self.dirty_relations.clone();
            changed.extend(self.dirty_entries.iter().map(|id| normalize(id)));
            changed
        });

        // 2. Level the cone topologically; clean upstreams are already
        //    settled in the graph and don't constrain the schedule. In
        //    lenient mode a dependency cycle is broken like the batch
        //    deferral stack breaks it: the member that closes the cycle
        //    (the second-to-last element of the `[a, .., x, a]` path)
        //    gets an empty partial stub carrying the cycle path, and the
        //    rest of the cone extracts against the stub.
        let mut dirty = dirty;
        let levels = loop {
            match topo_levels(&dirty, |id| self.entries[id].deps.clone()) {
                Ok(levels) => break levels,
                Err(cycle) => {
                    if !self.options.extract.lenient {
                        return Err(LineageError::DependencyCycle(cycle));
                    }
                    let id = cycle[cycle.len() - 2].clone();
                    self.graph.retract_query(&id);
                    self.traces.remove(&id);
                    self.inferred_by_query.remove(&id);
                    self.graph.merge_query(cycle_stub(&self.entries[&id].entry, &cycle));
                    self.stats.extractions += 1;
                    self.last_refresh_ids.push(id.clone());
                    dirty.remove(&id);
                    self.dirty_entries.remove(&id);
                }
            }
        };
        self.metrics.dirty_cone_size.record(dirty.len() as u64);

        // 3. Retract everything about to be re-extracted so stale lineage
        //    can never leak into a dependent's extraction.
        for id in &dirty {
            self.graph.retract_query(id);
            self.traces.remove(id);
            self.inferred_by_query.remove(id);
        }

        // 4. Extract level by level. Within a level every entry sees the
        //    same frozen snapshot (graph + inferred schemas), so parallel
        //    and sequential execution produce identical results.
        let qd_ids: BTreeSet<String> = self.entries.keys().cloned().collect();
        let jobs = self.options.jobs;
        let mut extracted = 0u64;
        let mut failure: Option<LineageError> = None;
        for level in levels {
            let _level_timer = self.metrics.refresh_level_us.time();
            let snapshot = self.merged_inferred();
            let results = {
                let entries = &self.entries;
                let processed = &self.graph.queries;
                let catalog = &self.catalog;
                let options = &self.options.extract;
                let qd_ids = &qd_ids;
                let snapshot = &snapshot;
                run_level(&level, jobs, move |id| {
                    let mut inferred = snapshot.clone();
                    extract_entry(
                        &entries[id].entry,
                        qd_ids,
                        processed,
                        catalog,
                        options,
                        &mut inferred,
                    )
                    .map(|(lineage, trace)| (lineage, trace, inferred_delta(snapshot, inferred)))
                })
            };
            for (id, result) in results {
                match result {
                    Ok((lineage, trace, delta)) => {
                        extracted += 1;
                        self.dirty_entries.remove(&id);
                        self.last_refresh_ids.push(id.clone());
                        self.graph.merge_query(lineage);
                        if let Some(trace) = trace {
                            self.traces.insert(id.clone(), trace);
                        }
                        if !delta.is_empty() {
                            self.inferred_by_query.insert(id, delta);
                        }
                    }
                    Err(error) => {
                        failure.get_or_insert(error);
                    }
                }
            }
            if failure.is_some() {
                break;
            }
        }

        // 5. Settle the node map (catalog / query / external shadowing).
        self.graph.nodes =
            assemble_nodes(&self.catalog, &self.graph.queries, &self.merged_inferred());
        self.stats.extractions += extracted;
        self.stats.last_refresh_extractions = extracted;
        self.stats.refreshes += 1;
        self.settle_diagnostic_count();

        match failure {
            None => {
                self.dirty_entries.clear();
                self.dirty_relations.clear();
                Ok(extracted as usize)
            }
            Some(error) => {
                self.dirty_entries =
                    dirty.into_iter().filter(|id| !self.graph.queries.contains_key(id)).collect();
                self.dirty_relations.clear();
                Err(error)
            }
        }
    }

    /// The settled lineage graph (refreshing first if needed).
    pub fn graph(&mut self) -> Result<&LineageGraph, LineageError> {
        self.refresh()?;
        Ok(&self.graph)
    }

    /// The interned traversal index ([`GraphIndex`]) over the settled
    /// graph, refreshing first if needed. Cached per settled revision:
    /// repeated queries between ingests share one index (a hit costs
    /// one integer compare, no graph walk), and any refresh or
    /// retraction that changes the graph bumps the revision.
    pub fn graph_index(&mut self) -> Result<Arc<GraphIndex>, LineageError> {
        self.refresh()?;
        Ok(self.index_cache.get_or_build_at(self.graph_revision, &self.graph))
    }

    /// A point-in-time clone of the settled graph that survives further
    /// ingests.
    pub fn snapshot(&mut self) -> Result<LineageGraph, LineageError> {
        self.refresh()?;
        Ok(self.graph.clone())
    }

    /// The current settled-graph revision. Monotonic: every graph
    /// mutation (refresh extraction, `DROP` retraction) bumps it, so two
    /// equal revisions always denote the identical settled graph.
    pub fn revision(&self) -> u64 {
        self.graph_revision
    }

    /// Settle pending work and publish an immutable, shareable
    /// [`EngineSnapshot`]: the revision-stamped graph, its interned
    /// traversal index, and the session diagnostics, all behind `Arc`s.
    ///
    /// This is the engine half of the serving layer's swap-on-refresh
    /// protocol: a server thread calls `publish` after each settled
    /// write and swaps the snapshot into a shared slot; readers clone
    /// the `Arc`s and answer lock-free while the engine keeps mutating.
    /// Publishing twice without an intervening mutation reuses the same
    /// graph and index `Arc`s (one integer compare, no clone). On error
    /// the previous snapshot stays valid — nothing is published for a
    /// refresh that failed to settle.
    pub fn publish(&mut self) -> Result<EngineSnapshot, LineageError> {
        let _timer = self.metrics.publish_us.time();
        self.refresh()?;
        let index = self.index_cache.get_or_build_at(self.graph_revision, &self.graph);
        let graph = match &self.published {
            Some((revision, graph)) if *revision == self.graph_revision => Arc::clone(graph),
            _ => {
                let graph = Arc::new(self.graph.clone());
                self.published = Some((self.graph_revision, Arc::clone(&graph)));
                graph
            }
        };
        Ok(EngineSnapshot {
            revision: self.graph_revision,
            graph,
            index,
            diagnostics: Arc::new(self.session_diagnostics.clone()),
            stats: self.stats.clone(),
            entries: self.entries.len(),
        })
    }

    /// Full lineage of one output column, `C_con(c) ∪ C_ref(Q)`.
    pub fn lineage_of(
        &mut self,
        table: &str,
        column: &str,
    ) -> Result<Option<BTreeSet<SourceColumn>>, LineageError> {
        self.refresh()?;
        Ok(self.graph.queries.get(table).and_then(|q| q.lineage_of(column)))
    }

    /// Transitive impact analysis from one column (the paper's §IV demo
    /// question), over the settled graph's cached traversal index.
    pub fn impact_of(&mut self, table: &str, column: &str) -> Result<ImpactReport, LineageError> {
        let index = self.graph_index()?;
        let answer = QuerySpec::new().from_column(table, column).downstream().run_with(&index);
        Ok(ImpactReport::from_answer(SourceColumn::new(table, column), answer))
    }

    /// Package the session state as a one-shot-style [`LineageResult`]
    /// (empty deferral log: the scheduler replaces the deferral stack).
    pub fn result(&mut self) -> Result<LineageResult, LineageError> {
        self.refresh()?;
        Ok(LineageResult {
            graph: self.graph.clone(),
            traces: self.traces.clone(),
            deferrals: Vec::new(),
            inferred: self.merged_inferred(),
            diagnostics: self.session_diagnostics.clone(),
            index: self.index_cache.clone(),
        })
    }

    /// Mark every entry dirty, forcing the next refresh to re-extract the
    /// whole dictionary (benchmarking aid, and escape hatch after
    /// out-of-band catalog edits).
    pub fn invalidate_all(&mut self) {
        self.dirty_entries.extend(self.entries.keys().cloned());
    }

    /// Entries directly scanning `relation` (one dirty-propagation hop).
    pub fn dependents_of(&self, relation: &str) -> BTreeSet<String> {
        let needle = normalize(relation);
        self.entries
            .iter()
            .filter(|(_, state)| state.deps_norm.contains(&needle))
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// `relation` plus everything transitively downstream of it — the set
    /// a redefinition of `relation` re-extracts.
    pub fn downstream_cone(&self, relation: &str) -> BTreeSet<String> {
        let mut seed = BTreeSet::new();
        if self.entries.contains_key(relation) {
            seed.insert(relation.to_string());
        }
        self.close_over_dependents(seed, BTreeSet::from([normalize(relation)]))
    }

    /// Fixpoint closure over the dependency DAG: grow `entries` with every
    /// entry depending (transitively) on a relation in `changed`, treating
    /// each newly-added entry's own relation as changed too.
    fn close_over_dependents(
        &self,
        mut entries: BTreeSet<String>,
        mut changed: BTreeSet<String>,
    ) -> BTreeSet<String> {
        loop {
            let mut grew = false;
            for (id, state) in &self.entries {
                if !entries.contains(id) && state.deps_norm.iter().any(|d| changed.contains(d)) {
                    entries.insert(id.clone());
                    changed.insert(normalize(id));
                    grew = true;
                }
            }
            if !grew {
                return entries;
            }
        }
    }

    /// Session counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Session-level diagnostics (skipped statements, noise, no-match
    /// drops, lenient parse failures). Per-query extraction diagnostics
    /// live on [`LineageGraph::queries`] and are retracted with their
    /// query on redefinition or `DROP`.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.session_diagnostics
    }

    /// The query ids the most recent refresh (re-)extracted or stubbed,
    /// in completion order. Lets a caller surface only the *fresh*
    /// extraction diagnostics after a refresh instead of re-reporting
    /// the whole session's history.
    pub fn last_refresh_ids(&self) -> &[String] {
        &self.last_refresh_ids
    }

    /// Recount the live diagnostics (session-level plus per-query) into
    /// [`EngineStats::diagnostics`]. Cheap: proportional to the number of
    /// queries, not the graph size.
    fn settle_diagnostic_count(&mut self) {
        self.stats.diagnostics = self.session_diagnostics.len() as u64
            + self.graph.queries.values().map(|q| q.diagnostics.len() as u64).sum::<u64>();
    }

    /// Traversal traces, when tracing is enabled in the options.
    pub fn traces(&self) -> &BTreeMap<String, TraceLog> {
        &self.traces
    }

    /// The current catalog (user schemas plus ingested DDL).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of live dictionary entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether the next refresh has work to do.
    pub fn has_pending_work(&self) -> bool {
        !self.dirty_entries.is_empty() || !self.dirty_relations.is_empty()
    }

    /// Merge the per-query inferred-schema deltas into one map.
    fn merged_inferred(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut merged: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for delta in self.inferred_by_query.values() {
            for (table, columns) in delta {
                merged.entry(table.clone()).or_default().extend(columns.iter().cloned());
            }
        }
        merged
    }
}

/// The engine is the *session* backend of the unified query surface:
/// everything written against [`LineageView`] — the [`GraphQuery`]
/// builder, [`ReportV2`] serialisation, stats — runs unchanged over a
/// live session, settling pending work first.
///
/// [`GraphQuery`]: lineagex_core::GraphQuery
/// [`ReportV2`]: lineagex_core::ReportV2
///
/// ```
/// use lineagex_engine::Engine;
/// use lineagex_core::LineageView;
///
/// let mut engine = Engine::new();
/// engine.ingest("CREATE TABLE web (cid int, page text);").unwrap();
/// engine.ingest("CREATE VIEW v AS SELECT page FROM web;").unwrap();
/// let answer = engine.query().from("web.page").downstream().run().unwrap();
/// assert_eq!(answer.columns[0].column.to_string(), "v.page");
/// ```
impl LineageView for Engine {
    fn settled_graph(&mut self) -> Result<&LineageGraph, LineageError> {
        self.graph()
    }

    fn run_diagnostics(&self) -> Vec<Diagnostic> {
        self.session_diagnostics.clone()
    }

    fn backend_name(&self) -> &'static str {
        "session"
    }

    fn settled_index(&mut self) -> Result<Arc<GraphIndex>, LineageError> {
        self.graph_index()
    }
}

/// What one extraction added to the inferred-schema snapshot it started
/// from. A table key with an empty column set still counts (it records
/// the relation's existence as an external).
fn inferred_delta(
    snapshot: &BTreeMap<String, BTreeSet<String>>,
    local: BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut delta = BTreeMap::new();
    for (table, columns) in local {
        match snapshot.get(&table) {
            None => {
                delta.insert(table, columns);
            }
            Some(seen) => {
                let fresh: BTreeSet<String> = columns.difference(seen).cloned().collect();
                if !fresh.is_empty() {
                    delta.insert(table, fresh);
                }
            }
        }
    }
    delta
}

/// Strip any schema qualifier and lower-case, mirroring the catalog's
/// name normalisation.
fn normalize(name: &str) -> String {
    name.rsplit('.').next().unwrap_or(name).to_lowercase()
}
